//! Wire-level message types exchanged between the middleware, the geo-agents
//! and the data sources.

use std::time::Duration;

use geotp_storage::{Key, Row, StorageError, Xid};

/// SQL dialect spoken by a data source. The two dialects are functionally
//  equivalent in the simulation but drive different rewritten command
/// sequences (paper §IV-A): MySQL uses `XA END` + `XA PREPARE`, PostgreSQL
/// uses a single `PREPARE TRANSACTION`, and PostgreSQL reads are rewritten to
/// `SELECT ... FOR SHARE` by the middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// MySQL-style XA participant.
    MySql,
    /// PostgreSQL-style prepared transactions.
    Postgres,
}

impl Dialect {
    /// Human-readable name used in reports (Table I scenarios).
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::MySql => "MySQL",
            Dialect::Postgres => "PostgreSQL",
        }
    }

    /// The command sequence the geo-agent issues to prepare a branch.
    pub fn prepare_commands(&self, xid: Xid) -> Vec<String> {
        match self {
            Dialect::MySql => vec![
                format!("XA END '{},{}'", xid.gtrid, xid.bqual),
                format!("XA PREPARE '{},{}'", xid.gtrid, xid.bqual),
            ],
            Dialect::Postgres => vec![format!("PREPARE TRANSACTION '{}_{}'", xid.gtrid, xid.bqual)],
        }
    }

    /// The command used to commit a prepared branch.
    pub fn commit_command(&self, xid: Xid) -> String {
        match self {
            Dialect::MySql => format!("XA COMMIT '{},{}'", xid.gtrid, xid.bqual),
            Dialect::Postgres => format!("COMMIT PREPARED '{}_{}'", xid.gtrid, xid.bqual),
        }
    }
}

/// A single operation within a subtransaction statement batch.
#[derive(Debug, Clone, PartialEq)]
pub enum DsOperation {
    /// Read a record under a shared lock.
    Read {
        /// Record to read.
        key: Key,
    },
    /// Read a record under an exclusive lock (`SELECT ... FOR UPDATE`).
    ReadForUpdate {
        /// Record to read.
        key: Key,
    },
    /// Insert or overwrite a record.
    Write {
        /// Record to write.
        key: Key,
        /// New row value.
        row: Row,
    },
    /// Insert a new record (errors if it exists).
    Insert {
        /// Record to insert.
        key: Key,
        /// Row value.
        row: Row,
    },
    /// Delete a record.
    Delete {
        /// Record to delete.
        key: Key,
    },
    /// Add `delta` to integer column `col` (balance-style update).
    AddInt {
        /// Record to update.
        key: Key,
        /// Column index.
        col: usize,
        /// Amount to add.
        delta: i64,
    },
}

impl DsOperation {
    /// The record this operation touches.
    pub fn key(&self) -> Key {
        match self {
            DsOperation::Read { key }
            | DsOperation::ReadForUpdate { key }
            | DsOperation::Write { key, .. }
            | DsOperation::Insert { key, .. }
            | DsOperation::Delete { key }
            | DsOperation::AddInt { key, .. } => *key,
        }
    }

    /// Whether the operation takes an exclusive lock.
    pub fn is_write(&self) -> bool {
        !matches!(self, DsOperation::Read { .. })
    }
}

/// One statement batch dispatched by the middleware to one data source.
#[derive(Debug, Clone, PartialEq)]
pub struct StatementRequest {
    /// The branch this batch belongs to.
    pub xid: Xid,
    /// Start the branch (`XA START`) before executing. The middleware piggybacks
    /// the start on the first batch to save a round trip, as real drivers do.
    pub begin: bool,
    /// Operations to execute in order.
    pub ops: Vec<DsOperation>,
    /// Annotation: this is the branch's last statement; with decentralized
    /// prepare enabled the geo-agent starts the prepare phase right after it.
    pub is_last: bool,
    /// Whether the geo-agent should run the decentralized prepare when
    /// `is_last` (GeoTP / Chiller); classic XA middlewares leave this off.
    pub decentralized_prepare: bool,
    /// Whether the geo-agent should proactively abort sibling branches on
    /// failure (GeoTP's early abort).
    pub early_abort: bool,
    /// Data-source indexes of the sibling branches of this distributed
    /// transaction (empty for centralized transactions).
    pub peers: Vec<u32>,
    /// Trace context riding the message: the dispatching coordinator's open
    /// span, under which the geo-agent parents its own spans so one trace
    /// crosses the client → coordinator → data-source boundary. `None` when
    /// telemetry is off (the common case) — propagation adds no RNG draws, no
    /// sleeps and no schedule changes either way.
    pub trace_parent: Option<geotp_telemetry::SpanId>,
}

impl StatementRequest {
    /// A minimal request executing `ops` for `xid` with every optional
    /// behaviour disabled. Useful in tests.
    pub fn simple(xid: Xid, ops: Vec<DsOperation>) -> Self {
        Self {
            xid,
            begin: false,
            ops,
            is_last: false,
            decentralized_prepare: false,
            early_abort: false,
            peers: Vec::new(),
            trace_parent: None,
        }
    }
}

/// Result of executing a statement batch.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutcome {
    /// All operations succeeded; the rows read (in operation order) follow.
    Ok {
        /// Rows produced by read operations.
        rows: Vec<Row>,
    },
    /// An operation failed; the branch has been rolled back locally.
    Failed {
        /// The error raised by the storage engine.
        error: StorageError,
    },
}

impl StatementOutcome {
    /// Whether the batch succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, StatementOutcome::Ok { .. })
    }
}

/// Response to a [`StatementRequest`], including local timing the middleware
/// feeds into the hotspot footprint (`MultiStatementsHandler.feedback()` in
/// the paper's implementation).
#[derive(Debug, Clone, PartialEq)]
pub struct StatementResponse {
    /// Outcome of the batch.
    pub outcome: StatementOutcome,
    /// Local execution latency of the batch on the data source: lock waits
    /// plus statement execution, excluding any network time.
    pub local_execution_latency: Duration,
}

/// The vote a geo-agent reports for a branch after the (decentralized or
/// explicit) prepare phase. Mirrors the message set of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepareVote {
    /// The branch is prepared and can be committed.
    Prepared,
    /// Centralized transaction: no prepare needed, branch idles awaiting the
    /// one-phase commit.
    Idle,
    /// The prepare failed; the branch was rolled back.
    Failure,
    /// The branch could not even finish execution and was rolled back.
    RollbackOnly,
}

impl PrepareVote {
    /// Whether this vote allows the transaction to commit.
    pub fn is_yes(&self) -> bool {
        matches!(self, PrepareVote::Prepared | PrepareVote::Idle)
    }
}

/// Asynchronous notifications pushed from a geo-agent to the middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentNotification {
    /// The outcome of the decentralized prepare phase for a branch.
    PrepareResult {
        /// The branch.
        xid: Xid,
        /// Its vote.
        vote: PrepareVote,
    },
    /// A branch has been rolled back (possibly triggered by a peer's early
    /// abort).
    Rollbacked {
        /// The branch.
        xid: Xid,
    },
}

impl AgentNotification {
    /// The branch the notification refers to.
    pub fn xid(&self) -> Xid {
        match self {
            AgentNotification::PrepareResult { xid, .. }
            | AgentNotification::Rollbacked { xid } => *xid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_storage::TableId;

    #[test]
    fn dialect_command_sequences() {
        let xid = Xid::new(7, 2);
        let mysql = Dialect::MySql.prepare_commands(xid);
        assert_eq!(mysql, vec!["XA END '7,2'", "XA PREPARE '7,2'"]);
        let pg = Dialect::Postgres.prepare_commands(xid);
        assert_eq!(pg, vec!["PREPARE TRANSACTION '7_2'"]);
        assert_eq!(Dialect::MySql.commit_command(xid), "XA COMMIT '7,2'");
        assert_eq!(
            Dialect::Postgres.commit_command(xid),
            "COMMIT PREPARED '7_2'"
        );
        assert_eq!(Dialect::MySql.name(), "MySQL");
    }

    #[test]
    fn operation_key_and_write_flags() {
        let key = Key::new(TableId(1), 9);
        assert!(!DsOperation::Read { key }.is_write());
        assert!(DsOperation::AddInt {
            key,
            col: 0,
            delta: 1
        }
        .is_write());
        assert_eq!(DsOperation::Delete { key }.key(), key);
    }

    #[test]
    fn prepare_vote_semantics() {
        assert!(PrepareVote::Prepared.is_yes());
        assert!(PrepareVote::Idle.is_yes());
        assert!(!PrepareVote::Failure.is_yes());
        assert!(!PrepareVote::RollbackOnly.is_yes());
    }

    #[test]
    fn notification_xid_accessor() {
        let xid = Xid::new(1, 1);
        let n = AgentNotification::PrepareResult {
            xid,
            vote: PrepareVote::Prepared,
        };
        assert_eq!(n.xid(), xid);
    }
}
