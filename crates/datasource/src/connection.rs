//! Middleware-side connection stub towards one data source.
//!
//! Every request/response pair pays the simulated WAN latency between the
//! middleware node and the data-source node, exactly like the TCP connections
//! the paper's middleware keeps in its connection pool.

use std::rc::Rc;
use std::time::Duration;

use geotp_net::{Network, NodeId};
use geotp_storage::{StorageError, Xid};

use crate::messages::{PrepareVote, StatementRequest, StatementResponse};
use crate::server::DataSource;

/// A connection from a middleware node to one data source.
#[derive(Clone)]
pub struct DsConnection {
    dm: NodeId,
    ds: Rc<DataSource>,
    net: Rc<Network>,
    /// The coordinator's membership epoch, stamped on every command so the
    /// server can reject a fenced (declared-dead) coordinator. `0` is the
    /// unfenced single-coordinator default.
    epoch: u64,
}

impl DsConnection {
    /// Open a connection from middleware `dm` to the data source.
    pub fn new(dm: NodeId, ds: Rc<DataSource>, net: Rc<Network>) -> Self {
        Self {
            dm,
            ds,
            net,
            epoch: 0,
        }
    }

    /// Stamp every command on this connection with the coordinator's
    /// membership epoch.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The epoch this connection stamps on its commands.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The data source this connection talks to.
    pub fn data_source(&self) -> &Rc<DataSource> {
        &self.ds
    }

    /// The data source's node id.
    pub fn node(&self) -> NodeId {
        self.ds.node()
    }

    /// The data source's index.
    pub fn index(&self) -> u32 {
        self.ds.index()
    }

    /// Current nominal RTT from the middleware to this data source.
    pub fn nominal_rtt(&self) -> Duration {
        self.net.nominal_rtt(self.dm, self.ds.node())
    }

    async fn round_trip<T>(&self, work: impl std::future::Future<Output = T>) -> T {
        self.net.transfer(self.dm, self.ds.node()).await;
        let out = work.await;
        self.net.transfer(self.ds.node(), self.dm).await;
        out
    }

    /// Execute a statement batch (one WAN round trip). A fenced coordinator's
    /// batch is refused at the server before touching the engine.
    pub async fn execute(&self, req: StatementRequest) -> StatementResponse {
        self.round_trip(async {
            if let Err(error) = self.ds.fence_check(self.dm, self.epoch, req.xid) {
                return StatementResponse {
                    outcome: crate::messages::StatementOutcome::Failed { error },
                    local_execution_latency: std::time::Duration::ZERO,
                };
            }
            self.ds.execute(self.dm, &req).await
        })
        .await
    }

    /// Explicit prepare (one WAN round trip) — the classic XA path.
    pub async fn prepare(&self, xid: Xid) -> PrepareVote {
        self.round_trip(async {
            if self.ds.fence_check(self.dm, self.epoch, xid).is_err() {
                return PrepareVote::Failure;
            }
            self.ds.prepare(xid).await
        })
        .await
    }

    /// Commit a branch (one WAN round trip). Rejected if this coordinator's
    /// epoch has been fenced — a stale COMMIT must not contradict the outcome
    /// the adopting peer drove.
    pub async fn commit(&self, xid: Xid, one_phase: bool) -> Result<(), StorageError> {
        self.round_trip(async {
            self.ds.fence_check(self.dm, self.epoch, xid)?;
            self.ds.commit(xid, one_phase).await
        })
        .await
    }

    /// Commit a branch that performed no writes (one WAN round trip, no
    /// prepare, no WAL flush on the server). Fenced like a normal commit.
    pub async fn commit_read_only(&self, xid: Xid) -> Result<(), StorageError> {
        self.round_trip(async {
            self.ds.fence_check(self.dm, self.epoch, xid)?;
            self.ds.commit_read_only(xid)
        })
        .await
    }

    /// Roll back a branch (one WAN round trip). Fenced like commit: the
    /// branch belongs to the adopting peer once the epoch is sealed.
    pub async fn rollback(&self, xid: Xid) -> Result<(), StorageError> {
        self.round_trip(async {
            self.ds.fence_check(self.dm, self.epoch, xid)?;
            self.ds.rollback(xid).await
        })
        .await
    }

    /// `XA RECOVER`: fetch the prepared-but-undecided branches (one round trip).
    pub async fn recover_prepared(&self) -> Vec<Xid> {
        self.round_trip(async { self.ds.recover_prepared() }).await
    }

    /// `XA RECOVER` scoped to coordinator `owner`'s gtrid space (one round
    /// trip) — what peer takeover adopts.
    pub async fn recover_prepared_owned_by(&self, owner: u32) -> Vec<Xid> {
        self.round_trip(async { self.ds.recover_prepared_owned_by(owner) })
            .await
    }

    /// Measure the current RTT with a ping.
    pub async fn ping(&self) -> Duration {
        self.net.ping(self.dm, self.ds.node()).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{DsOperation, StatementOutcome};
    use crate::server::DataSourceConfig;
    use geotp_net::NetworkBuilder;
    use geotp_simrt::{now, Runtime};
    use geotp_storage::{CostModel, EngineConfig, Key, Row, TableId};

    #[test]
    fn execute_pays_one_wan_round_trip() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let dm = NodeId::middleware(0);
            let node = NodeId::data_source(0);
            let net = NetworkBuilder::new(1)
                .static_link(dm, node, Duration::from_millis(73))
                .build();
            let mut cfg = DataSourceConfig::new(node);
            cfg.engine = EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            };
            let ds = DataSource::new(cfg, Rc::clone(&net));
            ds.load(Key::new(TableId(0), 1), Row::int(10));
            let conn = DsConnection::new(dm, Rc::clone(&ds), net);
            assert_eq!(conn.nominal_rtt(), Duration::from_millis(73));
            assert_eq!(conn.index(), 0);

            let started = now();
            let xid = Xid::new(1, 0);
            let resp = conn
                .execute(StatementRequest {
                    xid,
                    begin: true,
                    ops: vec![DsOperation::Read {
                        key: Key::new(TableId(0), 1),
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![],
                    trace_parent: None,
                })
                .await;
            assert!(matches!(resp.outcome, StatementOutcome::Ok { .. }));
            assert_eq!(now().duration_since(started), Duration::from_millis(73));

            // Classic XA: explicit prepare and commit are one round trip each.
            let before = now();
            assert_eq!(conn.prepare(xid).await, PrepareVote::Prepared);
            conn.commit(xid, false).await.unwrap();
            assert_eq!(now().duration_since(before), Duration::from_millis(146));
            assert_eq!(conn.ping().await, Duration::from_millis(73));
        });
    }

    #[test]
    fn recover_prepared_lists_branches() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let dm = NodeId::middleware(0);
            let node = NodeId::data_source(2);
            let net = NetworkBuilder::new(1)
                .static_link(dm, node, Duration::from_millis(10))
                .build();
            let mut cfg = DataSourceConfig::new(node);
            cfg.engine = EngineConfig {
                lock_wait_timeout: Duration::from_secs(5),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            };
            let ds = DataSource::new(cfg, Rc::clone(&net));
            ds.load(Key::new(TableId(0), 1), Row::int(10));
            let conn = DsConnection::new(dm, Rc::clone(&ds), net);
            let xid = Xid::new(4, 2);
            conn.execute(StatementRequest {
                xid,
                begin: true,
                ops: vec![DsOperation::AddInt {
                    key: Key::new(TableId(0), 1),
                    col: 0,
                    delta: 1,
                }],
                is_last: false,
                decentralized_prepare: false,
                early_abort: false,
                peers: vec![0],
                trace_parent: None,
            })
            .await;
            conn.prepare(xid).await;
            assert_eq!(conn.recover_prepared().await, vec![xid]);
            conn.rollback(xid).await.unwrap();
            assert_eq!(conn.recover_prepared().await, Vec::<Xid>::new());
        });
    }
}
