//! # geotp-datasource — data sources and geo-agents
//!
//! The second layer of the GeoTP architecture (paper §III-B): each data source
//! node hosts a storage engine (the stand-in for MySQL/PostgreSQL) together
//! with a **geo-agent**. The geo-agent owns
//!
//! * a connection pool towards the middleware and towards the *other*
//!   geo-agents,
//! * a local transaction manager tracking branch state,
//! * the **decentralized prepare** path (§IV-A): when the last statement of a
//!   branch finishes, the agent immediately drives `XA END` / `XA PREPARE`
//!   (MySQL dialect) or `PREPARE TRANSACTION` (PostgreSQL dialect) over the
//!   local LAN and pushes the vote to the middleware asynchronously,
//! * the **early abort** path (§IV-A): when a statement fails, the agent
//!   proactively asks peer data sources to roll back the sibling branches,
//!   bypassing the middleware and saving half a WAN round trip.
//!
//! The middleware talks to a data source through a [`DsConnection`], which
//! charges the simulated WAN latency for every request/response pair, exactly
//! like a TCP connection over the emulated network in the paper's testbed.

pub mod connection;
pub mod messages;
pub mod server;

pub use connection::DsConnection;
pub use messages::{
    AgentNotification, Dialect, DsOperation, PrepareVote, StatementOutcome, StatementRequest,
    StatementResponse,
};
pub use server::{DataSource, DataSourceConfig, DataSourceStats};
