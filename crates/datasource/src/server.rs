//! The data-source server: storage engine + geo-agent.

use std::cell::RefCell;
use std::rc::{Rc, Weak};
use std::time::Duration;

use geotp_net::{Network, NodeId};
use geotp_simrt::hash::{FxHashMap, FxHashSet};
use geotp_simrt::sync::mpsc;
use geotp_simrt::{now, sleep, spawn};
use geotp_storage::{EngineConfig, Row, StorageEngine, StorageError, Xid};

use crate::messages::{
    AgentNotification, Dialect, DsOperation, PrepareVote, StatementOutcome, StatementRequest,
    StatementResponse,
};

/// Configuration of one data source node.
#[derive(Debug, Clone)]
pub struct DataSourceConfig {
    /// The node identity in the simulated network.
    pub node: NodeId,
    /// SQL dialect (drives the rewritten command sequences).
    pub dialect: Dialect,
    /// Storage-engine configuration (lock timeout, local costs).
    pub engine: EngineConfig,
    /// Round-trip time between the geo-agent and its co-located database
    /// (the LAN hop the decentralized prepare pays instead of a WAN trip).
    pub agent_lan_rtt: Duration,
}

impl DataSourceConfig {
    /// Defaults: MySQL dialect, default engine configuration, 0.5 ms LAN RTT.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            dialect: Dialect::MySql,
            engine: EngineConfig::default(),
            agent_lan_rtt: Duration::from_micros(500),
        }
    }

    /// Override the dialect.
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Override the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Counters maintained by the geo-agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataSourceStats {
    /// Statement batches executed.
    pub statements: u64,
    /// Decentralized prepares initiated by the geo-agent.
    pub decentralized_prepares: u64,
    /// Early-abort notifications sent to peer geo-agents.
    pub early_aborts_sent: u64,
    /// Rollbacks performed because a peer geo-agent asked for them.
    pub peer_rollbacks: u64,
    /// Statement batches that failed.
    pub failed_statements: u64,
}

/// One data source node: the storage engine plus its geo-agent.
pub struct DataSource {
    config: DataSourceConfig,
    engine: Rc<StorageEngine>,
    net: Rc<Network>,
    /// Notification channels towards each registered middleware, keyed by the
    /// middleware's node id.
    dm_channels: RefCell<FxHashMap<NodeId, mpsc::Sender<AgentNotification>>>,
    /// Connection pool towards peer geo-agents, keyed by data-source index.
    peers: RefCell<FxHashMap<u32, Weak<DataSource>>>,
    /// Local transaction manager: which middleware coordinates each branch and
    /// which peer data sources participate in the same global transaction.
    branches: RefCell<FxHashMap<Xid, BranchInfo>>,
    /// Early-abort tombstones: branches a peer geo-agent asked to abort
    /// *before* their first statement arrived (possible when the scheduler
    /// postpones the local branch). The branch is refused on arrival.
    abort_marks: RefCell<FxHashSet<Xid>>,
    /// Branches that already concluded here (committed, rolled back or
    /// refused). Lets [`DataSource::peer_rollback`] tell a *late or
    /// duplicated* abort request (a no-op) apart from one racing ahead of
    /// the branch's first statement (a tombstone) — without it, a second
    /// request for a finished branch planted a bogus tombstone and
    /// double-counted `peer_rollbacks`.
    finished_branches: RefCell<FxHashSet<Xid>>,
    /// Per-coordinator epoch fences: commands from a coordinator whose epoch
    /// is below its fence are rejected (the cluster declared it dead and a
    /// peer adopted its in-doubt branches — a stale COMMIT/ROLLBACK from the
    /// walking dead must not contradict the adopted outcome). Coordinators
    /// without an entry are unfenced (the single-coordinator world).
    fences: RefCell<FxHashMap<NodeId, u64>>,
    stats: RefCell<DataSourceStats>,
}

#[derive(Debug, Clone)]
struct BranchInfo {
    coordinator: NodeId,
    peers: Vec<u32>,
}

impl DataSource {
    /// Create a data source attached to the simulated network.
    pub fn new(config: DataSourceConfig, net: Rc<Network>) -> Rc<Self> {
        let engine = StorageEngine::new(config.engine);
        Rc::new(Self {
            config,
            engine,
            net,
            dm_channels: RefCell::new(FxHashMap::default()),
            peers: RefCell::new(FxHashMap::default()),
            branches: RefCell::new(FxHashMap::default()),
            abort_marks: RefCell::new(FxHashSet::default()),
            finished_branches: RefCell::new(FxHashSet::default()),
            fences: RefCell::new(FxHashMap::default()),
            stats: RefCell::new(DataSourceStats::default()),
        })
    }

    /// The node identity of this data source.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// The data-source index (within [`NodeId::data_source`] numbering).
    pub fn index(&self) -> u32 {
        self.config.node.index()
    }

    /// The SQL dialect of this data source.
    pub fn dialect(&self) -> Dialect {
        self.config.dialect
    }

    /// Direct access to the underlying storage engine (loading data,
    /// inspecting state in tests and experiments).
    pub fn engine(&self) -> &Rc<StorageEngine> {
        &self.engine
    }

    /// Geo-agent statistics.
    pub fn stats(&self) -> DataSourceStats {
        *self.stats.borrow()
    }

    /// Register the notification channel of a middleware. Called by the
    /// cluster builder when a middleware connects.
    pub fn register_middleware(&self, dm: NodeId, channel: mpsc::Sender<AgentNotification>) {
        self.dm_channels.borrow_mut().insert(dm, channel);
    }

    /// Fence coordinator `dm`: every future command it issues with an epoch
    /// below `min_epoch` is rejected. Idempotent and raising-only, like the
    /// commit-log fence.
    pub fn fence_coordinator(&self, dm: NodeId, min_epoch: u64) {
        let mut fences = self.fences.borrow_mut();
        let entry = fences.entry(dm).or_insert(0);
        if min_epoch > *entry {
            *entry = min_epoch;
        }
    }

    /// The minimum epoch currently accepted from coordinator `dm` (0 when
    /// unfenced).
    pub fn coordinator_fence(&self, dm: NodeId) -> u64 {
        self.fences.borrow().get(&dm).copied().unwrap_or(0)
    }

    /// Reject a command from `dm` at `epoch` if the coordinator is fenced.
    pub fn fence_check(&self, dm: NodeId, epoch: u64, xid: Xid) -> Result<(), StorageError> {
        if epoch < self.coordinator_fence(dm) {
            return Err(StorageError::InvalidState {
                xid,
                reason: "command from a fenced coordinator epoch",
            });
        }
        Ok(())
    }

    /// Register a peer geo-agent in this agent's connection pool.
    pub fn register_peer(&self, peer: &Rc<DataSource>) {
        self.peers
            .borrow_mut()
            .insert(peer.index(), Rc::downgrade(peer));
    }

    /// Bulk-load a record (initial population, no locking or logging).
    pub fn load(&self, key: geotp_storage::Key, row: Row) {
        self.engine.load(key, row);
    }

    /// Record that a branch concluded on this node (bounded like the
    /// tombstone set: these are failure-path artifacts, not hot state).
    fn mark_finished(&self, xid: Xid) {
        let mut finished = self.finished_branches.borrow_mut();
        if finished.len() > 100_000 {
            finished.clear();
        }
        finished.insert(xid);
    }

    /// Push a notification towards middleware `dm` in the background.
    ///
    /// Notifications ride the *unreliable* network path: under a chaos fault
    /// plane they can be dropped or duplicated (the geo-agent pushes them
    /// fire-and-forget and never learns). A crashed data source sends
    /// nothing — its geo-agent died with it.
    fn notify_dm(self: &Rc<Self>, dm: NodeId, notification: AgentNotification) {
        if self.is_crashed() {
            return;
        }
        let Some(channel) = self.dm_channels.borrow().get(&dm).cloned() else {
            return;
        };
        let net = Rc::clone(&self.net);
        let from = self.config.node;
        spawn(async move {
            let copies = net.transfer_unreliable(from, dm).await;
            for _ in 0..copies {
                let _ = channel.send(notification.clone());
            }
        });
    }

    /// Like [`DataSource::notify_dm`] but awaited in place — for callers that
    /// are already a background task with nothing left to do, saving a task
    /// spawn per notification on the decentralized-prepare hot path.
    async fn notify_dm_inline(&self, dm: NodeId, notification: AgentNotification) {
        if self.is_crashed() {
            return;
        }
        let Some(channel) = self.dm_channels.borrow().get(&dm).cloned() else {
            return;
        };
        let copies = self.net.transfer_unreliable(self.config.node, dm).await;
        for _ in 0..copies {
            let _ = channel.send(notification.clone());
        }
    }

    /// Execute a statement batch on behalf of the middleware `from`.
    ///
    /// This is the geo-agent's main entry point: it runs the operations on the
    /// engine, reports the local execution latency back (hotspot feedback) and
    /// — when the batch is the branch's last statement and decentralized
    /// prepare is enabled — kicks off the implicit prepare phase.
    pub async fn execute(
        self: &Rc<Self>,
        from: NodeId,
        req: &StatementRequest,
    ) -> StatementResponse {
        let started = now();
        self.stats.borrow_mut().statements += 1;
        // The geo-agent's slice of the transaction's trace: parented under
        // the coordinator span that rode the request, so one trace crosses
        // the middleware → data-source boundary. Scoped, so the storage
        // layer's `LockWait` leaves nest under it.
        let exec_span = geotp_telemetry::span_scoped_under(
            req.xid.gtrid,
            geotp_telemetry::TraceNode::data_source(self.index()),
            geotp_telemetry::SpanKind::AgentExec,
            req.ops.len() as u64,
            req.trace_parent,
        );

        // A peer already asked to abort this branch (early abort raced ahead
        // of the branch's first statement): refuse it and confirm the rollback.
        if self.abort_marks.borrow_mut().remove(&req.xid) {
            self.mark_finished(req.xid);
            self.stats.borrow_mut().failed_statements += 1;
            self.notify_dm(from, AgentNotification::Rollbacked { xid: req.xid });
            geotp_telemetry::span_end(exec_span);
            return StatementResponse {
                outcome: StatementOutcome::Failed {
                    error: StorageError::InvalidState {
                        xid: req.xid,
                        reason: "branch aborted by a peer before it started",
                    },
                },
                local_execution_latency: now().duration_since(started),
            };
        }

        if req.begin {
            self.branches.borrow_mut().insert(
                req.xid,
                BranchInfo {
                    coordinator: from,
                    peers: req.peers.clone(),
                },
            );
            if let Err(error) = self.engine.begin(req.xid) {
                self.stats.borrow_mut().failed_statements += 1;
                geotp_telemetry::span_end(exec_span);
                return StatementResponse {
                    outcome: StatementOutcome::Failed { error },
                    local_execution_latency: now().duration_since(started),
                };
            }
        } else if let Some(info) = self.branches.borrow_mut().get_mut(&req.xid) {
            // Later rounds may refine the peer list (interactive transactions).
            if !req.peers.is_empty() {
                info.peers = req.peers.clone();
            }
        }

        let mut rows = Vec::with_capacity(req.ops.len());
        for op in &req.ops {
            let result = self.apply(req.xid, op).await;
            match result {
                Ok(Some(row)) => rows.push(row),
                Ok(None) => {}
                Err(error) => {
                    self.stats.borrow_mut().failed_statements += 1;
                    self.fail_branch(from, req, error.clone()).await;
                    geotp_telemetry::span_end(exec_span);
                    return StatementResponse {
                        outcome: StatementOutcome::Failed { error },
                        local_execution_latency: now().duration_since(started),
                    };
                }
            }
        }

        if req.is_last && req.decentralized_prepare {
            self.spawn_decentralized_prepare(from, req);
        }

        geotp_telemetry::span_end(exec_span);
        StatementResponse {
            outcome: StatementOutcome::Ok { rows },
            local_execution_latency: now().duration_since(started),
        }
    }

    async fn apply(&self, xid: Xid, op: &DsOperation) -> Result<Option<Row>, StorageError> {
        match op {
            DsOperation::Read { key } => self.engine.read(xid, *key).await.map(Some),
            DsOperation::ReadForUpdate { key } => {
                self.engine.read_for_update(xid, *key).await.map(Some)
            }
            DsOperation::Write { key, row } => self
                .engine
                .write(xid, *key, row.clone())
                .await
                .map(|_| None),
            DsOperation::Insert { key, row } => self
                .engine
                .insert(xid, *key, row.clone())
                .await
                .map(|_| None),
            DsOperation::Delete { key } => self.engine.delete(xid, *key).await.map(|_| None),
            DsOperation::AddInt { key, col, delta } => self
                .engine
                .add_int(xid, *key, *col, *delta)
                .await
                .map(|v| Some(Row::int(v))),
        }
    }

    /// Handle a statement failure: roll back the local branch and, when early
    /// abort is enabled, proactively tell peer geo-agents to roll back theirs.
    async fn fail_branch(
        self: &Rc<Self>,
        from: NodeId,
        req: &StatementRequest,
        _error: StorageError,
    ) {
        // Stop queueing for any lock we are still waiting on and roll back.
        self.engine.lock_manager().cancel_waiters(req.xid);
        let _ = self.engine.rollback(req.xid).await;
        self.notify_dm(from, AgentNotification::Rollbacked { xid: req.xid });

        // A crashed data source sends nothing — not to the coordinator (the
        // `notify_dm` above already refuses) and not to peers either. Without
        // this guard a dead geo-agent still pushed early aborts, and under
        // the duplicate-delivery preset each such zombie message was
        // delivered twice, inflating peer-rollback counts in the failure
        // drills. The coordinator's decision-wait timeout now rolls the
        // surviving branches back explicitly, so nothing depends on a dead
        // process speaking.
        if req.early_abort && !self.is_crashed() {
            let peers = if req.peers.is_empty() {
                self.branches
                    .borrow()
                    .get(&req.xid)
                    .map(|b| b.peers.clone())
                    .unwrap_or_default()
            } else {
                req.peers.clone()
            };
            for peer_idx in peers {
                if peer_idx == self.index() {
                    continue;
                }
                let Some(peer) = self.peers.borrow().get(&peer_idx).and_then(Weak::upgrade) else {
                    continue;
                };
                self.stats.borrow_mut().early_aborts_sent += 1;
                let net = Rc::clone(&self.net);
                let from_node = self.config.node;
                let peer_xid = Xid::new(req.xid.gtrid, peer_idx);
                let this = Rc::clone(self);
                spawn(async move {
                    // WAN hop between the two geo-agents.
                    net.transfer(from_node, peer.node()).await;
                    peer.peer_rollback(peer_xid).await;
                    let _ = this;
                });
            }
        }
        self.branches.borrow_mut().remove(&req.xid);
        self.mark_finished(req.xid);
    }

    /// Roll back a branch at the request of a *peer* geo-agent (early abort),
    /// then notify the coordinating middleware that the branch is gone.
    ///
    /// Idempotent: when two failing siblings of a ≥3-branch transaction both
    /// early-abort this branch (or the duplicate-delivery fault doubles the
    /// request), the second call finds the branch gone, counts nothing and
    /// sends nothing — previously it double-counted `peer_rollbacks` and
    /// re-sent the `Rollbacked` notification.
    pub async fn peer_rollback(self: &Rc<Self>, xid: Xid) {
        if self.finished_branches.borrow().contains(&xid) {
            return; // late or duplicated request for a concluded branch
        }
        let coordinator = self.branches.borrow().get(&xid).map(|b| b.coordinator);
        if coordinator.is_none() && self.engine.state_of(xid).is_none() {
            // The branch has not arrived yet (its dispatch was postponed by
            // the scheduler). Leave a tombstone so it is refused on arrival;
            // a repeated request for the same branch changes nothing.
            let mut marks = self.abort_marks.borrow_mut();
            if marks.len() > 100_000 {
                marks.clear();
            }
            if marks.insert(xid) {
                self.stats.borrow_mut().peer_rollbacks += 1;
            }
            return;
        }
        self.stats.borrow_mut().peer_rollbacks += 1;
        self.engine.lock_manager().cancel_waiters(xid);
        if self.engine.state_of(xid).is_some() {
            let _ = self.engine.rollback(xid).await;
        }
        self.branches.borrow_mut().remove(&xid);
        self.mark_finished(xid);
        if let Some(dm) = coordinator {
            self.notify_dm(dm, AgentNotification::Rollbacked { xid });
        }
    }

    /// Kick off the decentralized prepare phase for a branch in the
    /// background. The vote is pushed to the middleware asynchronously.
    fn spawn_decentralized_prepare(self: &Rc<Self>, dm: NodeId, req: &StatementRequest) {
        self.stats.borrow_mut().decentralized_prepares += 1;
        let this = Rc::clone(self);
        let xid = req.xid;
        let peers_empty = req.peers.is_empty();
        let trace_parent = req.trace_parent;
        spawn(async move {
            // One LAN round trip from the geo-agent to its database.
            sleep(this.config.agent_lan_rtt).await;
            let prepare_span = geotp_telemetry::span_leaf_under(
                xid.gtrid,
                geotp_telemetry::TraceNode::data_source(this.index()),
                geotp_telemetry::SpanKind::Prepare,
                xid.bqual as u64,
                trace_parent,
            );
            let vote = this.async_prepare(xid, peers_empty).await;
            geotp_telemetry::span_end(prepare_span);
            this.notify_dm_inline(dm, AgentNotification::PrepareResult { xid, vote })
                .await;
        });
    }

    /// The geo-agent's `AsyncPrepare` (Algorithm 1): end the branch, and if
    /// the transaction is distributed, prepare it. Centralized branches only
    /// end and report `Idle`.
    pub async fn async_prepare(self: &Rc<Self>, xid: Xid, centralized: bool) -> PrepareVote {
        if self.engine.state_of(xid).is_none() {
            // Already rolled back (e.g. early abort raced with the prepare).
            return PrepareVote::RollbackOnly;
        }
        if let Err(_e) = self.engine.end(xid) {
            let _ = self.engine.rollback(xid).await;
            return PrepareVote::RollbackOnly;
        }
        if centralized {
            return PrepareVote::Idle;
        }
        match self.engine.prepare(xid).await {
            Ok(()) => PrepareVote::Prepared,
            Err(_e) => {
                let _ = self.engine.rollback(xid).await;
                PrepareVote::Failure
            }
        }
    }

    /// Explicit prepare, driven by the middleware over the WAN (the classic
    /// XA path used by the SSP baseline).
    pub async fn prepare(self: &Rc<Self>, xid: Xid) -> PrepareVote {
        if self.engine.state_of(xid).is_none() {
            return PrepareVote::RollbackOnly;
        }
        if matches!(
            self.engine.state_of(xid),
            Some(geotp_storage::XaState::Active)
        ) && self.engine.end(xid).is_err()
        {
            let _ = self.engine.rollback(xid).await;
            return PrepareVote::RollbackOnly;
        }
        match self.engine.prepare(xid).await {
            Ok(()) => PrepareVote::Prepared,
            Err(_) => {
                let _ = self.engine.rollback(xid).await;
                PrepareVote::Failure
            }
        }
    }

    /// Commit a branch (two-phase if prepared, one-phase otherwise).
    pub async fn commit(self: &Rc<Self>, xid: Xid, one_phase: bool) -> Result<(), StorageError> {
        let result = self.engine.commit(xid, one_phase).await;
        self.branches.borrow_mut().remove(&xid);
        if result.is_ok() {
            self.mark_finished(xid);
        }
        result
    }

    /// Commit a branch that performed no writes: no prepare, no WAL flush, no
    /// decision-apply cost. The engine refuses if the branch wrote anything,
    /// so the fast path can never lose a durable decision.
    pub fn commit_read_only(self: &Rc<Self>, xid: Xid) -> Result<(), StorageError> {
        let result = self.engine.commit_read_only(xid);
        self.branches.borrow_mut().remove(&xid);
        if result.is_ok() {
            self.mark_finished(xid);
        }
        result
    }

    /// Roll back a branch on the middleware's request.
    pub async fn rollback(self: &Rc<Self>, xid: Xid) -> Result<(), StorageError> {
        self.engine.lock_manager().cancel_waiters(xid);
        let result = if self.engine.state_of(xid).is_some() {
            self.engine.rollback(xid).await
        } else {
            Ok(())
        };
        self.branches.borrow_mut().remove(&xid);
        self.mark_finished(xid);
        result
    }

    /// Branches in the prepared state (`XA RECOVER`), used by middleware
    /// failure recovery.
    pub fn recover_prepared(&self) -> Vec<Xid> {
        self.engine.prepared_xids()
    }

    /// `XA RECOVER` scoped to one coordinator's gtrid space: the prepared
    /// branches whose gtrid was allocated by coordinator `owner`. Peer
    /// takeover adopts exactly these — the in-doubt branches of the live
    /// coordinators are none of the adopter's business.
    pub fn recover_prepared_owned_by(&self, owner: u32) -> Vec<Xid> {
        let mut xids = self.engine.prepared_xids();
        xids.retain(|xid| xid.owner() == owner);
        xids
    }

    /// Abort every branch that has not completed the prepare phase — what the
    /// data source does when its coordinator disconnects (paper setting ❶).
    pub async fn coordinator_disconnected(self: &Rc<Self>) -> Vec<Xid> {
        let victims = self.engine.abort_unprepared().await;
        for xid in &victims {
            self.branches.borrow_mut().remove(xid);
            self.mark_finished(*xid);
        }
        victims
    }

    /// Disconnect handling scoped to one coordinator: abort the unprepared
    /// (ACTIVE/ENDED) branches in `owner`'s gtrid space only, leaving every
    /// other coordinator's in-flight branches untouched. This is what a data
    /// source does when the *cluster* declares one coordinator of many dead.
    pub async fn coordinator_disconnected_scoped(self: &Rc<Self>, owner: u32) -> Vec<Xid> {
        let mut victims = self.engine.unfinished_xids();
        victims.retain(|xid| xid.owner() == owner);
        for xid in &victims {
            self.engine.lock_manager().cancel_waiters(*xid);
            let _ = self.engine.rollback(*xid).await;
            self.branches.borrow_mut().remove(xid);
            self.mark_finished(*xid);
        }
        victims
    }

    /// Simulate a crash of this data source (the geo-agent dies with it).
    pub fn crash(&self) {
        self.engine.crash();
    }

    /// Restart after a crash (paper setting ❷): unprepared branches are gone,
    /// prepared branches survive and wait for the coordinator's decision.
    pub async fn restart(self: &Rc<Self>) -> Vec<Xid> {
        self.engine.restart().await
    }

    /// Whether the data source is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.engine.is_crashed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_net::NetworkBuilder;
    use geotp_simrt::Runtime;
    use geotp_storage::{CostModel, Key, TableId};

    fn key(row: u64) -> Key {
        Key::new(TableId(0), row)
    }

    fn setup(lan_rtt_ms: u64, wan_ms: u64) -> (Rc<Network>, Rc<DataSource>, NodeId) {
        let dm = NodeId::middleware(0);
        let ds_node = NodeId::data_source(0);
        let net = NetworkBuilder::new(1)
            .static_link(dm, ds_node, Duration::from_millis(wan_ms))
            .build();
        let mut cfg = DataSourceConfig::new(ds_node);
        cfg.agent_lan_rtt = Duration::from_millis(lan_rtt_ms);
        cfg.engine = EngineConfig {
            lock_wait_timeout: Duration::from_secs(5),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        };
        let ds = DataSource::new(cfg, Rc::clone(&net));
        ds.load(key(1), Row::int(100));
        ds.load(key(2), Row::int(200));
        (net, ds, dm)
    }

    #[test]
    fn execute_reads_and_writes() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, ds, dm) = setup(0, 10);
            let xid = Xid::new(1, 0);
            let req = StatementRequest {
                xid,
                begin: true,
                ops: vec![
                    DsOperation::Read { key: key(1) },
                    DsOperation::AddInt {
                        key: key(2),
                        col: 0,
                        delta: 5,
                    },
                ],
                is_last: false,
                decentralized_prepare: false,
                early_abort: false,
                peers: vec![],
                trace_parent: None,
            };
            let resp = ds.execute(dm, &req).await;
            match resp.outcome {
                StatementOutcome::Ok { rows } => {
                    assert_eq!(rows.len(), 2);
                    assert_eq!(rows[0].int_value(), Some(100));
                    assert_eq!(rows[1].int_value(), Some(205));
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
            ds.commit(xid, true).await.unwrap();
            assert_eq!(ds.engine().peek(key(2)).unwrap().int_value(), Some(205));
        });
    }

    #[test]
    fn decentralized_prepare_pushes_vote_to_middleware() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, ds, dm) = setup(1, 100);
            let (tx, mut rx) = mpsc::unbounded();
            ds.register_middleware(dm, tx);
            let xid = Xid::new(7, 0);
            let req = StatementRequest {
                xid,
                begin: true,
                ops: vec![DsOperation::AddInt {
                    key: key(1),
                    col: 0,
                    delta: -10,
                }],
                is_last: true,
                decentralized_prepare: true,
                early_abort: false,
                peers: vec![1],
                trace_parent: None,
            };
            let started = now();
            let resp = ds.execute(dm, &req).await;
            assert!(resp.outcome.is_ok());

            // The vote arrives asynchronously: 1ms LAN + half of the 100ms WAN.
            let notification = rx.recv().await.unwrap();
            assert_eq!(
                notification,
                AgentNotification::PrepareResult {
                    xid,
                    vote: PrepareVote::Prepared
                }
            );
            let elapsed = now().duration_since(started);
            assert_eq!(elapsed, Duration::from_millis(51));
            assert_eq!(ds.recover_prepared(), vec![xid]);
            assert_eq!(ds.stats().decentralized_prepares, 1);
        });
    }

    #[test]
    fn centralized_branch_votes_idle() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, ds, dm) = setup(0, 10);
            let (tx, mut rx) = mpsc::unbounded();
            ds.register_middleware(dm, tx);
            let xid = Xid::new(9, 0);
            let req = StatementRequest {
                xid,
                begin: true,
                ops: vec![DsOperation::Read { key: key(1) }],
                is_last: true,
                decentralized_prepare: true,
                early_abort: false,
                peers: vec![],
                trace_parent: None,
            };
            ds.execute(dm, &req).await;
            let notification = rx.recv().await.unwrap();
            assert_eq!(
                notification,
                AgentNotification::PrepareResult {
                    xid,
                    vote: PrepareVote::Idle
                }
            );
            // One-phase commit still works from the ENDED state.
            ds.commit(xid, true).await.unwrap();
        });
    }

    #[test]
    fn failed_statement_rolls_back_and_notifies_peers() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let dm = NodeId::middleware(0);
            let ds0_node = NodeId::data_source(0);
            let ds1_node = NodeId::data_source(1);
            let net = NetworkBuilder::new(1)
                .static_link(dm, ds0_node, Duration::from_millis(10))
                .static_link(dm, ds1_node, Duration::from_millis(100))
                .static_link(ds0_node, ds1_node, Duration::from_millis(100))
                .build();
            let mk = |node: NodeId| {
                let mut cfg = DataSourceConfig::new(node);
                cfg.engine = EngineConfig {
                    lock_wait_timeout: Duration::from_millis(50),
                    cost: CostModel::zero(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                cfg.agent_lan_rtt = Duration::ZERO;
                DataSource::new(cfg, Rc::clone(&net))
            };
            let ds0 = mk(ds0_node);
            let ds1 = mk(ds1_node);
            ds0.register_peer(&ds1);
            ds1.register_peer(&ds0);
            let (tx, mut rx) = mpsc::unbounded();
            ds0.register_middleware(dm, tx.clone());
            ds1.register_middleware(dm, tx);
            ds0.load(key(1), Row::int(0));
            ds1.load(key(2), Row::int(0));

            let gtrid = 5;
            // Branch on ds1 executes fine and holds its lock.
            let xid1 = Xid::new(gtrid, 1);
            let ok = ds1
                .execute(
                    dm,
                    &StatementRequest {
                        xid: xid1,
                        begin: true,
                        ops: vec![DsOperation::AddInt {
                            key: key(2),
                            col: 0,
                            delta: 1,
                        }],
                        is_last: false,
                        decentralized_prepare: true,
                        early_abort: true,
                        peers: vec![0],
                        trace_parent: None,
                    },
                )
                .await;
            assert!(ok.outcome.is_ok());

            // An unrelated branch takes the lock ds0's branch will need.
            let blocker = Xid::new(99, 0);
            ds0.engine().begin(blocker).unwrap();
            ds0.engine().add_int(blocker, key(1), 0, 1).await.unwrap();

            // Branch on ds0 times out on the lock and fails.
            let xid0 = Xid::new(gtrid, 0);
            let resp = ds0
                .execute(
                    dm,
                    &StatementRequest {
                        xid: xid0,
                        begin: true,
                        ops: vec![DsOperation::AddInt {
                            key: key(1),
                            col: 0,
                            delta: 1,
                        }],
                        is_last: false,
                        decentralized_prepare: true,
                        early_abort: true,
                        peers: vec![1],
                        trace_parent: None,
                    },
                )
                .await;
            assert!(!resp.outcome.is_ok());

            // Collect notifications: ds0's own rollback plus ds1's peer rollback.
            let first = rx.recv().await.unwrap();
            let second = rx.recv().await.unwrap();
            let mut xids = vec![first.xid(), second.xid()];
            xids.sort();
            assert_eq!(xids, vec![xid0, xid1]);
            assert_eq!(ds1.stats().peer_rollbacks, 1);
            assert_eq!(ds0.stats().early_aborts_sent, 1);
            // ds1's write was undone by the early abort.
            assert_eq!(ds1.engine().peek(key(2)).unwrap().int_value(), Some(0));
        });
    }

    #[test]
    fn peer_rollback_is_idempotent_for_a_gone_branch() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, ds, dm) = setup(0, 10);
            let (tx, mut rx) = mpsc::unbounded();
            ds.register_middleware(dm, tx);
            let xid = Xid::new(21, 0);
            ds.execute(
                dm,
                &StatementRequest {
                    xid,
                    begin: true,
                    ops: vec![DsOperation::AddInt {
                        key: key(1),
                        col: 0,
                        delta: 1,
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: true,
                    peers: vec![1],
                    trace_parent: None,
                },
            )
            .await;
            // Two failing siblings (or a duplicated delivery) both ask this
            // branch to roll back: one rollback, one notification, one count.
            ds.peer_rollback(xid).await;
            ds.peer_rollback(xid).await;
            assert_eq!(ds.stats().peer_rollbacks, 1, "second request is a no-op");
            assert_eq!(
                rx.recv().await.unwrap(),
                AgentNotification::Rollbacked { xid }
            );
            assert!(
                rx.try_recv().is_none(),
                "the duplicate request must not re-send Rollbacked"
            );
            assert_eq!(ds.engine().peek(key(1)).unwrap().int_value(), Some(100));
        });
    }

    #[test]
    fn crashed_source_sends_no_early_aborts() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let dm = NodeId::middleware(0);
            let ds0_node = NodeId::data_source(0);
            let ds1_node = NodeId::data_source(1);
            let net = NetworkBuilder::new(1)
                .static_link(dm, ds0_node, Duration::from_millis(10))
                .static_link(dm, ds1_node, Duration::from_millis(10))
                .static_link(ds0_node, ds1_node, Duration::from_millis(10))
                .build();
            let mk = |node: NodeId| {
                let mut cfg = DataSourceConfig::new(node);
                cfg.engine = EngineConfig {
                    lock_wait_timeout: Duration::from_secs(60),
                    cost: CostModel::zero(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                cfg.agent_lan_rtt = Duration::ZERO;
                DataSource::new(cfg, Rc::clone(&net))
            };
            let ds0 = mk(ds0_node);
            let ds1 = mk(ds1_node);
            ds0.register_peer(&ds1);
            ds1.register_peer(&ds0);
            ds0.load(key(1), Row::int(0));

            // An unrelated holder parks the branch's statement in a lock wait.
            let blocker = Xid::new(99, 0);
            ds0.engine().begin(blocker).unwrap();
            ds0.engine().add_int(blocker, key(1), 0, 1).await.unwrap();

            let xid = Xid::new(5, 0);
            let ds0_exec = Rc::clone(&ds0);
            let blocked = geotp_simrt::spawn(async move {
                ds0_exec
                    .execute(
                        dm,
                        &StatementRequest {
                            xid,
                            begin: true,
                            ops: vec![DsOperation::AddInt {
                                key: key(1),
                                col: 0,
                                delta: 1,
                            }],
                            is_last: false,
                            decentralized_prepare: true,
                            early_abort: true,
                            peers: vec![1],
                            trace_parent: None,
                        },
                    )
                    .await
            });
            geotp_simrt::sleep(Duration::from_millis(5)).await;
            // The node dies mid-statement; the kicked-out lock wait fails the
            // statement on a now-crashed source. Its geo-agent died with it:
            // no early aborts may reach the peer (previously a zombie task
            // still pushed them — doubled under duplicate delivery).
            ds0.crash();
            let resp = blocked.await;
            assert!(!resp.outcome.is_ok());
            geotp_simrt::sleep(Duration::from_millis(50)).await;
            assert_eq!(ds0.stats().early_aborts_sent, 0, "dead agents say nothing");
            assert_eq!(ds1.stats().peer_rollbacks, 0);
        });
    }

    #[test]
    fn coordinator_disconnect_aborts_unprepared_branches() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, ds, dm) = setup(0, 10);
            let xid_active = Xid::new(1, 0);
            ds.execute(
                dm,
                &StatementRequest {
                    xid: xid_active,
                    begin: true,
                    ops: vec![DsOperation::AddInt {
                        key: key(1),
                        col: 0,
                        delta: 1,
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![],
                    trace_parent: None,
                },
            )
            .await;
            let xid_prepared = Xid::new(2, 0);
            ds.execute(
                dm,
                &StatementRequest {
                    xid: xid_prepared,
                    begin: true,
                    ops: vec![DsOperation::AddInt {
                        key: key(2),
                        col: 0,
                        delta: 1,
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![1],
                    trace_parent: None,
                },
            )
            .await;
            assert_eq!(ds.prepare(xid_prepared).await, PrepareVote::Prepared);

            let aborted = ds.coordinator_disconnected().await;
            assert_eq!(aborted, vec![xid_active]);
            assert_eq!(ds.recover_prepared(), vec![xid_prepared]);
            assert_eq!(ds.engine().peek(key(1)).unwrap().int_value(), Some(100));
        });
    }

    #[test]
    fn crash_and_restart_preserves_prepared_branch() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (_net, ds, dm) = setup(0, 10);
            let xid = Xid::new(3, 0);
            ds.execute(
                dm,
                &StatementRequest {
                    xid,
                    begin: true,
                    ops: vec![DsOperation::AddInt {
                        key: key(1),
                        col: 0,
                        delta: 77,
                    }],
                    is_last: false,
                    decentralized_prepare: false,
                    early_abort: false,
                    peers: vec![1],
                    trace_parent: None,
                },
            )
            .await;
            assert_eq!(ds.prepare(xid).await, PrepareVote::Prepared);
            ds.crash();
            assert!(ds.is_crashed());
            let recovered = ds.restart().await;
            assert_eq!(recovered, vec![xid]);
            ds.commit(xid, false).await.unwrap();
            assert_eq!(ds.engine().peek(key(1)).unwrap().int_value(), Some(177));
        });
    }
}
