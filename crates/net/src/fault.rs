//! Link-level fault injection.
//!
//! A [`FaultInjector`] is an optional plane layered over the [`Network`]: for
//! every message the network asks it whether the link is currently blocked
//! (partition), how much extra delay to add (latency storm, reorder jitter)
//! and — for fire-and-forget messages — how many copies to deliver (drop /
//! duplicate). The injector is a trait so the chaos subsystem (`geotp-chaos`)
//! can compile a whole fault schedule into one object without this crate
//! depending on it.
//!
//! Semantics mirror what the paper's testbed would see with `iptables`/`tc`:
//!
//! * **Blocked links model partitions under TCP.** A request/response
//!   transfer does not fail — it stalls until the partition heals (the kernel
//!   keeps retransmitting), which is exactly the hang a coordinator
//!   experiences mid-commit. Healing times are known to the injector because
//!   fault schedules are compiled ahead of time.
//! * **Drops and duplicates only apply to fire-and-forget messages**
//!   ([`Network::transfer_unreliable`]): the asynchronous notifications the
//!   geo-agents push (prepare votes, rollback confirmations). RPC-style round
//!   trips cannot silently lose a message under TCP, but a one-way push can —
//!   the sender never learns.
//!
//! [`Network`]: crate::Network
//! [`Network::transfer_unreliable`]: crate::Network::transfer_unreliable

use std::time::Duration;

use geotp_simrt::SimInstant;

use crate::node::NodeId;

/// Per-link fault state consulted by the [`Network`](crate::Network) on every
/// message. All methods are directional (`from → to`), so asymmetric
/// partitions fall out naturally.
pub trait FaultInjector {
    /// If messages from `from` to `to` are blocked at `now` (network
    /// partition), the instant the link reopens. Must be strictly greater
    /// than `now`; return `None` when the link is open.
    fn blocked_until(&self, from: NodeId, to: NodeId, now: SimInstant) -> Option<SimInstant>;

    /// Extra one-way delay added to a message sent at `now` (latency storms;
    /// per-message jitter reorders messages relative to each other).
    fn extra_delay(&self, _from: NodeId, _to: NodeId, _now: SimInstant) -> Duration {
        Duration::ZERO
    }

    /// Number of copies of a fire-and-forget message delivered: `0` drops it,
    /// `1` is a normal delivery, `2+` duplicates it.
    fn unreliable_copies(&self, _from: NodeId, _to: NodeId, _now: SimInstant) -> u32 {
        1
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::cell::Cell;

    /// A toy injector for network-level tests: one symmetric blocked window
    /// on a single pair, a constant extra delay, and a scripted copy count.
    pub(crate) struct ScriptedFault {
        pub pair: (NodeId, NodeId),
        pub blocked: Option<(SimInstant, SimInstant)>,
        pub extra: Duration,
        pub copies: Cell<u32>,
    }

    impl ScriptedFault {
        fn applies(&self, from: NodeId, to: NodeId) -> bool {
            (from, to) == self.pair || (to, from) == self.pair
        }
    }

    impl FaultInjector for ScriptedFault {
        fn blocked_until(&self, from: NodeId, to: NodeId, now: SimInstant) -> Option<SimInstant> {
            let (start, end) = self.blocked?;
            if self.applies(from, to) && start <= now && now < end {
                Some(end)
            } else {
                None
            }
        }

        fn extra_delay(&self, from: NodeId, to: NodeId, _now: SimInstant) -> Duration {
            if self.applies(from, to) {
                self.extra
            } else {
                Duration::ZERO
            }
        }

        fn unreliable_copies(&self, from: NodeId, to: NodeId, _now: SimInstant) -> u32 {
            if self.applies(from, to) {
                self.copies.get()
            } else {
                1
            }
        }
    }
}
