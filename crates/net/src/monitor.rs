//! Network latency monitor.
//!
//! The paper's implementation (§VI) runs "a dedicated thread that continuously
//! monitors the network latency between the DM and data sources, utilizing the
//! ping command at 10 ms intervals" and smooths the estimates with an
//! exponential weighted moving average (§VII-D, online adaptivity). This
//! module reproduces that component: a background task per monitored data
//! source that pings over the simulated network and publishes an EWMA RTT
//! estimate the geo-scheduler reads.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::{sleep, spawn};

use crate::network::Network;
use crate::node::NodeId;

/// Configuration of the latency monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Interval between pings to each target (paper: 10 ms).
    pub interval: Duration,
    /// EWMA smoothing factor applied to the previous estimate
    /// (`est = alpha * est + (1 - alpha) * sample`).
    pub alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(10),
            alpha: 0.8,
        }
    }
}

/// Published RTT estimates from a middleware node to each data source.
pub struct LatencyMonitor {
    from: NodeId,
    config: MonitorConfig,
    estimates: RefCell<HashMap<NodeId, Duration>>,
    probes: RefCell<u64>,
}

impl LatencyMonitor {
    /// Create a monitor without starting any probing tasks; estimates start
    /// from the network's nominal RTT (the middleware knows its deployment).
    pub fn new(net: &Network, from: NodeId, targets: &[NodeId], config: MonitorConfig) -> Rc<Self> {
        let estimates = targets
            .iter()
            .map(|t| (*t, net.nominal_rtt(from, *t)))
            .collect();
        Rc::new(Self {
            from,
            config,
            estimates: RefCell::new(estimates),
            probes: RefCell::new(0),
        })
    }

    /// Create the monitor and spawn one background probing task per target.
    /// The tasks run for the lifetime of the simulation.
    pub fn start(
        net: Rc<Network>,
        from: NodeId,
        targets: &[NodeId],
        config: MonitorConfig,
    ) -> Rc<Self> {
        let monitor = Self::new(&net, from, targets, config);
        for target in targets {
            let target = *target;
            let net = Rc::clone(&net);
            let monitor_bg = Rc::clone(&monitor);
            spawn(async move {
                loop {
                    sleep(monitor_bg.config.interval).await;
                    let sample = net.ping(monitor_bg.from, target).await;
                    monitor_bg.observe(target, sample);
                }
            });
        }
        monitor
    }

    /// Fold one RTT sample into the EWMA estimate for `target`.
    pub fn observe(&self, target: NodeId, sample: Duration) {
        *self.probes.borrow_mut() += 1;
        let mut estimates = self.estimates.borrow_mut();
        let entry = estimates.entry(target).or_insert(sample);
        let alpha = self.config.alpha;
        let new = alpha * entry.as_secs_f64() + (1.0 - alpha) * sample.as_secs_f64();
        *entry = Duration::from_secs_f64(new);
    }

    /// Current RTT estimate from the middleware to `target`. Unknown targets
    /// report zero (treated as local).
    pub fn rtt(&self, target: NodeId) -> Duration {
        self.estimates
            .borrow()
            .get(&target)
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// The largest current estimate across all monitored targets.
    pub fn max_rtt(&self) -> Duration {
        self.estimates
            .borrow()
            .values()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Number of ping samples folded in so far.
    pub fn probe_count(&self) -> u64 {
        *self.probes.borrow()
    }

    /// The node this monitor measures from.
    pub fn origin(&self) -> NodeId {
        self.from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::StaticLatency;
    use crate::network::NetworkBuilder;
    use geotp_simrt::Runtime;

    fn dm() -> NodeId {
        NodeId::middleware(0)
    }
    fn ds(i: u32) -> NodeId {
        NodeId::data_source(i)
    }

    #[test]
    fn initial_estimates_use_nominal_rtt() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(27))
                .static_link(dm(), ds(1), Duration::from_millis(251))
                .build();
            let mon = LatencyMonitor::new(&net, dm(), &[ds(0), ds(1)], MonitorConfig::default());
            assert_eq!(mon.rtt(ds(0)), Duration::from_millis(27));
            assert_eq!(mon.rtt(ds(1)), Duration::from_millis(251));
            assert_eq!(mon.max_rtt(), Duration::from_millis(251));
        });
    }

    #[test]
    fn background_probing_tracks_a_latency_change() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(20))
                .build();
            let mon = LatencyMonitor::start(
                Rc::clone(&net),
                dm(),
                &[ds(0)],
                MonitorConfig {
                    interval: Duration::from_millis(10),
                    alpha: 0.5,
                },
            );
            sleep(Duration::from_millis(100)).await;
            assert_eq!(mon.rtt(ds(0)), Duration::from_millis(20));

            // The link degrades to 200ms; the EWMA converges towards it.
            net.set_link(dm(), ds(0), StaticLatency::from_millis(200));
            sleep(Duration::from_secs(2)).await;
            let est = mon.rtt(ds(0));
            assert!(
                est > Duration::from_millis(190),
                "estimate {est:?} should have converged near 200ms"
            );
            assert!(mon.probe_count() > 10);
        });
    }

    #[test]
    fn ewma_smooths_single_outlier() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(50))
                .build();
            let mon = LatencyMonitor::new(
                &net,
                dm(),
                &[ds(0)],
                MonitorConfig {
                    interval: Duration::from_millis(10),
                    alpha: 0.9,
                },
            );
            mon.observe(ds(0), Duration::from_millis(500));
            let est = mon.rtt(ds(0));
            // 0.9*50 + 0.1*500 = 95ms: pulled up, but nowhere near the spike.
            assert_eq!(est, Duration::from_millis(95));
        });
    }

    #[test]
    fn unknown_target_reports_zero() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1).build();
            let mon = LatencyMonitor::new(&net, dm(), &[], MonitorConfig::default());
            assert_eq!(mon.rtt(ds(9)), Duration::ZERO);
            assert_eq!(mon.origin(), dm());
        });
    }
}
