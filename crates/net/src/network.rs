//! The latency matrix connecting simulated nodes.

use geotp_simrt::hash::FxHashMap;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::{now, sleep, sleep_until};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::FaultInjector;
use crate::latency::{LatencyModel, StaticLatency};
use crate::node::NodeId;

/// Per-link traffic counters, useful for the resource-utilisation experiment
/// (Fig. 6) and for debugging protocol message counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Number of one-way message transfers performed on this link.
    pub messages: u64,
    /// Sum of the sampled one-way latencies, in microseconds.
    pub total_latency_micros: u64,
}

/// Estimated wire size charged per simulated message (the simulation carries
/// no real payloads; this keeps the `net.bytes` metric proportional to
/// message counts at a realistic RPC-frame scale).
const ESTIMATED_FRAME_BYTES: u64 = 64;

struct Link {
    model: Box<dyn LatencyModel>,
    stats: LinkStats,
}

/// Builder for a [`Network`].
#[derive(Default)]
pub struct NetworkBuilder {
    seed: u64,
    lan_rtt: Option<Duration>,
    links: Vec<(NodeId, NodeId, Box<dyn LatencyModel>)>,
}

impl NetworkBuilder {
    /// Start building a network; `seed` drives all latency sampling noise.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            lan_rtt: None,
            links: Vec::new(),
        }
    }

    /// Round-trip time used for node pairs without an explicit link
    /// (e.g. a geo-agent talking to its co-located data source).
    /// Defaults to 0.5 ms.
    pub fn default_lan_rtt(mut self, rtt: Duration) -> Self {
        self.lan_rtt = Some(rtt);
        self
    }

    /// Declare a (symmetric) link between `a` and `b` with the given model.
    pub fn link(mut self, a: NodeId, b: NodeId, model: impl LatencyModel + 'static) -> Self {
        self.links.push((a, b, Box::new(model)));
        self
    }

    /// Declare a static-latency link, the common case.
    pub fn static_link(self, a: NodeId, b: NodeId, rtt: Duration) -> Self {
        self.link(a, b, StaticLatency::new(rtt))
    }

    /// Finish building.
    pub fn build(self) -> Rc<Network> {
        let net = Network {
            lan_rtt: self.lan_rtt.unwrap_or(Duration::from_micros(500)),
            links: RefCell::new(FxHashMap::default()),
            rng: RefCell::new(StdRng::seed_from_u64(self.seed)),
            fault: RefCell::new(None),
        };
        for (a, b, model) in self.links {
            net.links.borrow_mut().insert(
                Network::key(a, b),
                Link {
                    model,
                    stats: LinkStats::default(),
                },
            );
        }
        Rc::new(net)
    }
}

/// The simulated network: a symmetric latency matrix between [`NodeId`]s.
///
/// All transfer operations sleep the sampled one-way latency in virtual time
/// and record traffic statistics. Links can be reconfigured at runtime, which
/// the dynamic-latency experiments use.
pub struct Network {
    lan_rtt: Duration,
    links: RefCell<FxHashMap<(NodeId, NodeId), Link>>,
    rng: RefCell<StdRng>,
    /// Optional fault-injection plane (chaos runs). `None` in normal runs —
    /// the hot path pays one borrow + `is_none` check per message.
    fault: RefCell<Option<Rc<dyn FaultInjector>>>,
}

impl Network {
    /// Convenience: a network where every pair of nodes has the given static
    /// RTT (plus the default LAN RTT for undeclared pairs).
    pub fn uniform(seed: u64, nodes: &[NodeId], rtt: Duration) -> Rc<Network> {
        let mut b = NetworkBuilder::new(seed);
        for (i, a) in nodes.iter().enumerate() {
            for bnode in nodes.iter().skip(i + 1) {
                b = b.static_link(*a, *bnode, rtt);
            }
        }
        b.build()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Replace (or insert) the latency model of the link between `a` and `b`.
    pub fn set_link(&self, a: NodeId, b: NodeId, model: impl LatencyModel + 'static) {
        let mut links = self.links.borrow_mut();
        let entry = links.entry(Self::key(a, b)).or_insert_with(|| Link {
            model: Box::new(StaticLatency::new(self.lan_rtt)),
            stats: LinkStats::default(),
        });
        entry.model = Box::new(model);
    }

    /// Current nominal RTT between two nodes (no sampling noise). Pairs with
    /// no declared link report the default LAN RTT.
    pub fn nominal_rtt(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let links = self.links.borrow();
        links
            .get(&Self::key(a, b))
            .map(|l| l.model.nominal_rtt(now()))
            .unwrap_or(self.lan_rtt)
    }

    /// Sample a one-way latency for a message sent right now from `a` to `b`.
    fn sample_one_way(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        // Simulated messages carry no real payloads, so bytes are an
        // estimated wire size: one fixed-size frame per message. Both
        // counters bump inside one collector access — this is the hottest
        // instrumentation point in the tier.
        geotp_telemetry::with(|t| {
            t.metrics
                .counter_add("net.messages", a.kind_label(), a.index(), 1);
            t.metrics.counter_add(
                "net.bytes",
                a.kind_label(),
                a.index(),
                ESTIMATED_FRAME_BYTES,
            );
        });
        let mut links = self.links.borrow_mut();
        let mut rng = self.rng.borrow_mut();
        match links.get_mut(&Self::key(a, b)) {
            Some(link) => {
                let one_way = link.model.sample_rtt(now(), &mut rng) / 2;
                link.stats.messages += 1;
                link.stats.total_latency_micros += one_way.as_micros() as u64;
                one_way
            }
            None => self.lan_rtt / 2,
        }
    }

    /// Attach a fault-injection plane. Every subsequent message consults it
    /// for partitions, latency storms and (unreliable-path) drop/duplicate
    /// fates. Used by the chaos subsystem; pass-through when never set.
    pub fn set_fault_injector(&self, injector: Rc<dyn FaultInjector>) {
        *self.fault.borrow_mut() = Some(injector);
    }

    /// Detach the fault-injection plane.
    pub fn clear_fault_injector(&self) {
        *self.fault.borrow_mut() = None;
    }

    /// Park until the directional link `from → to` is open. A blocked link
    /// models a partition under TCP: the transfer stalls (retransmits) and
    /// proceeds when the partition heals.
    async fn wait_link_open(&self, from: NodeId, to: NodeId) {
        loop {
            let reopen = {
                let fault = self.fault.borrow();
                fault
                    .as_ref()
                    .and_then(|f| f.blocked_until(from, to, now()))
            };
            match reopen {
                // Guard against a buggy injector reporting "reopens now":
                // always move time forward so this loop cannot spin.
                Some(t) => sleep_until(t.max(now() + Duration::from_micros(1))).await,
                None => return,
            }
        }
    }

    /// Extra one-way delay the fault plane charges right now (zero without an
    /// injector).
    fn fault_extra_delay(&self, from: NodeId, to: NodeId) -> Duration {
        let fault = self.fault.borrow();
        fault
            .as_ref()
            .map(|f| f.extra_delay(from, to, now()))
            .unwrap_or(Duration::ZERO)
    }

    /// Simulate the transfer of one message from `from` to `to`: sleeps the
    /// sampled one-way latency (plus any fault-plane stall and extra delay).
    pub async fn transfer(&self, from: NodeId, to: NodeId) {
        self.wait_link_open(from, to).await;
        let one_way = self.sample_one_way(from, to) + self.fault_extra_delay(from, to);
        if !one_way.is_zero() {
            sleep(one_way).await;
        }
    }

    /// Transfer a *fire-and-forget* message, which — unlike the RPC-style
    /// [`Network::transfer`] — can be silently lost or duplicated by the
    /// fault plane. Returns the number of copies the receiver gets: `0`
    /// (dropped; returns immediately, the sender never learns), `1`, or more.
    /// Callers deliver the payload once per copy.
    pub async fn transfer_unreliable(&self, from: NodeId, to: NodeId) -> u32 {
        let copies = {
            let fault = self.fault.borrow();
            fault
                .as_ref()
                .map(|f| f.unreliable_copies(from, to, now()))
                .unwrap_or(1)
        };
        if copies == 0 {
            geotp_telemetry::counter_add("net.drops", from.kind_label(), from.index(), 1);
            return 0;
        }
        self.transfer(from, to).await;
        copies
    }

    /// Simulate a full round trip (request + response) between two nodes and
    /// return the measured RTT. This is what the latency monitor's `ping`
    /// uses.
    pub async fn ping(&self, from: NodeId, to: NodeId) -> Duration {
        let start = now();
        self.transfer(from, to).await;
        self.transfer(to, from).await;
        now().duration_since(start)
    }

    /// Traffic counters for the link between `a` and `b`.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> LinkStats {
        self.links
            .borrow()
            .get(&Self::key(a, b))
            .map(|l| l.stats)
            .unwrap_or_default()
    }

    /// Total number of one-way messages sent over declared links.
    pub fn total_messages(&self) -> u64 {
        self.links.borrow().values().map(|l| l.stats.messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::DynamicLatency;
    use geotp_simrt::Runtime;

    fn dm() -> NodeId {
        NodeId::middleware(0)
    }
    fn ds(i: u32) -> NodeId {
        NodeId::data_source(i)
    }

    #[test]
    fn transfer_takes_half_rtt() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(100))
                .build();
            let start = now();
            net.transfer(dm(), ds(0)).await;
            assert_eq!(now().duration_since(start), Duration::from_millis(50));
        });
    }

    #[test]
    fn ping_measures_full_rtt() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(73))
                .build();
            assert_eq!(net.ping(dm(), ds(0)).await, Duration::from_millis(73));
        });
    }

    #[test]
    fn same_node_transfer_is_free() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1).build();
            let start = now();
            net.transfer(dm(), dm()).await;
            assert_eq!(now(), start);
            assert_eq!(net.nominal_rtt(dm(), dm()), Duration::ZERO);
        });
    }

    #[test]
    fn undeclared_links_use_lan_rtt() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .default_lan_rtt(Duration::from_millis(2))
                .build();
            assert_eq!(net.nominal_rtt(dm(), ds(3)), Duration::from_millis(2));
            assert_eq!(net.ping(dm(), ds(3)).await, Duration::from_millis(2));
        });
    }

    #[test]
    fn link_is_symmetric() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(1), Duration::from_millis(27))
                .build();
            assert_eq!(net.nominal_rtt(ds(1), dm()), Duration::from_millis(27));
        });
    }

    #[test]
    fn set_link_reconfigures_latency() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(10))
                .build();
            net.set_link(dm(), ds(0), StaticLatency::from_millis(200));
            assert_eq!(net.nominal_rtt(dm(), ds(0)), Duration::from_millis(200));
        });
    }

    #[test]
    fn dynamic_link_changes_over_time() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .link(
                    dm(),
                    ds(0),
                    DynamicLatency::evenly_spaced(
                        Duration::from_secs(40),
                        vec![Duration::from_millis(20), Duration::from_millis(80)],
                    ),
                )
                .build();
            assert_eq!(net.nominal_rtt(dm(), ds(0)), Duration::from_millis(20));
            geotp_simrt::sleep(Duration::from_secs(41)).await;
            assert_eq!(net.nominal_rtt(dm(), ds(0)), Duration::from_millis(80));
        });
    }

    #[test]
    fn stats_count_messages() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(10))
                .build();
            net.ping(dm(), ds(0)).await;
            net.ping(dm(), ds(0)).await;
            let stats = net.link_stats(dm(), ds(0));
            assert_eq!(stats.messages, 4);
            assert_eq!(stats.total_latency_micros, 4 * 5_000);
            assert_eq!(net.total_messages(), 4);
        });
    }

    #[test]
    fn blocked_link_stalls_transfer_until_heal() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(10))
                .build();
            net.set_fault_injector(Rc::new(crate::fault::test_support::ScriptedFault {
                pair: (dm(), ds(0)),
                blocked: Some((
                    geotp_simrt::SimInstant::ZERO,
                    geotp_simrt::SimInstant::from_micros(100_000),
                )),
                extra: Duration::ZERO,
                copies: std::cell::Cell::new(1),
            }));
            let start = now();
            net.transfer(dm(), ds(0)).await;
            // Stalled until the 100ms heal, then paid the normal 5ms one-way.
            assert_eq!(now().duration_since(start), Duration::from_millis(105));
            // After the window the link behaves normally again.
            net.transfer(dm(), ds(0)).await;
            assert_eq!(now().duration_since(start), Duration::from_millis(110));
        });
    }

    #[test]
    fn fault_plane_extra_delay_and_drop_duplicate() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1)
                .static_link(dm(), ds(0), Duration::from_millis(10))
                .build();
            let fault = Rc::new(crate::fault::test_support::ScriptedFault {
                pair: (dm(), ds(0)),
                blocked: None,
                extra: Duration::from_millis(7),
                copies: std::cell::Cell::new(2),
            });
            net.set_fault_injector(Rc::clone(&fault) as Rc<dyn crate::fault::FaultInjector>);
            let start = now();
            net.transfer(dm(), ds(0)).await;
            assert_eq!(now().duration_since(start), Duration::from_millis(12));

            // Unreliable path: duplicate fate.
            assert_eq!(net.transfer_unreliable(dm(), ds(0)).await, 2);
            // Drop fate: returns immediately without sleeping.
            fault.copies.set(0);
            let before = now();
            assert_eq!(net.transfer_unreliable(dm(), ds(0)).await, 0);
            assert_eq!(now(), before);

            // Detaching restores normal behaviour.
            net.clear_fault_injector();
            assert_eq!(net.transfer_unreliable(dm(), ds(0)).await, 1);
            let t0 = now();
            net.transfer(dm(), ds(0)).await;
            assert_eq!(now().duration_since(t0), Duration::from_millis(5));
        });
    }

    #[test]
    fn uniform_network_links_every_pair() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let nodes = [dm(), ds(0), ds(1)];
            let net = Network::uniform(7, &nodes, Duration::from_millis(30));
            assert_eq!(net.nominal_rtt(dm(), ds(1)), Duration::from_millis(30));
            assert_eq!(net.nominal_rtt(ds(0), ds(1)), Duration::from_millis(30));
        });
    }
}
