//! Per-link latency models.
//!
//! A [`LatencyModel`] answers two questions about a link at a given virtual
//! time: the *nominal* round-trip time (what `tc` was configured to, used by
//! experiment harnesses as ground truth) and a *sampled* round-trip time
//! (what a packet actually experiences, possibly with jitter or spikes).

use std::time::Duration;

use geotp_simrt::SimInstant;
use rand::rngs::StdRng;
use rand::Rng;

/// A model of one bidirectional link's round-trip latency.
pub trait LatencyModel {
    /// The nominal (configured) RTT at virtual time `now`, without noise.
    fn nominal_rtt(&self, now: SimInstant) -> Duration;

    /// A sampled RTT for one message exchange happening at `now`.
    fn sample_rtt(&self, now: SimInstant, _rng: &mut StdRng) -> Duration {
        self.nominal_rtt(now)
    }
}

/// Fixed round-trip latency (the paper's default `tc` configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticLatency {
    rtt: Duration,
}

impl StaticLatency {
    /// A link with a constant round-trip time.
    pub fn new(rtt: Duration) -> Self {
        Self { rtt }
    }

    /// Convenience constructor from milliseconds.
    pub fn from_millis(rtt_ms: u64) -> Self {
        Self::new(Duration::from_millis(rtt_ms))
    }
}

impl LatencyModel for StaticLatency {
    fn nominal_rtt(&self, _now: SimInstant) -> Duration {
        self.rtt
    }
}

/// Gaussian jitter around a mean RTT, truncated at a floor.
///
/// Used by the "random latency" experiment (Fig. 11a) and to add realism to
/// any link. The sample is drawn with the Box–Muller transform so we stay
/// within the plain `rand` crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitteredLatency {
    mean_rtt: Duration,
    std_dev: Duration,
    floor: Duration,
}

impl JitteredLatency {
    /// Jittered link with the given mean and standard deviation; samples are
    /// clamped to be at least 10% of the mean (and never negative).
    pub fn new(mean_rtt: Duration, std_dev: Duration) -> Self {
        Self {
            mean_rtt,
            std_dev,
            floor: mean_rtt / 10,
        }
    }

    /// Override the lower clamp applied to samples.
    pub fn with_floor(mut self, floor: Duration) -> Self {
        self.floor = floor;
        self
    }
}

/// Draw a standard-normal sample using the Box–Muller transform.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by sampling in the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl LatencyModel for JitteredLatency {
    fn nominal_rtt(&self, _now: SimInstant) -> Duration {
        self.mean_rtt
    }

    fn sample_rtt(&self, _now: SimInstant, rng: &mut StdRng) -> Duration {
        let noise = standard_normal(rng) * self.std_dev.as_secs_f64();
        let sampled = self.mean_rtt.as_secs_f64() + noise;
        let clamped = sampled.max(self.floor.as_secs_f64()).max(0.0);
        Duration::from_secs_f64(clamped)
    }
}

/// Piecewise-constant RTT schedule: the latency changes at fixed virtual
/// instants, as in the online-adaptivity experiment (Fig. 11b) where the
/// latency is re-drawn every 40 seconds over a 320-second run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicLatency {
    /// `(from_instant, rtt)` pairs sorted by instant; the first entry should
    /// start at time zero.
    schedule: Vec<(SimInstant, Duration)>,
}

impl DynamicLatency {
    /// Build from a schedule of `(start_instant, rtt)` segments. The segments
    /// are sorted internally; the latency before the first segment is the
    /// first segment's value.
    pub fn new(mut schedule: Vec<(SimInstant, Duration)>) -> Self {
        assert!(
            !schedule.is_empty(),
            "DynamicLatency needs at least one segment"
        );
        schedule.sort_by_key(|(t, _)| *t);
        Self { schedule }
    }

    /// Evenly spaced schedule: `rtts[i]` applies during the i-th window of
    /// length `window`.
    pub fn evenly_spaced(window: Duration, rtts: Vec<Duration>) -> Self {
        let schedule = rtts
            .into_iter()
            .enumerate()
            .map(|(i, rtt)| (SimInstant::ZERO + window * (i as u32), rtt))
            .collect();
        Self::new(schedule)
    }

    fn current(&self, now: SimInstant) -> Duration {
        let mut rtt = self.schedule[0].1;
        for (start, value) in &self.schedule {
            if *start <= now {
                rtt = *value;
            } else {
                break;
            }
        }
        rtt
    }
}

impl LatencyModel for DynamicLatency {
    fn nominal_rtt(&self, now: SimInstant) -> Duration {
        self.current(now)
    }
}

/// A base latency that is multiplied by a random factor drawn per sample,
/// used for the Fig. 11a "random network latency" runs where some nodes see
/// their latency fluctuate by up to 1.5x.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomLatency {
    base_rtt: Duration,
    min_factor: f64,
    max_factor: f64,
}

impl RandomLatency {
    /// RTT uniformly distributed in `[base*min_factor, base*max_factor]`.
    pub fn new(base_rtt: Duration, min_factor: f64, max_factor: f64) -> Self {
        assert!(min_factor > 0.0 && max_factor >= min_factor);
        Self {
            base_rtt,
            min_factor,
            max_factor,
        }
    }
}

impl LatencyModel for RandomLatency {
    fn nominal_rtt(&self, _now: SimInstant) -> Duration {
        self.base_rtt
    }

    fn sample_rtt(&self, _now: SimInstant, rng: &mut StdRng) -> Duration {
        let factor = rng.gen_range(self.min_factor..=self.max_factor);
        Duration::from_secs_f64(self.base_rtt.as_secs_f64() * factor)
    }
}

/// Occasional latency spikes on top of a base RTT: with probability
/// `spike_probability` a sample is multiplied by `spike_factor`. Models the
/// "a few machines experience occasional latency spikes" scenario of Fig. 10b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikingLatency {
    base_rtt: Duration,
    spike_factor: f64,
    spike_probability: f64,
}

impl SpikingLatency {
    /// Create a spiking link model.
    pub fn new(base_rtt: Duration, spike_factor: f64, spike_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&spike_probability));
        assert!(spike_factor >= 1.0);
        Self {
            base_rtt,
            spike_factor,
            spike_probability,
        }
    }
}

impl LatencyModel for SpikingLatency {
    fn nominal_rtt(&self, _now: SimInstant) -> Duration {
        self.base_rtt
    }

    fn sample_rtt(&self, _now: SimInstant, rng: &mut StdRng) -> Duration {
        if rng.gen::<f64>() < self.spike_probability {
            Duration::from_secs_f64(self.base_rtt.as_secs_f64() * self.spike_factor)
        } else {
            self.base_rtt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn static_latency_is_constant() {
        let m = StaticLatency::from_millis(73);
        assert_eq!(m.nominal_rtt(SimInstant::ZERO), Duration::from_millis(73));
        assert_eq!(
            m.sample_rtt(SimInstant::from_micros(1_000_000), &mut rng()),
            Duration::from_millis(73)
        );
    }

    #[test]
    fn jittered_latency_stays_near_mean() {
        let m = JitteredLatency::new(Duration::from_millis(100), Duration::from_millis(10));
        let mut r = rng();
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            let s = m.sample_rtt(SimInstant::ZERO, &mut r);
            assert!(s >= Duration::from_millis(10), "clamped at the floor");
            sum += s.as_secs_f64();
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 0.1).abs() < 0.005,
            "empirical mean {mean} too far from 100ms"
        );
    }

    #[test]
    fn dynamic_latency_follows_schedule() {
        let m = DynamicLatency::evenly_spaced(
            Duration::from_secs(40),
            vec![
                Duration::from_millis(30),
                Duration::from_millis(90),
                Duration::from_millis(60),
            ],
        );
        let at = |secs: u64| m.nominal_rtt(SimInstant::ZERO + Duration::from_secs(secs));
        assert_eq!(at(0), Duration::from_millis(30));
        assert_eq!(at(39), Duration::from_millis(30));
        assert_eq!(at(40), Duration::from_millis(90));
        assert_eq!(at(100), Duration::from_millis(60));
    }

    #[test]
    fn random_latency_within_bounds() {
        let m = RandomLatency::new(Duration::from_millis(100), 1.0, 1.5);
        let mut r = rng();
        for _ in 0..500 {
            let s = m.sample_rtt(SimInstant::ZERO, &mut r);
            assert!(s >= Duration::from_millis(100));
            assert!(s <= Duration::from_millis(150));
        }
    }

    #[test]
    fn spiking_latency_spikes_at_expected_rate() {
        let m = SpikingLatency::new(Duration::from_millis(50), 4.0, 0.2);
        let mut r = rng();
        let spikes = (0..5000)
            .filter(|_| m.sample_rtt(SimInstant::ZERO, &mut r) > Duration::from_millis(50))
            .count();
        let rate = spikes as f64 / 5000.0;
        assert!(
            (rate - 0.2).abs() < 0.03,
            "spike rate {rate} too far from 0.2"
        );
    }

    #[test]
    fn standard_normal_mean_and_variance() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
