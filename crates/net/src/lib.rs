//! # geotp-net — simulated wide-area network
//!
//! The paper evaluates GeoTP on a 6-machine cluster whose WAN latencies are
//! emulated with `tc` (0 / 27 / 73 / 251 ms RTT between the middleware and the
//! data nodes in Beijing, Shanghai, Singapore and London). This crate is the
//! equivalent substrate for the simulation: a latency matrix between
//! [`NodeId`]s with pluggable per-link [`LatencyModel`]s (static, jittered,
//! dynamic schedules, random spikes) plus the `ping`-based RTT monitor the
//! middleware uses for latency-aware scheduling.
//!
//! All delays are virtual-time sleeps on [`geotp_simrt`], so experiments are
//! deterministic for a given seed.

mod fault;
mod latency;
mod monitor;
mod network;
mod node;

pub use fault::FaultInjector;
pub use latency::{
    DynamicLatency, JitteredLatency, LatencyModel, RandomLatency, SpikingLatency, StaticLatency,
};
pub use monitor::{LatencyMonitor, MonitorConfig};
pub use network::{LinkStats, Network, NetworkBuilder};
pub use node::{NodeId, NodeKind};

/// The paper's default geo-distributed deployment (§VII-A3): the client, the
/// middleware and one data node are in Beijing (RTT 0 ms), the other data
/// nodes are in Shanghai (27 ms), Singapore (73 ms) and London (251 ms).
pub const PAPER_DEFAULT_RTTS_MS: [u64; 4] = [0, 27, 73, 251];

/// RTT vector of the second middleware in the multi-region deployment of
/// Fig. 15 (co-located with the London data node).
pub const PAPER_DM2_RTTS_MS: [u64; 4] = [251, 226, 175, 0];
