//! Node identities in the simulated deployment.

use std::fmt;

/// Role of a node, used only for diagnostics and pretty-printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// A client machine generating transactions.
    Client,
    /// A database middleware instance (the coordinator).
    Middleware,
    /// A data source (MySQL/PostgreSQL-like node with its geo-agent).
    DataSource,
    /// A control-plane service (the cluster membership/lease table). Heartbeat
    /// and fencing traffic between coordinators and the membership service
    /// rides ordinary network links, so partitions and latency storms apply.
    Control,
}

/// Identifier of a node (client, middleware or data source) in the simulated
/// cluster. Cheap to copy and hash; ordering is by kind then index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    kind: NodeKind,
    index: u32,
}

impl NodeId {
    /// Identity of the `index`-th client node.
    pub const fn client(index: u32) -> Self {
        Self {
            kind: NodeKind::Client,
            index,
        }
    }

    /// Identity of the `index`-th middleware node.
    pub const fn middleware(index: u32) -> Self {
        Self {
            kind: NodeKind::Middleware,
            index,
        }
    }

    /// Identity of the `index`-th data source node.
    pub const fn data_source(index: u32) -> Self {
        Self {
            kind: NodeKind::DataSource,
            index,
        }
    }

    /// Identity of the `index`-th control-plane node (membership service).
    pub const fn control(index: u32) -> Self {
        Self {
            kind: NodeKind::Control,
            index,
        }
    }

    /// The node's role.
    pub const fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The node's index within its role.
    pub const fn index(&self) -> u32 {
        self.index
    }

    /// Short static label for the node's role, used as a metric label.
    pub const fn kind_label(&self) -> &'static str {
        match self.kind {
            NodeKind::Client => "client",
            NodeKind::Middleware => "dm",
            NodeKind::DataSource => "ds",
            NodeKind::Control => "ctl",
        }
    }
}

/// A [`NodeId`] and the telemetry crate's [`geotp_telemetry::TraceNode`]
/// describe the same node; telemetry sits below this crate in the dependency
/// graph, so the conversion lives here.
impl From<NodeId> for geotp_telemetry::TraceNode {
    fn from(id: NodeId) -> Self {
        match id.kind {
            NodeKind::Client => geotp_telemetry::TraceNode::client(id.index),
            NodeKind::Middleware => geotp_telemetry::TraceNode::middleware(id.index),
            NodeKind::DataSource => geotp_telemetry::TraceNode::data_source(id.index),
            NodeKind::Control => geotp_telemetry::TraceNode::control(id.index),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            NodeKind::Client => write!(f, "client{}", self.index),
            NodeKind::Middleware => write!(f, "dm{}", self.index),
            NodeKind::DataSource => write!(f, "ds{}", self.index),
            NodeKind::Control => write!(f, "ctl{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(NodeId::client(0).to_string(), "client0");
        assert_eq!(NodeId::middleware(1).to_string(), "dm1");
        assert_eq!(NodeId::data_source(3).to_string(), "ds3");
        assert_eq!(NodeId::control(0).to_string(), "ctl0");
    }

    #[test]
    fn distinct_kinds_never_collide() {
        assert_ne!(NodeId::client(0), NodeId::middleware(0));
        assert_ne!(NodeId::middleware(0), NodeId::data_source(0));
        assert_eq!(NodeId::data_source(2), NodeId::data_source(2));
    }

    #[test]
    fn accessors() {
        let n = NodeId::data_source(7);
        assert_eq!(n.kind(), NodeKind::DataSource);
        assert_eq!(n.index(), 7);
    }
}
