//! Bench target regenerating the paper's fig14 txn length experiment.
//! Run with `cargo bench --bench fig14_txn_length` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig14_txn_length",
        geotp_experiments::figs_ablation::fig14_txn_length,
    );
}
