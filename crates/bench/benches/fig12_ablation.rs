//! Bench target regenerating the paper's fig12 ablation experiment.
//! Run with `cargo bench --bench fig12_ablation` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig12_ablation",
        geotp_experiments::figs_ablation::fig12_ablation,
    );
}
