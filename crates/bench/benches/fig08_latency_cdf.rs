//! Bench target regenerating the paper's fig08 latency cdf experiment.
//! Run with `cargo bench --bench fig08_latency_cdf` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig08_latency_cdf",
        geotp_experiments::figs_distributed::fig08_latency_cdf,
    );
}
