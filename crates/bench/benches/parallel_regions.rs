//! Multi-region parallel-simulation bench behind `BENCH_parallel.json`.
//!
//! This is the workload the sharded runtime exists for: R independent
//! GeoTP regions (each a full paper-style deployment — 4 data sources at
//! 0/27/73/251 ms RTT, its own YCSB driver) declared as topology nodes on
//! an 80 ms-RTT WAN ring, exchanging gossip heartbeats through typed
//! mailboxes. With `workers > 1` the regions execute on separate shards in
//! real parallel threads, synchronised only by the conservative window
//! barrier (windows are bounded by the 40 ms one-way link latency, so
//! thousands of polls happen between barriers).
//!
//! The bench runs the identical workload at several worker counts and
//! **fails the build** (non-zero exit) unless:
//!
//! 1. the run fingerprint — region commit counts, completion times and
//!    gossip arrival schedules folded FNV-1a — is bit-identical at every
//!    worker count (scheduler independence, always enforced);
//! 2. the parallel efficiency holds: on a host with ≥ 4 CPUs the measured
//!    wall-clock speedup at 4 workers must reach `GEOTP_PAR_MIN_SPEEDUP`
//!    (default 2.5×); on smaller hosts — where parallel wall-clock speedup
//!    is physically unmeasurable — the hardware-independent proxies are
//!    gated instead: per-shard load balance (`sum(polls)/max(polls)`, the
//!    Amdahl bound on achievable speedup) must reach
//!    `GEOTP_PAR_MIN_PROJECTED` (default 2.5×) and the sharding overhead
//!    (4-worker wall / single-worker wall on one core) must stay under
//!    `GEOTP_PAR_MAX_OVERHEAD` (default 2.5×).
//!
//! Environment knobs:
//!
//! * `GEOTP_PAR_REGIONS`   regions on the WAN ring       (default 8)
//! * `GEOTP_PAR_ROWS`      records per data source       (default 10_000)
//! * `GEOTP_PAR_TERMINALS` closed-loop terminals/region  (default 64)
//! * `GEOTP_PAR_SECS`      virtual measure window, s     (default 20)
//! * `GEOTP_PAR_SEED`      root seed                     (default 42)
//! * `GEOTP_PAR_WORKERS`   comma list of worker counts   (default 1,2,4,8)
//!
//! ```text
//! cargo bench -p geotp-bench --bench parallel_regions
//! ```

use std::rc::Rc;
use std::time::{Duration, Instant};

use geotp::prelude::*;
use geotp_simrt::{handle, RuntimeBuilder};

/// WAN ring round-trip between neighbouring regions; the 40 ms one-way
/// latency is the conservative lookahead every cross-shard message must
/// respect, and the lower bound on the barrier window size.
const WAN_RTT_MS: u64 = 80;
const ONE_WAY_US: u64 = WAN_RTT_MS * 1000 / 2;
/// Gossip heartbeats each region sends its ring successor. 40 rounds at
/// ~0.5 s covers the warmup + measure window of the default config.
const GOSSIP_ROUNDS: u32 = 40;
const GOSSIP_PERIOD_US: u64 = 497_133;

struct Gossip {
    from: u32,
    round: u32,
}

struct Done {
    region: u32,
    committed: u64,
    aborted: u64,
    finished_at: u64,
    gossip_hash: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fnv_fold(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash = (*hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

#[derive(Clone, Copy)]
struct Config {
    regions: usize,
    rows: u64,
    terminals: usize,
    measure_secs: u64,
    seed: u64,
}

struct RunResult {
    wall_secs: f64,
    fingerprint: u64,
    committed: u64,
    aborted: u64,
    polls: u64,
    shard_polls: Vec<u64>,
}

/// One region's life: build a private GeoTP deployment, gossip with the
/// ring successor, run the YCSB driver, drain the predecessor's heartbeats
/// and report home. Everything here runs on the region's own shard thread.
async fn region_main(
    r: u32,
    cfg: Config,
    mb: geotp_simrt::Mailbox<Gossip>,
    next: geotp_simrt::BoundSender<Gossip>,
    home: geotp_simrt::BoundSender<Done>,
) {
    let gossip = geotp_simrt::spawn(async move {
        for round in 0..GOSSIP_ROUNDS {
            geotp_simrt::sleep(Duration::from_micros(GOSSIP_PERIOD_US)).await;
            next.send(ONE_WAY_US, Gossip { from: r, round });
        }
    });

    let cluster = ClusterBuilder::new()
        .paper_default_sources()
        .records_per_node(cfg.rows)
        .protocol(Protocol::geotp())
        .build();
    let ycsb = YcsbConfig::new(4, cfg.rows)
        .with_contention(Contention::Medium)
        .with_distributed_ratio(0.2);
    let generator = Rc::new(YcsbGenerator::new(ycsb));
    generator.load(cluster.data_sources());

    let region_seed = cfg
        .seed
        .wrapping_add((u64::from(r) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let report = run_benchmark(
        Rc::clone(cluster.middleware()),
        WorkloadMix::Ycsb(generator),
        DriverConfig {
            terminals: cfg.terminals,
            warmup: Duration::from_secs(2),
            measure: Duration::from_secs(cfg.measure_secs),
            seed: region_seed,
        },
    )
    .await;

    // Drain the predecessor's full heartbeat schedule; arrival times and
    // order are part of the fingerprint, so a shard delivering a message
    // early or late at ANY worker count shows up as a mismatch.
    let mut gossip_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..GOSSIP_ROUNDS {
        let d = mb.recv().await;
        fnv_fold(&mut gossip_hash, d.at_micros);
        fnv_fold(&mut gossip_hash, u64::from(d.src_node));
        fnv_fold(&mut gossip_hash, u64::from(d.payload.from));
        fnv_fold(&mut gossip_hash, u64::from(d.payload.round));
    }
    gossip.await;

    home.send(
        ONE_WAY_US,
        Done {
            region: r,
            committed: report.metrics.committed(),
            aborted: report.metrics.aborted(),
            finished_at: handle().now_micros(),
            gossip_hash,
        },
    );
}

fn run_once(workers: usize, cfg: Config) -> RunResult {
    let mut builder = RuntimeBuilder::new()
        .workers(workers)
        .seed(cfg.seed)
        .assign("coord", 0);
    // WAN ring plus a report link home; every edge is 80 ms RTT so the
    // declared lookahead between any shard pair is the 40 ms one-way.
    for r in 0..cfg.regions {
        let name = format!("region{r}");
        let succ = format!("region{}", (r + 1) % cfg.regions);
        builder = builder
            .link(&name, &succ, Duration::from_millis(WAN_RTT_MS))
            .link(&name, "coord", Duration::from_millis(WAN_RTT_MS));
    }
    let mut senders = Vec::new();
    let mut tokens = Vec::new();
    for r in 0..cfg.regions {
        let (tx, tok) = builder.mailbox::<Gossip>(&format!("region{r}"));
        senders.push(tx);
        tokens.push(Some(tok));
    }
    let (home_tx, home_tok) = builder.mailbox::<Done>("coord");
    for r in 0..cfg.regions {
        let name = format!("region{r}");
        let tok = tokens[r].take().expect("token used once");
        let next = senders[(r + 1) % cfg.regions].clone();
        let home = home_tx.clone();
        builder = builder.spawn_node(&name.clone(), move || async move {
            let mb = tok.bind();
            let next = next.bind_src(&name);
            let home = home.bind_src(&name);
            region_main(r as u32, cfg, mb, next, home).await;
        });
    }

    let mut rt = builder.build();
    let regions = cfg.regions;
    let started = Instant::now();
    let (fingerprint, committed, aborted) = rt.block_on(async move {
        let mb = home_tok.bind();
        let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
        let (mut committed, mut aborted) = (0u64, 0u64);
        for _ in 0..regions {
            let d = mb.recv().await;
            fnv_fold(&mut fingerprint, d.at_micros);
            fnv_fold(&mut fingerprint, u64::from(d.src_node));
            fnv_fold(&mut fingerprint, u64::from(d.payload.region));
            fnv_fold(&mut fingerprint, d.payload.committed);
            fnv_fold(&mut fingerprint, d.payload.aborted);
            fnv_fold(&mut fingerprint, d.payload.finished_at);
            fnv_fold(&mut fingerprint, d.payload.gossip_hash);
            committed += d.payload.committed;
            aborted += d.payload.aborted;
        }
        (fingerprint, committed, aborted)
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let metrics = rt.metrics();
    let shard_polls: Vec<u64> = rt.shard_metrics().iter().map(|m| m.polls).collect();
    RunResult {
        wall_secs,
        fingerprint,
        committed,
        aborted,
        polls: metrics.polls,
        shard_polls,
    }
}

fn main() {
    let cfg = Config {
        regions: env_u64("GEOTP_PAR_REGIONS", 8) as usize,
        rows: env_u64("GEOTP_PAR_ROWS", 10_000),
        terminals: env_u64("GEOTP_PAR_TERMINALS", 64) as usize,
        measure_secs: env_u64("GEOTP_PAR_SECS", 20),
        seed: env_u64("GEOTP_PAR_SEED", 42),
    };
    let worker_counts: Vec<usize> = std::env::var("GEOTP_PAR_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .filter(|&w| w >= 1)
        .collect();
    assert!(
        worker_counts.contains(&1),
        "GEOTP_PAR_WORKERS must include 1 (the fingerprint + speedup baseline)"
    );
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        ">>> parallel_regions: {} regions (4 paper-RTT sources each), {} rows/source, \
         {} terminals/region, {}s virtual window, workers {:?}, {} cpus",
        cfg.regions, cfg.rows, cfg.terminals, cfg.measure_secs, worker_counts, cpus
    );

    let mut results: Vec<(usize, RunResult)> = Vec::new();
    for &workers in &worker_counts {
        let res = run_once(workers, cfg);
        eprintln!(
            "    workers={workers}: wall={:.2}s committed={} fingerprint={:016x} \
             shard_polls={:?}",
            res.wall_secs, res.committed, res.fingerprint, res.shard_polls
        );
        results.push((workers, res));
    }

    let baseline = &results.iter().find(|(w, _)| *w == 1).expect("workers=1").1;
    let mut ok = true;
    for (workers, res) in &results {
        if res.fingerprint != baseline.fingerprint || res.committed != baseline.committed {
            eprintln!(
                "FAIL: fingerprint diverged at workers={workers}: \
                 {:016x} (committed {}) vs baseline {:016x} (committed {})",
                res.fingerprint, res.committed, baseline.fingerprint, baseline.committed
            );
            ok = false;
        }
    }

    // Parallel-efficiency figures come from the 4-worker run (the
    // acceptance point); fall back to the widest multi-worker run if 4 was
    // not requested.
    let multi = results.iter().find(|(w, _)| *w == 4).or_else(|| {
        results
            .iter()
            .filter(|(w, _)| *w > 1)
            .max_by_key(|(w, _)| *w)
    });
    let mut speedup = 1.0;
    let mut projected = 1.0;
    let mut overhead = 1.0;
    if let Some((workers, res)) = multi {
        speedup = baseline.wall_secs / res.wall_secs;
        overhead = res.wall_secs / baseline.wall_secs;
        let max_shard = res.shard_polls.iter().copied().max().unwrap_or(1).max(1);
        projected = res.polls as f64 / max_shard as f64;
        let min_speedup = env_f64("GEOTP_PAR_MIN_SPEEDUP", 2.5);
        let min_projected = env_f64("GEOTP_PAR_MIN_PROJECTED", 2.5);
        // On a single core, W runnable threads add raw timeslice latency at
        // every barrier wake (measured ~1.8x at 4 workers on the recording
        // box); the cap catches pathological regressions (a spinning
        // barrier is >4x) without flagging scheduler noise.
        let max_overhead = env_f64("GEOTP_PAR_MAX_OVERHEAD", 2.5);
        if cpus >= 4 {
            if speedup < min_speedup {
                eprintln!(
                    "FAIL: wall speedup at {workers} workers is {speedup:.2}x \
                     (< {min_speedup:.2}x) on a {cpus}-cpu host"
                );
                ok = false;
            }
        } else {
            // One/two-core host: threads only time-slice, so gate the
            // hardware-independent proxies instead of wall time.
            if projected < min_projected {
                eprintln!(
                    "FAIL: load balance bounds speedup at {projected:.2}x \
                     (< {min_projected:.2}x): shard_polls={:?}",
                    res.shard_polls
                );
                ok = false;
            }
            if overhead > max_overhead {
                eprintln!(
                    "FAIL: sharding overhead {overhead:.2}x exceeds {max_overhead:.2}x \
                     on a {cpus}-cpu host"
                );
                ok = false;
            }
        }
    }

    let committed_per_wall_sec = baseline.committed as f64 / baseline.wall_secs;
    let walls = results
        .iter()
        .map(|(w, r)| format!("{{\"workers\": {w}, \"wall_secs\": {:.3}}}", r.wall_secs))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "json: {{\"regions\": {}, \"rows\": {}, \"terminals\": {}, \"virtual_secs\": {}, \
         \"cpus\": {cpus}, \"committed\": {}, \"aborted\": {}, \"fingerprint\": \"{:016x}\", \
         \"runs\": [{walls}], \"speedup_vs_1\": {speedup:.3}, \"projected_speedup\": \
         {projected:.3}, \"overhead_1core\": {overhead:.3}, \
         \"committed_per_wall_sec_1w\": {committed_per_wall_sec:.1}}}",
        cfg.regions,
        cfg.rows,
        cfg.terminals,
        cfg.measure_secs,
        baseline.committed,
        baseline.aborted,
        baseline.fingerprint,
    );

    if ok {
        eprintln!("parallel_regions: PASS");
    } else {
        std::process::exit(1);
    }
}
