//! Sweep-profiling target: trace every chaos preset across the seed sweep,
//! merge critical paths over all committed transactions, and print the
//! phase-dominance tables (p50/p99 critical-path latency, dominant phase,
//! per-kind shares).
//!
//! ```text
//! cargo bench -p geotp-bench --bench profile_drills
//! GEOTP_FULL=1 cargo bench -p geotp-bench --bench profile_drills   # 32-seed sweep
//! ```

fn main() {
    geotp_bench::run_and_print(
        "profile_drills",
        geotp_experiments::profile_drills::profile_drills,
    );
}
