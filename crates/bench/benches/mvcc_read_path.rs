//! MVCC read-path gate: snapshot readers never block writers.
//!
//! Runs the long-reader-vs-OLTP drill twice — once under
//! `IsolationLevel::SnapshotRead` with the coordinator's read-only fast
//! path, once under legacy strict 2PL — and **fails the build** unless the
//! structural contrast holds on every seed:
//!
//! * snapshot runs record **zero** `storage.lock_wait` samples (versioned
//!   reads bypass the lock table, so readers cannot block writers), while
//!   the read-only fast path visibly commits the scans;
//! * the identical workload under 2PL records a non-empty lock-wait
//!   histogram — the contention the versioned read path removes.
//!
//! Both runs execute in virtual time on the deterministic simulator, so the
//! gate is machine-independent: no calibration, no tolerance knobs. The 2PL
//! run's mean lock wait is printed as the headline "cost removed" figure.
//!
//! ```text
//! cargo bench -p geotp-bench --bench mvcc_read_path
//! ```

use geotp_chaos::{traced, MvccScenario};
use geotp_telemetry::{MetricValue, Telemetry};

const SEEDS: u64 = 3;

/// Total samples and mean (µs) across every series of one histogram name.
fn histogram_stats(telemetry: &Telemetry, name: &str) -> (u64, f64) {
    let mut samples = 0u64;
    let mut weighted_mean_us = 0f64;
    for ((n, _, _), value) in telemetry.metrics.snapshot().entries.iter() {
        if *n == name {
            if let MetricValue::Histogram { count, mean, .. } = value {
                samples += count;
                weighted_mean_us += *count as f64 * mean.as_secs_f64() * 1e6;
            }
        }
    }
    let mean = if samples > 0 {
        weighted_mean_us / samples as f64
    } else {
        0.0
    };
    (samples, mean)
}

fn main() {
    let mut failed = false;
    for seed in 1..=SEEDS {
        let (snap_report, snap_telemetry) = traced(|| MvccScenario::LongReadersSnapshot.run(seed));
        let (snap_waits, _) = histogram_stats(&snap_telemetry, "storage.lock_wait");
        let fast_path = snap_telemetry
            .metrics
            .snapshot()
            .counter_total("mw.readonly_commits");

        let (legacy_report, legacy_telemetry) = traced(|| MvccScenario::LongReaders2pl.run(seed));
        let (legacy_waits, legacy_mean_us) =
            histogram_stats(&legacy_telemetry, "storage.lock_wait");

        println!(
            "mvcc_read_path seed {seed}: snapshot {} committed, {snap_waits} lock waits, \
             {fast_path} fast-path commits | 2pl {} committed, {legacy_waits} lock waits \
             (mean {legacy_mean_us:.0} us)",
            snap_report.committed, legacy_report.committed
        );

        for (label, ok) in [
            (
                "snapshot run keeps every checker green",
                snap_report.invariants.all_hold(),
            ),
            (
                "2pl run keeps every checker green",
                legacy_report.invariants.all_hold(),
            ),
            ("snapshot readers take zero locks", snap_waits == 0),
            ("read-only fast path commits the scans", fast_path > 0),
            ("2pl contrast run contends", legacy_waits > 0),
        ] {
            if !ok {
                eprintln!("mvcc_read_path seed {seed}: FAILED: {label}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("mvcc_read_path: readers-don't-block-writers contrast ok on {SEEDS} seeds");
}
