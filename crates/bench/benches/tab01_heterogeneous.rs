//! Bench target regenerating the paper's tab01 heterogeneous experiment.
//! Run with `cargo bench --bench tab01_heterogeneous` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "tab01_heterogeneous",
        geotp_experiments::figs_overall::tab01_heterogeneous,
    );
}
