//! Group-commit WAL gate: flush amortization at 64 concurrent committers.
//!
//! The group-commit window (`EngineConfig::group_commit_window`) parks
//! committers on the first arrival's window and flushes once on behalf of
//! everyone who joined meanwhile. This bench drives 64 concurrent one-phase
//! committers through one engine twice — window disabled (every commit is a
//! solo fsync) and window 10 ms — entirely in *virtual* time, and **fails
//! the build** unless the window cuts WAL flushes per committed transaction
//! by at least 4×. The gate is structural (a flush count ratio on a
//! deterministic schedule), so it is machine-independent: no calibration,
//! no tolerance knobs.
//!
//! Committer arrivals are staggered across 8 ms, inside the window but not
//! simultaneous, so the leader genuinely collects a mid-window batch rather
//! than an all-at-zero degenerate one; three waves make the figure a
//! steady-state per-transaction cost, not a one-window fluke.
//!
//! ```text
//! cargo bench -p geotp-bench --bench group_commit
//! ```

use std::rc::Rc;
use std::time::Duration;

use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig, Key, Row, StorageEngine, TableId, Xid};

const COMMITTERS: u64 = 64;
const WAVES: u64 = 3;

/// Run `WAVES` waves of `COMMITTERS` concurrent single-key committers and
/// return (WAL flushes, committed transactions).
fn run(window: Duration) -> (u64, u64) {
    let mut rt = Runtime::new();
    rt.block_on(async move {
        let engine = StorageEngine::new(EngineConfig {
            cost: CostModel::zero(),
            group_commit_window: window,
            ..EngineConfig::default()
        });
        for i in 0..COMMITTERS {
            engine.load(Key::new(TableId(0), i), Row::int(0));
        }
        let mut committed = 0u64;
        for wave in 0..WAVES {
            let mut handles = Vec::new();
            for i in 0..COMMITTERS {
                let engine = Rc::clone(&engine);
                handles.push(geotp_simrt::spawn(async move {
                    // Spread arrivals across 8 ms of the 10 ms window.
                    geotp_simrt::sleep(Duration::from_micros(i * 125)).await;
                    let xid = Xid::new(1 + wave * COMMITTERS + i, 0);
                    let key = Key::new(TableId(0), i);
                    engine.begin(xid).unwrap();
                    engine.add_int(xid, key, 0, 1).await.unwrap();
                    engine.commit(xid, true).await.unwrap();
                }));
            }
            for h in handles {
                h.await;
            }
            committed += COMMITTERS;
            // Quiesce between waves so each wave opens a fresh window.
            geotp_simrt::sleep(Duration::from_millis(50)).await;
        }
        (engine.wal().flush_count(), committed)
    })
}

fn main() {
    let (solo_flushes, solo_committed) = run(Duration::ZERO);
    let (group_flushes, group_committed) = run(Duration::from_millis(10));
    assert_eq!(solo_committed, group_committed);

    let solo_per_txn = solo_flushes as f64 / solo_committed as f64;
    let group_per_txn = group_flushes as f64 / group_committed as f64;
    let ratio = solo_flushes as f64 / group_flushes as f64;
    println!(
        "group_commit: {COMMITTERS} committers x {WAVES} waves -> \
         solo {solo_flushes} flushes ({solo_per_txn:.3}/txn), \
         10ms window {group_flushes} flushes ({group_per_txn:.3}/txn), \
         amortization {ratio:.1}x"
    );

    if ratio < 4.0 {
        eprintln!(
            "group_commit: the 10 ms window must cut WAL flushes by >= 4x at \
             {COMMITTERS} concurrent committers (got {ratio:.1}x)"
        );
        std::process::exit(1);
    }
    println!("group_commit: flush amortization >= 4x ok");
}
