//! Quick-mode regression gate for session-registry churn.
//!
//! The flash-crowd preset registers 200k mostly-idle sessions and leans on
//! the idle-session reaper to keep per-session state memory-lean toward 10^6
//! sessions. This smoke target measures the registry's churn hot path —
//! register 100k sessions, touch them, reap them all — and **fails the
//! build** (non-zero exit) if the cycle regressed more than the tolerance
//! versus the `session_baseline` block in `BENCH_hotpath.json`.
//!
//! Methodology mirrors `hotpath_smoke`: best-of-N wall time, limits rescaled
//! by the pure-CPU calibration ratio (local machine vs the recorder of the
//! baseline), 25% tolerance by default (`GEOTP_SMOKE_TOLERANCE` overrides,
//! in percent), re-record with `GEOTP_SMOKE_RECORD=1` after an intentional
//! change. A hardware-independent structural check rides along: the reaper
//! must evict every idle session (the registry drains to zero), so "lean"
//! is not just fast but actually bounded.
//!
//! ```text
//! cargo bench -p geotp-bench --bench session_churn
//! ```

use std::time::{Duration, Instant};

use geotp::cluster::{build_tier, ClusterConfig, CoordinatorCluster, TierLayout};
use geotp::{Partitioner, Protocol};
use geotp_simrt::Runtime;
use geotp_storage::{CostModel, EngineConfig};

const SESSIONS: u64 = 100_000;
const PROBES: usize = 10;

/// One timed churn cycle: register `SESSIONS` sessions (router affinity +
/// registry entry), idle past the reap deadline on the virtual clock (free),
/// then reap them all. Deployment setup is untimed.
fn churn_once() -> Duration {
    let mut rt = Runtime::new();
    rt.block_on(async {
        let (net, sources) = build_tier(&TierLayout {
            seed: 42,
            coordinators: 2,
            ds_rtts_ms: vec![10, 60],
            control_rtt_ms: 2,
            engine: EngineConfig {
                lock_wait_timeout: Duration::from_secs(2),
                cost: CostModel::zero(),
                record_history: false,
                ..EngineConfig::default()
            },
            agent_lan_rtt: Duration::ZERO,
        });
        let config = ClusterConfig::new(
            2,
            Protocol::geotp(),
            Partitioner::Range {
                rows_per_node: 1_000,
                nodes: 2,
            },
        );
        let cluster = CoordinatorCluster::build(config, net, &sources);

        let started = Instant::now();
        for session in 0..SESSIONS {
            if let Some(coord) = cluster.router().route(session) {
                cluster.middleware(coord).register_session(session);
            }
        }
        geotp_simrt::sleep(Duration::from_secs(60)).await;
        let reaped = cluster.reap_idle_sessions_once(Duration::from_secs(30));
        let elapsed = started.elapsed();

        // Structural leanness: every idle session must actually be evicted.
        assert_eq!(reaped as u64, SESSIONS, "reaper must drain the registry");
        let left: usize = (0..2)
            .map(|c| cluster.middleware(c).active_sessions())
            .sum();
        assert_eq!(left, 0, "registries must be empty after the reap");
        elapsed
    })
}

fn best_of() -> Duration {
    (0..PROBES).map(|_| churn_once()).min().expect("probes")
}

/// Deterministic pure-CPU calibration, identical to `hotpath_smoke`'s: the
/// ratio of local to recorded calibration rescales the regression limit so a
/// slower runner is not misread as a code regression.
fn calibration_us() -> f64 {
    let buf: Vec<u8> = (0..1_048_576u32)
        .map(|i| (i.wrapping_mul(31)) as u8)
        .collect();
    (0..5)
        .map(|_| {
            let started = Instant::now();
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for _ in 0..8 {
                for byte in &buf {
                    hash = (hash ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            std::hint::black_box(hash);
            started.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::MAX, f64::min)
}

/// Pull a numeric field out of the baseline JSON's `session_baseline` block
/// without a JSON dependency (offline build; repo-controlled stable shape).
fn baseline_number(json: &str, key: &str) -> Option<f64> {
    let block = &json[json.find("\"session_baseline\"")?..];
    let field = format!("\"{key}\"");
    let rest = &block[block.find(&field)? + field.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let tolerance_pct: f64 = std::env::var("GEOTP_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    let json = std::fs::read_to_string(baseline_path).expect("read BENCH_hotpath.json");

    // Re-record the baseline: prints the `session_baseline` JSON block to
    // paste into BENCH_hotpath.json.
    if std::env::var("GEOTP_SMOKE_RECORD").is_ok() {
        let calibration = calibration_us();
        let churn = best_of().as_secs_f64() * 1e6;
        println!(
            " \"session_baseline\": {{\n  \"note\": \"session_churn gate: best-of-{PROBES} \
             register+reap cycle over {SESSIONS} sessions on a 2-coordinator tier; limits \
             scale by local/recorded calibration\",\n  \"calibration_us\": {calibration:.1},\n  \
             \"churn_100k_us\": {churn:.1}\n }}"
        );
        return;
    }

    let local_calibration = calibration_us();
    let recorded_calibration = baseline_number(&json, "calibration_us")
        .expect("BENCH_hotpath.json has session_baseline.calibration_us");
    let speed_scale = (local_calibration / recorded_calibration).clamp(0.25, 8.0);
    println!(
        "calibration: local {local_calibration:.0} us vs recorded {recorded_calibration:.0} us \
         -> limits scaled x{speed_scale:.2}"
    );

    let measured = best_of();
    let measured_us = measured.as_secs_f64() * 1e6;
    let Some(baseline_us) = baseline_number(&json, "churn_100k_us") else {
        eprintln!("session_churn: no session_baseline.churn_100k_us in BENCH_hotpath.json");
        std::process::exit(2);
    };
    let limit = baseline_us * (1.0 + tolerance_pct / 100.0) * speed_scale;
    let rate = SESSIONS as f64 / measured.as_secs_f64();
    let verdict = if measured_us > limit {
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "session_churn/register_reap_100k: {measured_us:.1} us ({rate:.0} sessions/s; \
         baseline {baseline_us:.1} us, limit {limit:.1} us) {verdict}"
    );
    if measured_us > limit {
        eprintln!(
            "session_churn: session-registry churn regressed beyond {tolerance_pct}% \
             of BENCH_hotpath.json (set GEOTP_SMOKE_TOLERANCE to adjust)"
        );
        std::process::exit(1);
    }
}
