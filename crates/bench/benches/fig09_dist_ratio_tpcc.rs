//! Bench target regenerating the paper's fig09 dist ratio tpcc experiment.
//! Run with `cargo bench --bench fig09_dist_ratio_tpcc` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig09_dist_ratio_tpcc",
        geotp_experiments::figs_distributed::fig09_dist_ratio_tpcc,
    );
}
