//! Quick-mode regression gate for the contended-lock microbenches.
//!
//! `BENCH_hotpath.json` records the post-overhaul timings of the contended
//! 64-writer promote chain (the hot path PR 1 made O(keys-held)). This smoke
//! target re-measures that exact operation and **fails the build** (non-zero
//! exit) if it regressed more than the tolerance versus the stored baseline
//! — the chaos-drills CI job runs it on every push so a hot-path regression
//! cannot ride in silently behind a green functional suite.
//!
//! Methodology: best-of-N wall time (the minimum is the least noisy location
//! estimate for a microbench on a shared CI box), compared against the
//! baseline's `smoke_baseline` figures with a 25% tolerance by default
//! (`GEOTP_SMOKE_TOLERANCE` overrides, in percent). The limits are rescaled
//! by a pure-CPU calibration ratio (local machine vs the recorder of the
//! baseline), so a slower runner is not misread as a code regression;
//! re-record with `GEOTP_SMOKE_RECORD=1` after an intentional hot-path
//! change. A second, hardware-independent *flatness* check guards the
//! structural claim: the 10 000-entry lock table must not cost more than
//! 2.5× the empty table (the pre-index implementation was ~500× — it
//! scanned the table per release).
//!
//! ```text
//! cargo bench -p geotp-bench --bench hotpath_smoke
//! ```

use std::rc::Rc;
use std::time::{Duration, Instant};

use geotp_simrt::Runtime;
use geotp_storage::{Key, LockManager, LockMode, TableId, Xid};

const WRITERS: u64 = 64;
const PROBES: usize = 40;

/// One timed run of the contended promote chain over a lock table prefilled
/// with `table_size` unrelated held keys (prefill untimed).
fn promote_chain_once(table_size: u64) -> Duration {
    let mut rt = Runtime::new();
    let lm = rt.block_on(async move {
        let lm = LockManager::new(Duration::from_secs(30));
        for i in 0..table_size {
            lm.acquire(
                Xid::new(100_000 + i, 0),
                Key::new(TableId(1), i),
                LockMode::Exclusive,
            )
            .await
            .unwrap();
        }
        lm
    });
    let started = Instant::now();
    rt.block_on(async {
        let hot = Key::new(TableId(0), 0);
        let holder = Xid::new(1, 0);
        lm.acquire(holder, hot, LockMode::Exclusive).await.unwrap();
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let lm2 = Rc::clone(&lm);
            handles.push(geotp_simrt::spawn(async move {
                let xid = Xid::new(2 + w, 0);
                lm2.acquire(xid, hot, LockMode::Exclusive).await.unwrap();
                lm2.release_all(xid);
            }));
        }
        geotp_simrt::sleep(Duration::from_millis(1)).await;
        lm.release_all(holder);
        for h in handles {
            h.await;
        }
    });
    started.elapsed()
}

fn best_of(table_size: u64) -> Duration {
    (0..PROBES)
        .map(|_| promote_chain_once(table_size))
        .min()
        .expect("at least one probe")
}

/// Deterministic pure-CPU calibration: FNV-1a over 1 MiB × 8 passes, best
/// of 5. The baseline file records this figure from the machine that
/// recorded the baseline timings; the ratio of local to recorded
/// calibration rescales the regression limit, so a slower CI runner is not
/// misread as a code regression (and a faster one does not mask a real
/// one).
fn calibration_us() -> f64 {
    let buf: Vec<u8> = (0..1_048_576u32)
        .map(|i| (i.wrapping_mul(31)) as u8)
        .collect();
    (0..5)
        .map(|_| {
            let started = Instant::now();
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for _ in 0..8 {
                for byte in &buf {
                    hash = (hash ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            std::hint::black_box(hash);
            started.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::MAX, f64::min)
}

/// Pull a numeric field out of the baseline JSON's `smoke_baseline` block
/// without a JSON dependency (the build is offline; the file is
/// repo-controlled and the shape is stable).
fn baseline_number(json: &str, key: &str) -> Option<f64> {
    let block = &json[json.find("\"smoke_baseline\"")?..];
    let field = format!("\"{key}\"");
    let rest = &block[block.find(&field)? + field.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let tolerance_pct: f64 = std::env::var("GEOTP_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    let json = std::fs::read_to_string(baseline_path).expect("read BENCH_hotpath.json");

    // Re-record the baseline (after an intentional hot-path change): prints
    // the `smoke_baseline` JSON block to paste into BENCH_hotpath.json.
    if std::env::var("GEOTP_SMOKE_RECORD").is_ok() {
        let calibration = calibration_us();
        let t0 = best_of(0).as_secs_f64() * 1e6;
        let t10k = best_of(10_000).as_secs_f64() * 1e6;
        println!(
            " \"smoke_baseline\": {{\n  \"note\": \"hotpath_smoke gate: best-of-{PROBES} \
             contended promote chain; limits scale by local/recorded calibration\",\n  \
             \"calibration_us\": {calibration:.1},\n  \"table_0_us\": {t0:.1},\n  \
             \"table_10000_us\": {t10k:.1}\n }}"
        );
        return;
    }

    // Machine-speed normalization (clamped: a wildly different calibration
    // means the comparison is meaningless either way, so cap the stretch).
    let local_calibration = calibration_us();
    let recorded_calibration = baseline_number(&json, "calibration_us")
        .expect("BENCH_hotpath.json has smoke_baseline.calibration_us");
    let speed_scale = (local_calibration / recorded_calibration).clamp(0.25, 8.0);
    println!(
        "calibration: local {local_calibration:.0} us vs recorded {recorded_calibration:.0} us \
         -> limits scaled x{speed_scale:.2}"
    );

    let mut failed = false;
    let mut timings = Vec::new();
    for size in [0u64, 10_000] {
        let measured = best_of(size);
        let measured_us = measured.as_secs_f64() * 1e6;
        timings.push(measured_us);
        let Some(baseline_us) = baseline_number(&json, &format!("table_{size}_us")) else {
            eprintln!("hotpath_smoke: no smoke_baseline.table_{size}_us in BENCH_hotpath.json");
            std::process::exit(2);
        };
        let limit = baseline_us * (1.0 + tolerance_pct / 100.0) * speed_scale;
        let verdict = if measured_us > limit {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "contended_promote_chain_64_writers/table_{size}: {measured_us:.1} us \
             (baseline {baseline_us:.1} us, limit {limit:.1} us) {verdict}"
        );
        if measured_us > limit {
            failed = true;
        }
    }

    // Structural flatness: independent of how fast this machine is.
    let (empty, full) = (timings[0], timings[1]);
    let flat = full <= empty * 2.5;
    println!(
        "flatness: table_10000 / table_0 = {:.2}x (must be <= 2.5x) {}",
        full / empty,
        if flat { "ok" } else { "REGRESSED" }
    );
    if !flat {
        failed = true;
    }

    if failed {
        eprintln!(
            "hotpath_smoke: contended-lock microbench regressed beyond {tolerance_pct}% \
             of BENCH_hotpath.json (set GEOTP_SMOKE_TOLERANCE to adjust)"
        );
        std::process::exit(1);
    }
}
