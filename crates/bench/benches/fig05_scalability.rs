//! Bench target regenerating the paper's fig05 scalability experiment.
//! Run with `cargo bench --bench fig05_scalability` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig05_scalability",
        geotp_experiments::figs_overall::fig05_scalability,
    );
}
