//! End-to-end wall-clock throughput harness for the simulation hot path.
//!
//! Drives the paper-default deployment (4 data sources at 0/27/73/251 ms RTT,
//! range-partitioned usertable) with the transactional YCSB workload through
//! the full stack — SQL-free spec path, GeoTP coordinator, geo-agents, 2PL
//! storage engines — and reports **committed transactions per wall-clock
//! second**, i.e. how fast the simulator itself runs, not the simulated tps.
//! This is the number the hot-path optimizations (lock-release index, slab
//! executor, cached wakers) are measured against; the before/after record
//! lives in `BENCH_hotpath.json`.
//!
//! Run with `cargo bench --bench throughput`. Environment knobs:
//!
//! * `GEOTP_TPUT_ROWS`      records per node          (default 1_000_000)
//! * `GEOTP_TPUT_TERMINALS` closed-loop terminals     (default 256)
//! * `GEOTP_TPUT_SECS`      virtual measure window, s (default 120)
//! * `GEOTP_TPUT_DIST`      distributed-txn ratio     (default 0.2)
//! * `GEOTP_TPUT_SEED`      driver seed               (default 42)
//! * `GEOTP_TPUT_THETA`     contention preset: low|medium|high (default medium)

use std::rc::Rc;
use std::time::{Duration, Instant};

use geotp::prelude::*;
use geotp_simrt::{Runtime, RuntimeBuilder};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Topology-declared runtime for the paper-default deployment. The whole
/// object graph is `Rc`-shared, so every node is pinned to shard 0: the
/// measured schedule is bit-identical at any `GEOTP_WORKERS` value.
fn paper_runtime(seed: u64) -> Runtime {
    let mut builder = RuntimeBuilder::from_env().seed(seed).assign("mw0", 0);
    for (i, rtt_ms) in geotp_net::PAPER_DEFAULT_RTTS_MS.iter().enumerate() {
        let ds = format!("ds{i}");
        builder = builder
            .link("mw0", &ds, Duration::from_millis(*rtt_ms))
            .assign(&ds, 0);
    }
    builder.build()
}

fn main() {
    let rows_per_node = env_u64("GEOTP_TPUT_ROWS", 1_000_000);
    let terminals = env_u64("GEOTP_TPUT_TERMINALS", 256) as usize;
    let measure = Duration::from_secs(env_u64("GEOTP_TPUT_SECS", 120));
    let dist_ratio = env_f64("GEOTP_TPUT_DIST", 0.2);
    let seed = env_u64("GEOTP_TPUT_SEED", 42);
    let contention = match std::env::var("GEOTP_TPUT_THETA").as_deref() {
        Ok("low") => Contention::Low,
        Ok("high") => Contention::High,
        _ => Contention::Medium,
    };
    let nodes = 4u32;

    eprintln!(
        ">>> throughput: {nodes} data sources (paper RTTs), {rows_per_node} rows/node, \
         {terminals} terminals, {}s virtual window, dist ratio {dist_ratio}",
        measure.as_secs()
    );

    let mut rt = paper_runtime(seed);
    let setup_started = Instant::now();
    let (report, run_wall) = rt.block_on(async move {
        let cluster = ClusterBuilder::new()
            .paper_default_sources()
            .records_per_node(rows_per_node)
            .protocol(Protocol::geotp())
            .build();

        let ycsb = YcsbConfig::new(nodes, rows_per_node)
            .with_contention(contention)
            .with_distributed_ratio(dist_ratio);
        let generator = Rc::new(YcsbGenerator::new(ycsb));
        generator.load(cluster.data_sources());
        let setup_wall = setup_started.elapsed();
        eprintln!(
            "    setup (load {} rows): {:.2}s wall",
            nodes as u64 * rows_per_node,
            setup_wall.as_secs_f64()
        );

        let run_started = Instant::now();
        let report = run_benchmark(
            Rc::clone(cluster.middleware()),
            WorkloadMix::Ycsb(generator),
            DriverConfig {
                terminals,
                warmup: Duration::from_secs(2),
                measure,
                seed,
            },
        )
        .await;
        let run_wall = run_started.elapsed();
        (report, run_wall)
    });
    let metrics = rt.metrics();

    let committed = report.metrics.committed();
    let aborted = report.metrics.aborted();
    let wall = run_wall.as_secs_f64();
    let committed_per_wall_sec = committed as f64 / wall;

    println!(
        "throughput: committed={committed} aborted={aborted} \
         virtual_tps={:.1} wall_secs={wall:.2} committed_per_wall_sec={committed_per_wall_sec:.1} \
         polls={} timers={} clock_advances={}",
        report.throughput(),
        metrics.polls,
        metrics.timers_registered,
        metrics.clock_advances,
    );
    println!(
        "json: {{\"rows_per_node\": {rows_per_node}, \"terminals\": {terminals}, \
         \"virtual_secs\": {}, \"dist_ratio\": {dist_ratio}, \"committed\": {committed}, \
         \"aborted\": {aborted}, \"virtual_tps\": {:.1}, \"wall_secs\": {wall:.2}, \
         \"committed_per_wall_sec\": {committed_per_wall_sec:.1}, \"polls\": {}}}",
        measure.as_secs(),
        report.throughput(),
        metrics.polls,
    );
}
