//! Failure-drill smoke target: run every chaos preset through the
//! invariant-checked harness and print the drill table.
//!
//! ```text
//! cargo bench -p geotp-bench --bench failure_drills
//! GEOTP_FULL=1 cargo bench -p geotp-bench --bench failure_drills   # 32-seed sweep
//! ```

fn main() {
    geotp_bench::run_and_print(
        "failure_drills",
        geotp_experiments::failure_drills::failure_drills,
    );
}
