//! Scale-out target: open-loop throughput and tail latency for a 1/2/4
//! -coordinator middleware tier over the same data sources.
//!
//! ```text
//! cargo bench -p geotp-bench --bench scaleout
//! GEOTP_FULL=1 cargo bench -p geotp-bench --bench scaleout   # longer window
//! ```

fn main() {
    geotp_bench::run_and_print("scaleout", geotp_experiments::scaleout::scaleout);
}
