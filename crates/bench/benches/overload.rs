//! Overload target: graceful degradation vs collapse on one saturated
//! coordinator (bounded admission + load shedding vs the legacy unbounded
//! queue), under the same open-loop offered load.
//!
//! ```text
//! cargo bench -p geotp-bench --bench overload
//! GEOTP_FULL=1 cargo bench -p geotp-bench --bench overload   # longer window
//! ```

fn main() {
    geotp_bench::run_and_print("overload", geotp_experiments::overload::overload);
}
