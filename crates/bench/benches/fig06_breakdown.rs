//! Bench target regenerating the paper's fig06 breakdown experiment.
//! Run with `cargo bench --bench fig06_breakdown` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig06_breakdown",
        geotp_experiments::figs_motivation::fig06_breakdown,
    );
}
