//! Bench target regenerating the paper's fig07 dist ratio ycsb experiment.
//! Run with `cargo bench --bench fig07_dist_ratio_ycsb` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig07_dist_ratio_ycsb",
        geotp_experiments::figs_distributed::fig07_dist_ratio_ycsb,
    );
}
