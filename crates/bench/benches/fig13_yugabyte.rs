//! Bench target regenerating the paper's fig13 yugabyte experiment.
//! Run with `cargo bench --bench fig13_yugabyte` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig13_yugabyte",
        geotp_experiments::figs_overall::fig13_yugabyte,
    );
}
