//! Bench target regenerating the paper's fig10 latency config experiment.
//! Run with `cargo bench --bench fig10_latency_config` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig10_latency_config",
        geotp_experiments::figs_network::fig10_latency_config,
    );
}
