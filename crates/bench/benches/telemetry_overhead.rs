//! Telemetry-overhead gate: tracing must stay (almost) free.
//!
//! `geotp-telemetry` instruments every tier — coordinator span trees, the
//! metrics registry, lock-wait and WAL counters, per-message network
//! counters. The design contract is that all of it is append-only work on
//! the side of the schedule, so the *wall-clock* cost of running a scenario
//! with a collector installed must stay within 25% of running it without
//! one. This target measures exactly that ratio on a full chaos preset
//! (every instrumented subsystem fires: admission, rounds, agent execution,
//! lock waits, decentralized prepare, commit, recovery) and **fails the
//! build** when `enabled > 1.25 × disabled`.
//!
//! The ratio gate is hardware-independent (both sides run on the same box in
//! the same process), so it needs no calibration scaling. Shared boxes drift
//! by 2x within a second, so the estimator is the **median of paired
//! ratios**: each probe times an untraced and a traced run back-to-back (in
//! alternating order, so warm-up and load shifts hit both sides alike) and
//! the gate checks the median of the per-pair ratios — robust to any single
//! probe landing on a load spike. The absolute figures recorded in
//! `BENCH_hotpath.json`'s `telemetry_baseline` block are informational.
//! Re-record with `GEOTP_SMOKE_RECORD=1` after an intentional change.
//!
//! ```text
//! cargo bench -p geotp-bench --bench telemetry_overhead
//! ```

use std::time::Instant;

use geotp_chaos::telemetry::run_scenario_traced;
use geotp_chaos::Scenario;

const PROBES: usize = 7;
const SEED: u64 = 11;

/// The preset scaled up (16 clients × 100 transactions) so per-transaction
/// tracing cost dominates over the one-time collector setup — a preset-sized
/// run finishes in ~1.5 ms of wall time, where the ratio mostly measures
/// constant overheads.
fn build() -> (geotp_chaos::ChaosConfig, geotp_chaos::FaultSchedule) {
    let (mut config, schedule) = Scenario::PreparePhaseCrash.build(SEED);
    config.clients = 16;
    config.txns_per_client = 100;
    (config, schedule)
}

fn untraced_once() -> f64 {
    let (config, schedule) = build();
    let started = Instant::now();
    let report = geotp_chaos::run_scenario(config, schedule);
    let elapsed = started.elapsed().as_secs_f64() * 1e6;
    assert!(report.invariants.all_hold());
    elapsed
}

fn traced_once() -> (f64, usize) {
    let (config, schedule) = build();
    let started = Instant::now();
    let (report, telemetry) = run_scenario_traced(config, schedule);
    let elapsed = started.elapsed().as_secs_f64() * 1e6;
    assert!(report.invariants.all_hold());
    (elapsed, telemetry.tracer.len())
}

fn main() {
    let tolerance: f64 = std::env::var("GEOTP_TELEMETRY_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25);

    // One warm-up pair populates caches and the lazy runtime state before
    // anything is timed.
    let _ = untraced_once();
    let _ = traced_once();

    let mut ratios = Vec::with_capacity(PROBES);
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    let mut spans = 0;
    for probe in 0..PROBES {
        // Pair the sides back-to-back and alternate which goes first, so
        // background-load drift cancels within each pair.
        let (off, on) = if probe % 2 == 0 {
            let off = untraced_once();
            let (on, n) = traced_once();
            spans = n;
            (off, on)
        } else {
            let (on, n) = traced_once();
            spans = n;
            (untraced_once(), on)
        };
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        ratios.push(on / off);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ratio = ratios[PROBES / 2];

    if std::env::var("GEOTP_SMOKE_RECORD").is_ok() {
        println!(
            " \"telemetry_baseline\": {{\n  \"note\": \"telemetry_overhead gate: {} drill, \
             median of {PROBES} paired traced/untraced ratios; the ratio (not the absolute \
             best-of figures) is the gate\",\n  \"untraced_us\": {best_off:.1},\n  \
             \"traced_us\": {best_on:.1},\n  \"ratio\": {ratio:.3},\n  \"spans\": {spans}\n }}",
            Scenario::PreparePhaseCrash.name()
        );
        return;
    }

    println!(
        "{} seed {SEED}: untraced best {best_off:.0} us, traced best {best_on:.0} us \
         ({spans} spans) -> median pair ratio {ratio:.3}x (limit {tolerance:.2}x)",
        Scenario::PreparePhaseCrash.name()
    );
    if ratio > tolerance {
        eprintln!(
            "telemetry_overhead: tracing costs {ratio:.3}x, over the {tolerance:.2}x budget \
             (set GEOTP_TELEMETRY_TOLERANCE to adjust)"
        );
        std::process::exit(1);
    }
    println!("telemetry overhead within budget.");
}
