//! Bench target regenerating the paper's fig11 random dynamic experiment.
//! Run with `cargo bench --bench fig11_random_dynamic` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig11_random_dynamic",
        geotp_experiments::figs_network::fig11_random_dynamic,
    );
}
