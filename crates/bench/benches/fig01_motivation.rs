//! Bench target regenerating the paper's fig01 motivation experiment.
//! Run with `cargo bench --bench fig01_motivation` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig01_motivation",
        geotp_experiments::figs_motivation::fig01_motivation,
    );
}
