//! Cluster failure-drill smoke target: run every multi-coordinator chaos
//! preset through the invariant-checked tier harness and print the table.
//!
//! ```text
//! cargo bench -p geotp-bench --bench cluster_drills
//! GEOTP_FULL=1 cargo bench -p geotp-bench --bench cluster_drills   # 32-seed sweep
//! ```

fn main() {
    geotp_bench::run_and_print(
        "cluster_drills",
        geotp_experiments::cluster_drills::cluster_drills,
    );
}
