//! Bench target regenerating the paper's fig15 multi dm experiment.
//! Run with `cargo bench --bench fig15_multi_dm` (set `GEOTP_FULL=1` for paper scale).

fn main() {
    geotp_bench::run_and_print(
        "fig15_multi_dm",
        geotp_experiments::figs_overall::fig15_multi_dm,
    );
}
