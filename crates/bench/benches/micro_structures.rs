//! Criterion microbenchmarks for the core data structures the middleware's
//! hot path relies on: the 2PL lock manager, the hotspot footprint (AVL+LRU),
//! the geo-scheduler computation and the YCSB Zipfian generator.

use std::rc::Rc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use geotp_middleware::{
    BranchPlan, GeoScheduler, GlobalKey, HotspotConfig, HotspotFootprint, SchedulerConfig,
};
use geotp_simrt::Runtime;
use geotp_storage::{Key, LockManager, LockMode, TableId, Xid};
use geotp_workloads::ZipfianGenerator;

fn bench_lock_manager(c: &mut Criterion) {
    c.bench_function("lock_manager/acquire_release_1000_keys", |b| {
        b.iter_batched(
            Runtime::new,
            |mut rt| {
                rt.block_on(async {
                    let lm = LockManager::new(Duration::from_secs(5));
                    let xid = Xid::new(1, 0);
                    for i in 0..1000u64 {
                        lm.acquire(xid, Key::new(TableId(0), i), LockMode::Exclusive)
                            .await
                            .unwrap();
                    }
                    lm.release_all(xid);
                });
            },
            BatchSize::SmallInput,
        )
    });
}

/// The contended path: N writers queued on one hot key. Measures the
/// release→promote cascade (every grant walks the FIFO queue) and the
/// acquire→timeout path, at two very different lock-table sizes. With the
/// per-transaction key index, `release_all` touches only the releasing
/// transaction's keys, so the two table sizes must bench flat; the pre-index
/// implementation scanned the whole table per release and degraded linearly.
fn bench_contended_lock_manager(c: &mut Criterion) {
    const WRITERS: u64 = 64;
    // Pre-fill the lock table with unrelated held keys in the *untimed* setup
    // so the measurement isolates the contended acquire/release/promote work.
    fn prefilled(table_size: u64, wait_timeout: Duration) -> (Runtime, Rc<LockManager>) {
        let mut rt = Runtime::new();
        let lm = rt.block_on(async move {
            let lm = LockManager::new(wait_timeout);
            // Unrelated transactions holding `table_size` other keys: pure
            // lock-table bulk.
            for i in 0..table_size {
                lm.acquire(
                    Xid::new(100_000 + i, 0),
                    Key::new(TableId(1), i),
                    LockMode::Exclusive,
                )
                .await
                .unwrap();
            }
            lm
        });
        (rt, lm)
    }
    for table_size in [0u64, 10_000] {
        c.bench_function(
            &format!("lock_manager/contended_promote_chain_64_writers_table_{table_size}"),
            |b| {
                b.iter_batched(
                    || prefilled(table_size, Duration::from_secs(30)),
                    |(mut rt, lm)| {
                        rt.block_on(async {
                            let hot = Key::new(TableId(0), 0);
                            let holder = Xid::new(1, 0);
                            lm.acquire(holder, hot, LockMode::Exclusive).await.unwrap();
                            let mut handles = Vec::new();
                            for w in 0..WRITERS {
                                let lm2 = Rc::clone(&lm);
                                handles.push(geotp_simrt::spawn(async move {
                                    let xid = Xid::new(2 + w, 0);
                                    lm2.acquire(xid, hot, LockMode::Exclusive).await.unwrap();
                                    // Each grant immediately releases, promoting
                                    // the next queued writer (FIFO chain).
                                    lm2.release_all(xid);
                                }));
                            }
                            geotp_simrt::sleep(Duration::from_millis(1)).await;
                            lm.release_all(holder);
                            for h in handles {
                                h.await;
                            }
                        });
                        // Returned so the prefilled table's teardown is not timed.
                        (rt, lm)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        c.bench_function(
            &format!("lock_manager/contended_acquire_timeout_64_writers_table_{table_size}"),
            |b| {
                b.iter_batched(
                    || prefilled(table_size, Duration::from_millis(5)),
                    |(mut rt, lm)| {
                        rt.block_on(async {
                            let hot = Key::new(TableId(0), 0);
                            lm.acquire(Xid::new(1, 0), hot, LockMode::Exclusive)
                                .await
                                .unwrap();
                            let mut handles = Vec::new();
                            for w in 0..WRITERS {
                                let lm2 = Rc::clone(&lm);
                                handles.push(geotp_simrt::spawn(async move {
                                    // The holder never releases: every waiter
                                    // exercises acquire→timeout→dequeue.
                                    let err = lm2
                                        .acquire(Xid::new(2 + w, 0), hot, LockMode::Exclusive)
                                        .await
                                        .unwrap_err();
                                    assert_eq!(err, geotp_storage::LockError::Timeout);
                                }));
                            }
                            for h in handles {
                                h.await;
                            }
                        });
                        // Returned so the prefilled table's teardown is not timed.
                        (rt, lm)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn bench_hotspot(c: &mut Criterion) {
    c.bench_function("hotspot/feedback_and_forecast", |b| {
        let keys: Vec<GlobalKey> = (0..5).map(|i| GlobalKey::new(TableId(0), i)).collect();
        b.iter_batched(
            || HotspotFootprint::new(HotspotConfig::default()),
            |mut fp| {
                for _ in 0..200 {
                    fp.on_access_start(&keys);
                    fp.on_subtxn_feedback(&keys, Duration::from_millis(3));
                    fp.on_txn_finish(&keys, true);
                }
                criterion::black_box(fp.forecast_local_latency(&keys));
                criterion::black_box(fp.abort_probability(&keys));
            },
            BatchSize::SmallInput,
        )
    });
}

/// LRU eviction churn under a zipfian-shaped touch pattern: a small hot set
/// is touched over and over (leaving the LRU queue full of *stale* entries —
/// every touch pushes one) while a stream of new cold keys keeps the
/// footprint at capacity, so each insert's eviction scan has to wade through
/// the stale entries. Skipping a stale entry used to pay one AVL lookup
/// (~11% inclusive at the paper-default YCSB config per the ROADMAP
/// profile); with the arena handle stored in the LRU node it is an O(1)
/// slot probe.
fn bench_hotspot_eviction(c: &mut Criterion) {
    const HOT_KEYS: u64 = 64;
    const TOUCHES_PER_COLD_INSERT: u64 = 8;
    for capacity in [1_000usize, 10_000] {
        c.bench_function(&format!("hotspot/lru_eviction_churn_cap_{capacity}"), |b| {
            b.iter_batched(
                || {
                    let mut fp = HotspotFootprint::new(HotspotConfig {
                        capacity,
                        ..HotspotConfig::default()
                    });
                    // Fill to capacity (untimed) so the measured loop is pure
                    // touch+insert+evict churn.
                    for i in 0..capacity as u64 {
                        fp.on_access_start(&[GlobalKey::new(TableId(0), i)]);
                        fp.on_txn_finish(&[GlobalKey::new(TableId(0), i)], true);
                    }
                    fp
                },
                |mut fp| {
                    let cold_base = 1 << 40;
                    for i in 0..10_000u64 {
                        // Hot traffic: repeated touches of a small set, each
                        // leaving a stale LRU entry behind.
                        for t in 0..TOUCHES_PER_COLD_INSERT {
                            let hot = GlobalKey::new(
                                TableId(0),
                                (i * TOUCHES_PER_COLD_INSERT + t) % HOT_KEYS,
                            );
                            fp.on_access_start(&[hot]);
                            fp.on_txn_finish(&[hot], true);
                        }
                        // One cold insert forces an eviction scan through them.
                        let cold = GlobalKey::new(TableId(0), cold_base + i);
                        fp.on_access_start(&[cold]);
                        fp.on_txn_finish(&[cold], true);
                    }
                    criterion::black_box(fp.evictions());
                    fp
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler/schedule_4_branches", |b| {
        b.iter_batched(
            Runtime::new,
            |mut rt| {
                rt.block_on(async {
                    let net = geotp_net_builder();
                    let monitor = geotp_net::LatencyMonitor::new(
                        &net,
                        geotp_net::NodeId::middleware(0),
                        &(0..4)
                            .map(geotp_net::NodeId::data_source)
                            .collect::<Vec<_>>(),
                        geotp_net::MonitorConfig::default(),
                    );
                    let scheduler = GeoScheduler::new(SchedulerConfig::default(), monitor);
                    let plans: Vec<BranchPlan> = (0..4)
                        .map(|i| BranchPlan {
                            ds_index: i,
                            keys: vec![GlobalKey::new(TableId(0), i as u64)],
                        })
                        .collect();
                    for _ in 0..100 {
                        criterion::black_box(scheduler.schedule(&plans));
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
}

fn geotp_net_builder() -> Rc<geotp_net::Network> {
    let mut builder = geotp_net::NetworkBuilder::new(1);
    for (i, rtt) in geotp_net::PAPER_DEFAULT_RTTS_MS.iter().enumerate() {
        builder = builder.static_link(
            geotp_net::NodeId::middleware(0),
            geotp_net::NodeId::data_source(i as u32),
            Duration::from_millis(*rtt),
        );
    }
    builder.build()
}

fn bench_zipfian(c: &mut Criterion) {
    c.bench_function("zipfian/next_10k_draws_theta_0.9", |b| {
        let gen = ZipfianGenerator::new(1_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(gen.next(&mut rng));
            }
            criterion::black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_lock_manager, bench_contended_lock_manager, bench_hotspot, bench_hotspot_eviction, bench_scheduler, bench_zipfian
}
criterion_main!(benches);
