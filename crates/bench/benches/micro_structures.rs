//! Criterion microbenchmarks for the core data structures the middleware's
//! hot path relies on: the 2PL lock manager, the hotspot footprint (AVL+LRU),
//! the geo-scheduler computation and the YCSB Zipfian generator.

use std::rc::Rc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use geotp_middleware::{
    BranchPlan, GeoScheduler, GlobalKey, HotspotConfig, HotspotFootprint, SchedulerConfig,
};
use geotp_simrt::Runtime;
use geotp_storage::{Key, LockManager, LockMode, TableId, Xid};
use geotp_workloads::ZipfianGenerator;

fn bench_lock_manager(c: &mut Criterion) {
    c.bench_function("lock_manager/acquire_release_1000_keys", |b| {
        b.iter_batched(
            Runtime::new,
            |mut rt| {
                rt.block_on(async {
                    let lm = LockManager::new(Duration::from_secs(5));
                    let xid = Xid::new(1, 0);
                    for i in 0..1000u64 {
                        lm.acquire(xid, Key::new(TableId(0), i), LockMode::Exclusive)
                            .await
                            .unwrap();
                    }
                    lm.release_all(xid);
                });
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hotspot(c: &mut Criterion) {
    c.bench_function("hotspot/feedback_and_forecast", |b| {
        let keys: Vec<GlobalKey> = (0..5).map(|i| GlobalKey::new(TableId(0), i)).collect();
        b.iter_batched(
            || HotspotFootprint::new(HotspotConfig::default()),
            |mut fp| {
                for _ in 0..200 {
                    fp.on_access_start(&keys);
                    fp.on_subtxn_feedback(&keys, Duration::from_millis(3));
                    fp.on_txn_finish(&keys, true);
                }
                criterion::black_box(fp.forecast_local_latency(&keys));
                criterion::black_box(fp.abort_probability(&keys));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler/schedule_4_branches", |b| {
        b.iter_batched(
            Runtime::new,
            |mut rt| {
                rt.block_on(async {
                    let net = geotp_net_builder();
                    let monitor = geotp_net::LatencyMonitor::new(
                        &net,
                        geotp_net::NodeId::middleware(0),
                        &(0..4).map(geotp_net::NodeId::data_source).collect::<Vec<_>>(),
                        geotp_net::MonitorConfig::default(),
                    );
                    let scheduler = GeoScheduler::new(SchedulerConfig::default(), monitor);
                    let plans: Vec<BranchPlan> = (0..4)
                        .map(|i| BranchPlan {
                            ds_index: i,
                            keys: vec![GlobalKey::new(TableId(0), i as u64)],
                        })
                        .collect();
                    for _ in 0..100 {
                        criterion::black_box(scheduler.schedule(&plans));
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
}

fn geotp_net_builder() -> Rc<geotp_net::Network> {
    let mut builder = geotp_net::NetworkBuilder::new(1);
    for (i, rtt) in geotp_net::PAPER_DEFAULT_RTTS_MS.iter().enumerate() {
        builder = builder.static_link(
            geotp_net::NodeId::middleware(0),
            geotp_net::NodeId::data_source(i as u32),
            Duration::from_millis(*rtt),
        );
    }
    builder.build()
}

fn bench_zipfian(c: &mut Criterion) {
    c.bench_function("zipfian/next_10k_draws_theta_0.9", |b| {
        let gen = ZipfianGenerator::new(1_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(gen.next(&mut rng));
            }
            criterion::black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_lock_manager, bench_hotspot, bench_scheduler, bench_zipfian
}
criterion_main!(benches);
