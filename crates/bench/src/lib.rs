//! Helper shared by the per-figure bench targets.

use geotp_experiments::{Scale, Table};

/// Run one experiment function, print its tables and a timing footer.
pub fn run_and_print(name: &str, experiment: fn(Scale) -> Vec<Table>) {
    let scale = Scale::from_env();
    eprintln!(">>> running {name} at {scale:?} scale (set GEOTP_FULL=1 for the paper-scale sweep)");
    let started = std::time::Instant::now();
    let tables = experiment(scale);
    for table in &tables {
        println!("{table}");
    }
    eprintln!(
        "<<< {name}: {} table(s) in {:.1}s wall-clock",
        tables.len(),
        started.elapsed().as_secs_f64()
    );
}
