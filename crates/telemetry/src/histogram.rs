//! A logarithmically-bucketed latency histogram (1 µs – ~1 hour range) with
//! exact tracking of count, sum, min and max.
//!
//! This lived in `geotp-workloads` originally; it moved here so the metrics
//! registry can reuse it without inverting the dependency graph.
//! `geotp_workloads::Histogram` re-exports it, so existing callers are
//! unchanged.

use std::time::Duration;

/// A logarithmically-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket `i` counts samples in `[bucket_floor(i), bucket_floor(i+1))`,
    /// with sub-bucket resolution of 1/32 of each power of two.
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u128,
    min_micros: u64,
    max_micros: u64,
}

const SUB_BUCKETS: usize = 32;
const MAX_POWER: usize = 32; // 2^32 µs ≈ 1.2 hours

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; MAX_POWER * SUB_BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    fn bucket_index(micros: u64) -> usize {
        if micros < SUB_BUCKETS as u64 {
            return micros as usize;
        }
        let power = 63 - micros.leading_zeros() as usize;
        let base = (power.saturating_sub(4)).min(MAX_POWER - 1) * SUB_BUCKETS;
        let sub = ((micros >> power.saturating_sub(5)) as usize) & (SUB_BUCKETS - 1);
        (base + sub).min(MAX_POWER * SUB_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let power = index / SUB_BUCKETS + 4;
        let sub = (index % SUB_BUCKETS) as u64;
        (1u64 << power) + (sub << (power - 5))
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.sum_micros += micros as u128;
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros((self.sum_micros / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_micros)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// Latency at the given percentile (0.0–100.0), approximated by the
    /// bucket's representative value.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return Duration::from_micros(Self::bucket_value(idx).max(self.min_micros));
            }
        }
        self.max()
    }

    /// Extract `(latency, cumulative_fraction)` points for a CDF plot.
    pub fn cdf(&self, points: usize) -> Vec<(Duration, f64)> {
        if self.count == 0 || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                (self.percentile(frac * 100.0), frac)
            })
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Edge-case coverage for the log-bucketed histogram: the exact-count
    // region boundary (32 µs), power-of-two bucket edges, saturation at the
    // 2^32 µs cap, degenerate percentiles and merge/record equivalence.

    #[test]
    fn samples_below_32us_are_exact() {
        let mut h = Histogram::new();
        for us in 0..SUB_BUCKETS as u64 {
            h.record(Duration::from_micros(us));
        }
        // Every sample below the sub-bucket threshold has its own bucket, so
        // percentiles in this region are exact (no bucket rounding).
        assert_eq!(h.percentile(100.0), Duration::from_micros(31));
        assert_eq!(Histogram::bucket_index(31), 31);
        assert_eq!(Histogram::bucket_value(31), 31);
    }

    #[test]
    fn boundary_at_32us_enters_the_log_region() {
        // 32 µs is the first logarithmic bucket; its representative value
        // must round-trip exactly.
        let idx = Histogram::bucket_index(32);
        assert_eq!(idx, SUB_BUCKETS);
        assert_eq!(Histogram::bucket_value(idx), 32);
        let mut h = Histogram::new();
        h.record(Duration::from_micros(32));
        assert_eq!(h.percentile(50.0), Duration::from_micros(32));
    }

    #[test]
    fn power_of_two_edges_round_trip() {
        for power in 5..31u32 {
            let v = 1u64 << power;
            let idx = Histogram::bucket_index(v);
            assert_eq!(
                Histogram::bucket_value(idx),
                v,
                "2^{power} must be its own bucket floor"
            );
            // The value just below the edge stays in the previous power's
            // bucket range (never rounds *up* across the edge).
            assert!(Histogram::bucket_value(Histogram::bucket_index(v - 1)) <= v - 1 + (v >> 5));
            assert!(Histogram::bucket_index(v - 1) < idx);
        }
    }

    #[test]
    fn saturation_at_the_cap_is_lossless_for_count_and_sum() {
        let mut h = Histogram::new();
        let cap = 1u64 << 32; // ≈ 1.2 hours in µs
        let beyond = Duration::from_micros(cap * 8);
        h.record(beyond);
        h.record(Duration::from_micros(cap));
        // Both land in the saturated top power block, where ever-larger
        // samples collapse onto the same buckets...
        assert!(Histogram::bucket_index(cap * 8) >= (MAX_POWER - 1) * SUB_BUCKETS);
        assert_eq!(
            Histogram::bucket_index(cap * 8),
            Histogram::bucket_index(cap * 16),
            "beyond the cap, indexes stop growing"
        );
        assert_eq!(h.count(), 2);
        // ...while min/max/sum stay exact.
        assert_eq!(h.max(), beyond);
        assert_eq!(h.min(), Duration::from_micros(cap));
        assert_eq!(h.mean(), Duration::from_micros(cap * 9 / 2));
        // Percentiles are clamped into the recorded range, not the bucket's
        // nominal (saturated) floor.
        assert!(h.percentile(1.0) >= h.min());
        assert!(h.percentile(100.0) <= h.max() + Duration::from_micros(cap >> 5));
    }

    #[test]
    fn degenerate_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.0), Duration::ZERO, "empty histogram");
        assert_eq!(h.percentile(100.0), Duration::ZERO);
        for ms in [3u64, 7, 11] {
            h.record(Duration::from_millis(ms));
        }
        // percentile(0.0) targets the first sample — it reports the minimum.
        assert_eq!(h.percentile(0.0), h.min());
        // percentile(100.0) covers every sample; bucket rounding keeps it
        // within one sub-bucket of the true maximum.
        let p100 = h.percentile(100.0);
        assert!(p100 >= h.min());
        assert!(p100.as_micros() <= h.max().as_micros() * 33 / 32);
    }

    #[test]
    fn merge_then_percentile_matches_single_histogram() {
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500u64 {
            let d = Duration::from_micros(i * 37 + 1);
            if i % 2 == 0 {
                left.record(d);
            } else {
                right.record(d);
            }
            all.record(d);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
        assert_eq!(left.mean(), all.mean());
        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                left.percentile(p),
                all.percentile(p),
                "merged percentile({p}) must equal recording into one histogram"
            );
        }
    }
}
