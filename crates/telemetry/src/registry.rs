//! The unified metrics registry: typed counters, gauges and histograms
//! registered by `(name, label, index)` and snapshotable at any virtual
//! instant.
//!
//! Keys are `(&'static str, &'static str, u32)` so hot-path increments never
//! allocate: the name is the metric family (`"net.messages"`), the label a
//! static qualifier (`"queue_full"`, `""` when unused), and the index a node
//! or shard number. Snapshots sort keys before emitting, so output order is
//! deterministic regardless of hash-map iteration order.

use std::cell::RefCell;
use std::time::Duration;

use geotp_simrt::hash::FxHashMap;
use geotp_simrt::SimInstant;

use crate::histogram::Histogram;

/// A fully-qualified metric key.
pub type MetricKey = (&'static str, &'static str, u32);

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-written gauge level.
    Gauge(i64),
    /// Sample count, mean and p99 of a histogram.
    Histogram {
        /// Number of recorded samples.
        count: u64,
        /// Mean sample.
        mean: Duration,
        /// 99th-percentile sample.
        p99: Duration,
    },
}

/// A deterministic point-in-time view of every registered metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Virtual instant the snapshot was taken.
    pub at: SimInstant,
    /// `(key, value)` pairs sorted by key.
    pub entries: Vec<(MetricKey, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up one metric by key.
    pub fn get(&self, name: &str, label: &str, index: u32) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|((n, l, i), _)| *n == name && *l == label && *i == index)
            .map(|(_, v)| v)
    }

    /// Sum of all counter values whose name matches, across labels/indices.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|((n, _, _), _)| *n == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Render as aligned `name{label,index} value` lines (sorted, stable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((name, label, index), value) in &self.entries {
            let qual = if label.is_empty() {
                format!("{{{index}}}")
            } else {
                format!("{{{label},{index}}}")
            };
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name}{qual} {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name}{qual} {g}\n"));
                }
                MetricValue::Histogram { count, mean, p99 } => {
                    out.push_str(&format!(
                        "{name}{qual} count={count} mean={}us p99={}us\n",
                        mean.as_micros(),
                        p99.as_micros()
                    ));
                }
            }
        }
        out
    }
}

/// The registry. Cheap to create; one per installed [`crate::Telemetry`].
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RefCell<FxHashMap<MetricKey, u64>>,
    gauges: RefCell<FxHashMap<MetricKey, i64>>,
    histograms: RefCell<FxHashMap<MetricKey, Histogram>>,
    /// Timeline of past snapshots, for timeline export.
    timeline: RefCell<Vec<MetricsSnapshot>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter (creating it at zero first).
    pub fn counter_add(&self, name: &'static str, label: &'static str, index: u32, delta: u64) {
        *self
            .counters
            .borrow_mut()
            .entry((name, label, index))
            .or_insert(0) += delta;
    }

    /// Current counter total.
    pub fn counter(&self, name: &'static str, label: &'static str, index: u32) -> u64 {
        self.counters
            .borrow()
            .get(&(name, label, index))
            .copied()
            .unwrap_or(0)
    }

    /// Set a gauge to an absolute level.
    pub fn gauge_set(&self, name: &'static str, label: &'static str, index: u32, level: i64) {
        self.gauges.borrow_mut().insert((name, label, index), level);
    }

    /// Add `delta` (possibly negative) to a gauge.
    pub fn gauge_add(&self, name: &'static str, label: &'static str, index: u32, delta: i64) {
        *self
            .gauges
            .borrow_mut()
            .entry((name, label, index))
            .or_insert(0) += delta;
    }

    /// Current gauge level.
    pub fn gauge(&self, name: &'static str, label: &'static str, index: u32) -> i64 {
        self.gauges
            .borrow()
            .get(&(name, label, index))
            .copied()
            .unwrap_or(0)
    }

    /// Record one sample into a histogram.
    pub fn observe(&self, name: &'static str, label: &'static str, index: u32, sample: Duration) {
        self.histograms
            .borrow_mut()
            .entry((name, label, index))
            .or_default()
            .record(sample);
    }

    /// Clone of one histogram, if it has been observed.
    pub fn histogram(
        &self,
        name: &'static str,
        label: &'static str,
        index: u32,
    ) -> Option<Histogram> {
        self.histograms.borrow().get(&(name, label, index)).cloned()
    }

    /// Take a deterministic snapshot of every metric at the current virtual
    /// instant (keys sorted).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(MetricKey, MetricValue)> = Vec::new();
        for (key, value) in self.counters.borrow().iter() {
            entries.push((*key, MetricValue::Counter(*value)));
        }
        for (key, value) in self.gauges.borrow().iter() {
            entries.push((*key, MetricValue::Gauge(*value)));
        }
        for (key, hist) in self.histograms.borrow().iter() {
            entries.push((
                *key,
                MetricValue::Histogram {
                    count: hist.count(),
                    mean: hist.mean(),
                    p99: hist.percentile(99.0),
                },
            ));
        }
        entries.sort_by_key(|(key, _)| *key);
        MetricsSnapshot {
            // Post-run inspection happens after `block_on` returned, where no
            // virtual clock exists; stamp those snapshots with zero.
            at: geotp_simrt::try_handle()
                .map(|h| h.now())
                .unwrap_or(SimInstant::from_micros(0)),
            entries,
        }
    }

    /// Dump the raw registry contents as key-sorted vectors — the `Send`
    /// form the cross-shard merge works on.
    #[allow(clippy::type_complexity)]
    pub(crate) fn dump(
        &self,
    ) -> (
        Vec<(MetricKey, u64)>,
        Vec<(MetricKey, i64)>,
        Vec<(MetricKey, Histogram)>,
    ) {
        let mut counters: Vec<_> = self
            .counters
            .borrow()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        counters.sort_unstable_by_key(|(k, _)| *k);
        let mut gauges: Vec<_> = self.gauges.borrow().iter().map(|(k, v)| (*k, *v)).collect();
        gauges.sort_unstable_by_key(|(k, _)| *k);
        let mut histograms: Vec<_> = self
            .histograms
            .borrow()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        histograms.sort_unstable_by_key(|(k, _)| *k);
        (counters, gauges, histograms)
    }

    /// Take a snapshot and append it to the internal timeline.
    pub fn snapshot_to_timeline(&self) -> MetricsSnapshot {
        let snap = self.snapshot();
        self.timeline.borrow_mut().push(snap.clone());
        snap
    }

    /// All snapshots recorded with [`Self::snapshot_to_timeline`], in order.
    pub fn timeline(&self) -> Vec<MetricsSnapshot> {
        self.timeline.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::{sleep, Runtime};

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let reg = MetricsRegistry::new();
            reg.counter_add("net.messages", "", 0, 3);
            reg.counter_add("net.messages", "", 0, 2);
            reg.counter_add("net.messages", "", 1, 1);
            assert_eq!(reg.counter("net.messages", "", 0), 5);
            reg.gauge_set("cluster.queue_depth", "", 0, 4);
            reg.gauge_add("cluster.queue_depth", "", 0, -1);
            assert_eq!(reg.gauge("cluster.queue_depth", "", 0), 3);
            reg.observe("storage.lock_wait", "", 2, Duration::from_micros(640));
            let snap = reg.snapshot();
            assert_eq!(snap.counter_total("net.messages"), 6);
            assert_eq!(
                snap.get("cluster.queue_depth", "", 0),
                Some(&MetricValue::Gauge(3))
            );
            match snap.get("storage.lock_wait", "", 2) {
                Some(MetricValue::Histogram { count: 1, .. }) => {}
                other => panic!("unexpected histogram value: {other:?}"),
            }
        });
    }

    #[test]
    fn snapshots_are_sorted_and_timestamped() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let reg = MetricsRegistry::new();
            // Insert in shuffled order; snapshot must come out sorted so
            // exports never depend on hash-map iteration order.
            reg.counter_add("z.last", "", 9, 1);
            reg.counter_add("a.first", "b", 1, 1);
            reg.counter_add("a.first", "a", 2, 1);
            reg.snapshot_to_timeline();
            sleep(Duration::from_millis(5)).await;
            reg.counter_add("z.last", "", 9, 1);
            let snap = reg.snapshot_to_timeline();
            let keys: Vec<MetricKey> = snap.entries.iter().map(|(k, _)| *k).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
            let timeline = reg.timeline();
            assert_eq!(timeline.len(), 2);
            assert_eq!(
                timeline[1].at.duration_since(timeline[0].at),
                Duration::from_millis(5)
            );
            assert!(snap.render().contains("z.last{9} 2"));
            assert!(snap.render().contains("a.first{a,2} 1"));
        });
    }
}
