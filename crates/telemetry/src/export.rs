//! Chrome-trace (Perfetto-compatible) JSON export.
//!
//! The emitted file loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>: each simulated node class becomes a process
//! (clients, middlewares, data sources, control plane), each node an
//! individual thread, and each span an `"X"` complete event stamped in
//! virtual microseconds. The JSON is hand-rolled — the build environment is
//! offline, so no serde — and fully deterministic: spans appear in program
//! order and metadata rows in sorted node order.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::span::{Span, TraceNode};

/// Render spans as a Chrome-trace JSON document.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");

    // Process/thread naming metadata, in sorted node order.
    let mut nodes: Vec<TraceNode> = spans.iter().map(|s| s.id.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut first = true;
    let mut named_classes: Vec<u32> = Vec::new();
    for node in &nodes {
        let pid = node.class.rank();
        if !named_classes.contains(&pid) {
            named_classes.push(pid);
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                node.class.group_name()
            );
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_sort_index\",\
                 \"args\":{{\"sort_index\":{pid}}}}}"
            );
        }
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{node}\"}}}}",
            node.index
        );
    }

    // One complete event per span, in program (deterministic) order.
    for span in spans {
        sep(&mut out, &mut first);
        let parent = match span.parent {
            Some(p) => format!("\"{p}\""),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"id\":\"{}\",\
             \"gtrid\":{},\"arg\":{},\"parent\":{parent}}}}}",
            span.id.node.class.rank(),
            span.id.node.index,
            span.start.as_micros(),
            span.duration_micros(),
            span.kind.label(),
            span.kind.label(),
            span.id,
            span.id.gtrid,
            span.arg,
        );
    }

    out.push_str("]}");
    out
}

/// Write spans to `path` as Chrome-trace JSON, creating parent directories.
pub fn write_chrome_trace(path: &Path, spans: &[Span]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, chrome_trace_json(spans))
}

/// Render a metrics timeline (snapshots recorded with
/// [`crate::MetricsRegistry::snapshot_to_timeline`]) as CSV — long format,
/// one row per `(snapshot, metric)`, ready for a spreadsheet or a plotting
/// script. Counters and gauges fill `value`; histograms fill `value` with
/// the sample count plus `mean_us`/`p99_us`. Snapshots are already
/// key-sorted, so the bytes are deterministic.
pub fn metrics_timeline_csv(timeline: &[crate::MetricsSnapshot]) -> String {
    use crate::MetricValue;
    let mut out = String::from("at_us,name,label,index,kind,value,mean_us,p99_us\n");
    for snap in timeline {
        let at = snap.at.as_micros();
        for ((name, label, index), value) in &snap.entries {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{at},{name},{label},{index},counter,{c},,");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{at},{name},{label},{index},gauge,{g},,");
                }
                MetricValue::Histogram { count, mean, p99 } => {
                    let _ = writeln!(
                        out,
                        "{at},{name},{label},{index},histogram,{count},{},{}",
                        mean.as_micros(),
                        p99.as_micros()
                    );
                }
            }
        }
    }
    out
}

/// Write a metrics-timeline CSV (see [`metrics_timeline_csv`]).
pub fn write_metrics_timeline_csv(
    path: &Path,
    timeline: &[crate::MetricsSnapshot],
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, metrics_timeline_csv(timeline))
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use crate::tracer::Tracer;
    use geotp_simrt::{sleep, Runtime};
    use std::time::Duration;

    #[test]
    fn export_is_deterministic_and_structurally_sound() {
        let render = || {
            let mut rt = Runtime::new();
            rt.block_on(async {
                let tracer = Tracer::new();
                let root = tracer.start_root(5, TraceNode::middleware(1), SpanKind::Txn, 0);
                let exec = tracer.start_scoped_under(
                    5,
                    TraceNode::data_source(2),
                    SpanKind::AgentExec,
                    0,
                    Some(root),
                );
                sleep(Duration::from_micros(75)).await;
                tracer.end(exec);
                tracer.end(root);
                let json = chrome_trace_json(&tracer.spans());
                json
            })
        };
        let json = render();
        assert_eq!(json, render(), "export must be byte-identical across runs");
        // Structural spot-checks (no JSON parser available offline).
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\",\"args\":{\"name\":\"middlewares\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"ds2\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":75"));
        assert!(json.contains("\"parent\":\"5/dm1#0\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // Balanced braces — cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
