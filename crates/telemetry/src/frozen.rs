//! Cross-shard telemetry: `Send` collector snapshots and their
//! deterministic merge.
//!
//! Collectors themselves are thread-local `Rc` structures — on a
//! multi-worker runtime each shard thread records into its own — so after a
//! sharded run the per-shard data must be brought back together. The merge
//! is *canonical*: spans are re-sorted by `(start, gtrid, node, seq)` and
//! re-slotted in that order, parents are re-resolved by stable triple, and
//! metrics fold commutatively (counters and gauges sum, histograms merge
//! bucket-wise). The merged artifact is therefore a pure function of what
//! was recorded, independent of how nodes were laid out across shards or
//! threads — the same property the runtime guarantees for schedules,
//! extended to observability.

use std::collections::BTreeMap;
use std::sync::Mutex;

use geotp_simrt::hash::FxHashMap;
use geotp_simrt::SimInstant;

use crate::histogram::Histogram;
use crate::registry::{MetricKey, MetricValue, MetricsSnapshot};
use crate::span::{Span, SpanId, TraceNode};
use crate::Telemetry;

/// A `Send` snapshot of one collector's contents.
#[derive(Default, Clone)]
pub struct FrozenTelemetry {
    /// Recorded spans. In a freshly frozen collector these are in that
    /// collector's storage order; after [`FrozenTelemetry::merge`] they are
    /// in canonical `(start, gtrid, node, seq)` order with canonical slots.
    pub spans: Vec<Span>,
    /// Counter totals, key-sorted.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge levels, key-sorted.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histograms, key-sorted.
    pub histograms: Vec<(MetricKey, Histogram)>,
}

impl Telemetry {
    /// Freeze this collector into its `Send` form.
    pub fn freeze(&self) -> FrozenTelemetry {
        let (counters, gauges, histograms) = self.metrics.dump();
        FrozenTelemetry {
            spans: self.tracer.spans().clone(),
            counters,
            gauges,
            histograms,
        }
    }
}

impl FrozenTelemetry {
    /// Merge snapshots into one canonical artifact. Counters and gauges sum
    /// per key (partition instrumentation by `index` if per-shard levels
    /// must stay distinguishable), histograms merge bucket-wise, and spans
    /// are re-sorted and re-slotted canonically, so any partition of the
    /// same recorded work merges to identical bytes.
    pub fn merge(parts: impl IntoIterator<Item = FrozenTelemetry>) -> FrozenTelemetry {
        let mut spans: Vec<Span> = Vec::new();
        let mut counters: BTreeMap<MetricKey, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<MetricKey, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<MetricKey, Histogram> = BTreeMap::new();
        for part in parts {
            spans.extend(part.spans);
            for (key, value) in part.counters {
                *counters.entry(key).or_insert(0) += value;
            }
            for (key, value) in part.gauges {
                *gauges.entry(key).or_insert(0) += value;
            }
            for (key, value) in part.histograms {
                histograms.entry(key).or_default().merge(&value);
            }
        }
        spans.sort_unstable_by_key(|s| (s.start, s.id.gtrid, s.id.node, s.id.seq));
        // Canonical slots: position in sorted order. Parents re-resolve by
        // stable triple; a parent outside the merged set (evicted by a
        // retention cap, or recorded on an undeposited collector) keeps its
        // triple but gets the orphan slot, so equality never depends on a
        // dead collector's storage layout.
        let mut slot_of: FxHashMap<(u64, TraceNode, u32), u32> = FxHashMap::default();
        for (idx, span) in spans.iter().enumerate() {
            slot_of.insert((span.id.gtrid, span.id.node, span.id.seq), idx as u32);
        }
        for (idx, span) in spans.iter_mut().enumerate() {
            span.id = SpanId::new(span.id.gtrid, span.id.node, span.id.seq, idx as u32);
            if let Some(parent) = span.parent {
                let slot = slot_of
                    .get(&(parent.gtrid, parent.node, parent.seq))
                    .copied()
                    .unwrap_or(u32::MAX);
                span.parent = Some(SpanId::new(parent.gtrid, parent.node, parent.seq, slot));
            }
        }
        FrozenTelemetry {
            spans,
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }

    /// Total across all counters with this name, any label/index.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _, _), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Render the metrics as a [`MetricsSnapshot`] (timestamped zero: the
    /// merge happens after `block_on`, outside any virtual clock).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(MetricKey, MetricValue)> = Vec::new();
        for (key, value) in &self.counters {
            entries.push((*key, MetricValue::Counter(*value)));
        }
        for (key, value) in &self.gauges {
            entries.push((*key, MetricValue::Gauge(*value)));
        }
        for (key, hist) in &self.histograms {
            entries.push((
                *key,
                MetricValue::Histogram {
                    count: hist.count(),
                    mean: hist.mean(),
                    p99: hist.percentile(99.0),
                },
            ));
        }
        entries.sort_by_key(|(key, _)| *key);
        MetricsSnapshot {
            at: SimInstant::from_micros(0),
            entries,
        }
    }
}

/// A deposit point for per-shard collectors, shared across shard threads
/// (`Arc<ShardTelemetry>`). Each depositor — typically one per topology
/// node, from the task that owns that node's instrumentation — freezes its
/// collector under a caller-chosen slot; [`ShardTelemetry::merged`] then
/// folds the deposits in slot order. Because the merge is canonical, the
/// result is byte-identical at every worker count as long as the slots
/// partition the instrumentation the same way.
#[derive(Default)]
pub struct ShardTelemetry {
    slots: Mutex<BTreeMap<u32, FrozenTelemetry>>,
}

impl ShardTelemetry {
    /// An empty deposit point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze `telemetry` under `slot`. Panics if the slot was already
    /// deposited — each partition of the instrumentation deposits once.
    pub fn deposit(&self, slot: u32, telemetry: &Telemetry) {
        let mut slots = self.slots.lock().unwrap();
        let previous = slots.insert(slot, telemetry.freeze());
        assert!(
            previous.is_none(),
            "telemetry slot {slot} deposited twice — each shard/node partition \
             must deposit exactly once"
        );
    }

    /// Number of deposits so far.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether nothing has been deposited.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge every deposit into the canonical run artifact.
    pub fn merged(&self) -> FrozenTelemetry {
        FrozenTelemetry::merge(self.slots.lock().unwrap().values().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanKind, TraceNode};

    #[test]
    fn merge_is_independent_of_partitioning() {
        let mut rt = geotp_simrt::Runtime::new();
        rt.block_on(async {
            let record = |t: &Telemetry, gtrid: u64| {
                let node = TraceNode::middleware(gtrid as u32);
                let root = t.tracer.start_root(gtrid, node, SpanKind::Txn, 0);
                let leaf = t.tracer.start_leaf(gtrid, node, SpanKind::Analysis, 1);
                t.tracer.end(leaf);
                t.tracer.end(root);
                t.metrics.counter_add("txn.committed", "", 0, 1);
                t.metrics
                    .observe("lat", "", 0, std::time::Duration::from_micros(50 * gtrid));
            };
            // Same work recorded as one collector vs split across two.
            let all = Telemetry::new();
            record(&all, 1);
            record(&all, 2);
            let left = Telemetry::new();
            let right = Telemetry::new();
            record(&left, 1);
            record(&right, 2);

            let one = FrozenTelemetry::merge([all.freeze()]);
            let split = ShardTelemetry::new();
            split.deposit(0, &left);
            split.deposit(1, &right);
            let two = split.merged();

            assert_eq!(one.spans, two.spans);
            assert_eq!(one.counters, two.counters);
            assert_eq!(one.gauges, two.gauges);
            assert_eq!(one.counter_total("txn.committed"), 2);
            assert_eq!(
                one.metrics_snapshot().render(),
                two.metrics_snapshot().render()
            );
        });
    }

    #[test]
    fn duplicate_deposit_slot_panics() {
        let shard = ShardTelemetry::new();
        shard.deposit(3, &Telemetry::new());
        assert_eq!(shard.len(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shard.deposit(3, &Telemetry::new());
        }));
        assert!(result.is_err());
    }
}
