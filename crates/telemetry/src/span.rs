//! Span identity and the span taxonomy.
//!
//! Span identity is the stable triple `(gtrid, node, seq)`: the global
//! transaction id the span belongs to, the simulated node the work happened
//! on, and a per-`(gtrid, node)` sequence number allocated in program order.
//! Because the whole simulation is deterministic, the same seed and schedule
//! produce the same triples on every replay — traces are bit-reproducible.

use std::fmt;

use geotp_simrt::SimInstant;

/// The class of a simulated node, mirroring `geotp_net::NodeKind` (telemetry
/// sits *below* the network crate in the dependency graph, so it keeps its
/// own copy of the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeClass {
    /// A client terminal.
    Client,
    /// A middleware / coordinator instance.
    Middleware,
    /// A data source (storage engine + geo-agent).
    DataSource,
    /// The control plane (membership, supervisor).
    Control,
}

impl NodeClass {
    /// Short prefix used in display form (matches `geotp_net::NodeId`).
    pub fn prefix(self) -> &'static str {
        match self {
            NodeClass::Client => "client",
            NodeClass::Middleware => "dm",
            NodeClass::DataSource => "ds",
            NodeClass::Control => "ctl",
        }
    }

    /// Human-readable process-group name for trace export.
    pub fn group_name(self) -> &'static str {
        match self {
            NodeClass::Client => "clients",
            NodeClass::Middleware => "middlewares",
            NodeClass::DataSource => "data sources",
            NodeClass::Control => "control plane",
        }
    }

    /// Stable small integer used as the export process id.
    pub fn rank(self) -> u32 {
        match self {
            NodeClass::Client => 1,
            NodeClass::Middleware => 2,
            NodeClass::DataSource => 3,
            NodeClass::Control => 4,
        }
    }
}

/// Identity of a simulated node inside a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceNode {
    /// The node class.
    pub class: NodeClass,
    /// Index within the class.
    pub index: u32,
}

impl TraceNode {
    /// A client node.
    pub const fn client(index: u32) -> Self {
        Self {
            class: NodeClass::Client,
            index,
        }
    }

    /// A middleware node.
    pub const fn middleware(index: u32) -> Self {
        Self {
            class: NodeClass::Middleware,
            index,
        }
    }

    /// A data-source node.
    pub const fn data_source(index: u32) -> Self {
        Self {
            class: NodeClass::DataSource,
            index,
        }
    }

    /// A control-plane node.
    pub const fn control(index: u32) -> Self {
        Self {
            class: NodeClass::Control,
            index,
        }
    }
}

impl fmt::Display for TraceNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

/// Stable span identity: `(gtrid, node, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId {
    /// Global transaction id the span belongs to.
    pub gtrid: u64,
    /// The node the work ran on.
    pub node: TraceNode,
    /// Per-`(gtrid, node)` sequence number, allocated in program order.
    pub seq: u32,
    /// Storage slot in the owning tracer. Identity is still the triple —
    /// within one tracer the slot is a pure function of it — but carrying it
    /// makes closing a span O(1) instead of a per-transaction index lookup.
    slot: u32,
}

impl SpanId {
    pub(crate) fn new(gtrid: u64, node: TraceNode, seq: u32, slot: u32) -> Self {
        Self {
            gtrid,
            node,
            seq,
            slot,
        }
    }

    pub(crate) fn slot(self) -> u32 {
        self.slot
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}#{}", self.gtrid, self.node, self.seq)
    }
}

/// The span taxonomy: every phase a transaction can spend time in, across
/// every tier of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Root span: the transaction's whole life at its coordinator.
    Txn,
    /// The session front door's `begin` handshake.
    SessionBegin,
    /// Waiting in a coordinator's bounded admission queue.
    Admission,
    /// Parse/route/schedule work at the middleware.
    Analysis,
    /// One statement round at the coordinator: scheduling, WAN dispatch and
    /// waiting for every touched data source.
    Round,
    /// A geo-agent executing one statement batch.
    AgentExec,
    /// A storage-engine lock-queue wait.
    LockWait,
    /// A geo-agent preparing a branch (decentralized or explicit XA).
    Prepare,
    /// The coordinator waiting for prepare votes after the client's commit.
    VoteWait,
    /// Flushing the commit/abort decision to the commit log.
    LogFlush,
    /// Dispatching the durable decision and collecting acknowledgements.
    CommitDispatch,
    /// Dispatching rollbacks after an abort decision.
    RollbackDispatch,
    /// Failure recovery finishing an in-doubt branch (restart or peer
    /// takeover — adoption spans attach to the *original* gtrid's trace).
    Recovery,
}

/// Every span kind, in severity-neutral declaration order (used for
/// deterministic report rows).
pub const SPAN_KINDS: [SpanKind; 13] = [
    SpanKind::Txn,
    SpanKind::SessionBegin,
    SpanKind::Admission,
    SpanKind::Analysis,
    SpanKind::Round,
    SpanKind::AgentExec,
    SpanKind::LockWait,
    SpanKind::Prepare,
    SpanKind::VoteWait,
    SpanKind::LogFlush,
    SpanKind::CommitDispatch,
    SpanKind::RollbackDispatch,
    SpanKind::Recovery,
];

impl SpanKind {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Txn => "txn",
            SpanKind::SessionBegin => "session_begin",
            SpanKind::Admission => "admission",
            SpanKind::Analysis => "analysis",
            SpanKind::Round => "round",
            SpanKind::AgentExec => "agent_exec",
            SpanKind::LockWait => "lock_wait",
            SpanKind::Prepare => "prepare",
            SpanKind::VoteWait => "vote_wait",
            SpanKind::LogFlush => "log_flush",
            SpanKind::CommitDispatch => "commit_dispatch",
            SpanKind::RollbackDispatch => "rollback_dispatch",
            SpanKind::Recovery => "recovery",
        }
    }

    /// Index into [`SPAN_KINDS`]-shaped accumulation arrays.
    pub fn ordinal(self) -> usize {
        SPAN_KINDS.iter().position(|k| *k == self).unwrap()
    }
}

/// One recorded span. `end == start` until [`crate::Tracer::end`] closes it;
/// spans still open when a trace is exported render as zero-length markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stable identity.
    pub id: SpanId,
    /// The parent span, if any (cross-node parents ride message metadata).
    pub parent: Option<SpanId>,
    /// What phase this span covers.
    pub kind: SpanKind,
    /// Kind-specific argument (round index, data-source index, key row, …).
    pub arg: u64,
    /// Virtual start instant.
    pub start: SimInstant,
    /// Virtual end instant.
    pub end: SimInstant,
}

impl Span {
    /// Span duration in virtual microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.end.as_micros().saturating_sub(self.start.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_matches_net_conventions() {
        assert_eq!(TraceNode::client(0).to_string(), "client0");
        assert_eq!(TraceNode::middleware(1).to_string(), "dm1");
        assert_eq!(TraceNode::data_source(3).to_string(), "ds3");
        assert_eq!(TraceNode::control(0).to_string(), "ctl0");
    }

    #[test]
    fn kind_ordinals_are_dense_and_stable() {
        for (i, kind) in SPAN_KINDS.iter().enumerate() {
            assert_eq!(kind.ordinal(), i);
        }
        assert_eq!(SpanKind::Txn.label(), "txn");
        assert_eq!(SpanKind::Recovery.label(), "recovery");
    }
}
