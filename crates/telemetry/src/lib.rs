//! # geotp-telemetry
//!
//! Deterministic observability for the GeoTP simulation: distributed
//! tracing, a unified metrics registry, critical-path analysis and
//! Chrome-trace/Perfetto export.
//!
//! ## Design rules
//!
//! * **Zero schedule perturbation.** Nothing in this crate consumes
//!   randomness, sleeps, spawns or otherwise touches the discrete-event
//!   scheduler — it only reads the virtual clock and appends to in-memory
//!   structures. Replay fingerprints are therefore byte-identical with
//!   telemetry installed or not (a golden test in `geotp-chaos` proves it).
//! * **Deterministic output.** Span identity is the stable triple
//!   `(gtrid, node, seq)`; spans are stored in program order; metric
//!   snapshots and trace exports sort before emitting. Same seed, same
//!   bytes.
//! * **Bottom of the dependency graph.** Only `geotp-simrt` sits below this
//!   crate, so every tier (net, storage, datasource, middleware, cluster,
//!   workloads, chaos) can report into one registry and one tracer.
//!
//! ## Usage
//!
//! Telemetry is *installed* per scenario rather than threaded through
//! constructors: [`install`] sets a thread-local collector and the free
//! functions ([`span_root`], [`counter_add`], [`observe`], …) become live;
//! without an install they are no-ops costing one thread-local read.
//!
//! ```
//! use geotp_telemetry as telemetry;
//! use telemetry::{SpanKind, TraceNode};
//!
//! let mut rt = geotp_simrt::Runtime::new();
//! rt.block_on(async {
//!     let session = telemetry::install();
//!     let span = telemetry::span_root(42, TraceNode::middleware(0), SpanKind::Txn, 0);
//!     telemetry::counter_add("net.messages", "", 0, 1);
//!     telemetry::span_end(span);
//!     let t = telemetry::uninstall().unwrap();
//!     assert_eq!(t.tracer.len(), 1);
//! });
//! ```

mod auto_deposit;
mod critical_path;
mod export;
mod frozen;
mod histogram;
mod registry;
mod span;
mod tracer;

pub use auto_deposit::RuntimeBuilderTelemetryExt;
pub use critical_path::{aggregate_critical_path, critical_path, CriticalPath};
pub use export::{
    chrome_trace_json, metrics_timeline_csv, write_chrome_trace, write_metrics_timeline_csv,
};
pub use frozen::{FrozenTelemetry, ShardTelemetry};
pub use histogram::Histogram;
pub use registry::{MetricKey, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use span::{NodeClass, Span, SpanId, SpanKind, TraceNode, SPAN_KINDS};
pub use tracer::Tracer;

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// One telemetry collection session: a tracer plus a metrics registry.
#[derive(Default)]
pub struct Telemetry {
    /// The span recorder.
    pub tracer: Tracer,
    /// The unified metrics registry.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// A fresh, empty collector.
    pub fn new() -> Rc<Self> {
        Rc::new(Self::default())
    }

    /// A collector whose tracer retains at most `cap` spans (per-gtrid
    /// eviction — see [`Tracer::set_span_cap`]). For long-running drills
    /// where an unbounded trace would dominate memory.
    pub fn with_span_cap(cap: usize) -> Rc<Self> {
        Rc::new(Self {
            tracer: Tracer::with_span_cap(cap),
            metrics: MetricsRegistry::new(),
        })
    }
}

thread_local! {
    static INSTALLED: RefCell<Option<Rc<Telemetry>>> = const { RefCell::new(None) };
}

/// Install a fresh collector and return it. Replaces any previous install
/// (the simulation is single-threaded, so "thread-local" means "global to
/// the run").
pub fn install() -> Rc<Telemetry> {
    let t = Telemetry::new();
    install_collector(t.clone());
    t
}

/// Install a fresh collector whose tracer retains at most `cap` spans (see
/// [`Tracer::set_span_cap`]) and return it.
pub fn install_with_span_cap(cap: usize) -> Rc<Telemetry> {
    let t = Telemetry::with_span_cap(cap);
    install_collector(t.clone());
    t
}

/// Install a specific collector (e.g. to resume accumulating into one that
/// was uninstalled earlier).
pub fn install_collector(t: Rc<Telemetry>) {
    INSTALLED.with(|cell| *cell.borrow_mut() = Some(t));
}

/// Remove and return the installed collector, disabling all free functions.
pub fn uninstall() -> Option<Rc<Telemetry>> {
    INSTALLED.with(|cell| cell.borrow_mut().take())
}

/// Whether a collector is currently installed.
pub fn enabled() -> bool {
    INSTALLED.with(|cell| cell.borrow().is_some())
}

/// The installed collector, if any.
pub fn installed() -> Option<Rc<Telemetry>> {
    INSTALLED.with(|cell| cell.borrow().clone())
}

/// Run `f` against the installed collector; `None` (and no call) when
/// telemetry is off.
pub fn with<T>(f: impl FnOnce(&Telemetry) -> T) -> Option<T> {
    INSTALLED.with(|cell| cell.borrow().as_ref().map(|t| f(t)))
}

// ---------------------------------------------------------------------------
// Free instrumentation helpers: no-ops when no collector is installed, so
// call sites across the tier never need a telemetry handle in scope.
// ---------------------------------------------------------------------------

/// Start a root span (see [`Tracer::start_root`]).
pub fn span_root(gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> Option<SpanId> {
    with(|t| t.tracer.start_root(gtrid, node, kind, arg))
}

/// Start a root span backdated to `start` (see [`Tracer::start_root_at`]).
pub fn span_root_at(
    gtrid: u64,
    node: TraceNode,
    kind: SpanKind,
    arg: u64,
    start: geotp_simrt::SimInstant,
) -> Option<SpanId> {
    with(|t| t.tracer.start_root_at(gtrid, node, kind, arg, start))
}

/// Record an already-finished leaf span covering `[start, now()]` (see
/// [`Tracer::leaf_closed`]).
pub fn span_leaf_closed(
    gtrid: u64,
    node: TraceNode,
    kind: SpanKind,
    arg: u64,
    start: geotp_simrt::SimInstant,
) -> Option<SpanId> {
    with(|t| t.tracer.leaf_closed(gtrid, node, kind, arg, start))
}

/// Record an already-finished leaf span with an explicit window (see
/// [`Tracer::leaf_window`]).
pub fn span_leaf_window(
    gtrid: u64,
    node: TraceNode,
    kind: SpanKind,
    arg: u64,
    start: geotp_simrt::SimInstant,
    end: geotp_simrt::SimInstant,
) -> Option<SpanId> {
    with(|t| t.tracer.leaf_window(gtrid, node, kind, arg, start, end))
}

/// Close every open scoped span of `(gtrid, node)` (see [`Tracer::end_all`]).
pub fn span_end_all(gtrid: u64, node: TraceNode) {
    with(|t| t.tracer.end_all(gtrid, node));
}

/// Start a scoped span under the innermost open span (see
/// [`Tracer::start_scoped`]).
pub fn span_scoped(gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> Option<SpanId> {
    with(|t| t.tracer.start_scoped(gtrid, node, kind, arg))
}

/// Start a scoped span under an explicit (possibly cross-node) parent.
pub fn span_scoped_under(
    gtrid: u64,
    node: TraceNode,
    kind: SpanKind,
    arg: u64,
    parent: Option<SpanId>,
) -> Option<SpanId> {
    with(|t| t.tracer.start_scoped_under(gtrid, node, kind, arg, parent))
}

/// Start a leaf span under the innermost open span.
pub fn span_leaf(gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> Option<SpanId> {
    with(|t| t.tracer.start_leaf(gtrid, node, kind, arg))
}

/// Start a leaf span under an explicit parent.
pub fn span_leaf_under(
    gtrid: u64,
    node: TraceNode,
    kind: SpanKind,
    arg: u64,
    parent: Option<SpanId>,
) -> Option<SpanId> {
    with(|t| t.tracer.start_leaf_under(gtrid, node, kind, arg, parent))
}

/// Close a span produced by one of the `span_*` helpers. Accepts the
/// `Option` those helpers return so call sites stay unconditional.
pub fn span_end(id: Option<SpanId>) {
    if let Some(id) = id {
        with(|t| t.tracer.end(id));
    }
}

/// The innermost open scoped span for `(gtrid, node)` — used to hand a
/// parent across a message boundary.
pub fn current_span(gtrid: u64, node: TraceNode) -> Option<SpanId> {
    with(|t| t.tracer.current(gtrid, node)).flatten()
}

/// Add to a counter (see [`MetricsRegistry::counter_add`]).
pub fn counter_add(name: &'static str, label: &'static str, index: u32, delta: u64) {
    with(|t| t.metrics.counter_add(name, label, index, delta));
}

/// Set a gauge level (see [`MetricsRegistry::gauge_set`]).
pub fn gauge_set(name: &'static str, label: &'static str, index: u32, level: i64) {
    with(|t| t.metrics.gauge_set(name, label, index, level));
}

/// Adjust a gauge by a delta (see [`MetricsRegistry::gauge_add`]).
pub fn gauge_add(name: &'static str, label: &'static str, index: u32, delta: i64) {
    with(|t| t.metrics.gauge_add(name, label, index, delta));
}

/// Record a histogram sample (see [`MetricsRegistry::observe`]).
pub fn observe(name: &'static str, label: &'static str, index: u32, sample: Duration) {
    with(|t| t.metrics.observe(name, label, index, sample));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_helpers_are_noops_without_an_install() {
        uninstall();
        assert!(!enabled());
        assert!(span_root(1, TraceNode::client(0), SpanKind::Txn, 0).is_none());
        counter_add("x", "", 0, 1); // must not panic
        span_end(None);
        assert!(with(|_| ()).is_none());
    }

    #[test]
    fn install_routes_helpers_into_the_collector() {
        let mut rt = geotp_simrt::Runtime::new();
        rt.block_on(async {
            let t = install();
            let span = span_root(3, TraceNode::middleware(0), SpanKind::Txn, 0);
            assert!(span.is_some());
            counter_add("net.messages", "", 0, 2);
            observe("lat", "", 0, Duration::from_micros(10));
            span_end(span);
            let back = uninstall().expect("collector was installed");
            assert!(Rc::ptr_eq(&t, &back));
            assert_eq!(back.tracer.len(), 1);
            assert_eq!(back.metrics.counter("net.messages", "", 0), 2);
            assert!(!enabled());
            // Reinstalling the same collector resumes accumulation.
            install_collector(back);
            counter_add("net.messages", "", 0, 1);
            assert_eq!(
                uninstall().unwrap().metrics.counter("net.messages", "", 0),
                3
            );
        });
    }
}
