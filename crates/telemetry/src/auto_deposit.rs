//! Auto-deposit of per-shard collectors at runtime teardown.
//!
//! Multi-shard instrumented runs used to thread a collector into every
//! `spawn_node` closure and deposit it explicitly before the run ended.
//! [`RuntimeBuilderTelemetryExt`] removes that boilerplate: it registers a
//! per-shard lifecycle scope on the [`RuntimeBuilder`] that installs a fresh
//! thread-local collector when each shard thread starts (so the free
//! instrumentation helpers are live on every shard) and deposits it into a
//! shared [`ShardTelemetry`] sink when the shard's event loop tears down.
//! After `block_on` returns, `sink.merged()` is the canonical run artifact —
//! byte-identical at every worker count.
//!
//! Any collector that was already installed on a thread (e.g. the chaos
//! harness's) is saved on enter and restored on teardown, mirroring
//! `traced_into`'s save/restore discipline.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use geotp_simrt::RuntimeBuilder;

use crate::{ShardTelemetry, Telemetry};

thread_local! {
    /// Collectors displaced by a shard enter, restored at teardown. A stack,
    /// because nothing stops two scopes from being registered on one builder.
    static SAVED: RefCell<Vec<Option<Rc<Telemetry>>>> = const { RefCell::new(Vec::new()) };
}

/// Wires per-shard telemetry collection into a [`RuntimeBuilder`]: every
/// shard gets its own thread-local collector for the duration of the run,
/// and each is deposited into `sink` (slot = shard index) at teardown.
/// Runtimes using this must be driven by a single `block_on` call (a second
/// run would deposit the same slots twice).
pub trait RuntimeBuilderTelemetryExt {
    /// Collect with unbounded span retention.
    fn collect_telemetry(self, sink: &Arc<ShardTelemetry>) -> Self;
    /// Collect with per-shard tracers capped at `cap` retained spans (see
    /// [`crate::Tracer::set_span_cap`]).
    fn collect_telemetry_capped(self, sink: &Arc<ShardTelemetry>, cap: usize) -> Self;
}

impl RuntimeBuilderTelemetryExt for RuntimeBuilder {
    fn collect_telemetry(self, sink: &Arc<ShardTelemetry>) -> Self {
        wire(self, Arc::clone(sink), None)
    }

    fn collect_telemetry_capped(self, sink: &Arc<ShardTelemetry>, cap: usize) -> Self {
        wire(self, Arc::clone(sink), Some(cap))
    }
}

fn wire(builder: RuntimeBuilder, sink: Arc<ShardTelemetry>, cap: Option<usize>) -> RuntimeBuilder {
    builder.shard_scope(
        move |_shard| {
            SAVED.with(|saved| saved.borrow_mut().push(crate::uninstall()));
            match cap {
                Some(cap) => drop(crate::install_with_span_cap(cap)),
                None => drop(crate::install()),
            }
        },
        move |shard| {
            let t = crate::uninstall().expect("shard collector installed at enter");
            sink.deposit(shard, &t);
            if let Some(prev) = SAVED.with(|saved| saved.borrow_mut().pop()).flatten() {
                crate::install_collector(prev);
            }
        },
    )
}
