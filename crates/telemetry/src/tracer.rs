//! The deterministic tracer: records span trees stamped with virtual time.
//!
//! The tracer **never consumes randomness and never sleeps** — it only reads
//! the virtual clock and appends to in-memory vectors — so installing it
//! cannot perturb schedules: replay fingerprints are byte-identical with
//! tracing on or off (proved by a golden test in `geotp-chaos`).
//!
//! Internals are built for the hot path: one `RefCell` guards everything,
//! per-`(gtrid, node)` state is a fixed-size record (no per-transaction
//! allocations), and the open-scope stack is threaded *intrusively* through
//! the span storage (`open_prev` links), so starting or ending a span is one
//! hash lookup plus array writes.

use std::cell::{Ref, RefCell};

use geotp_simrt::hash::FxHashMap;
use geotp_simrt::now;

use crate::span::{Span, SpanId, SpanKind, TraceNode};

/// "No span" sentinel for the intrusive open-stack links.
const NONE: u32 = u32::MAX;
/// Link value for spans that were never on the open stack (leaves): lets
/// [`Tracer::end`] skip stack maintenance without a chain walk.
const NOT_SCOPED: u32 = u32::MAX - 1;

/// How a new span finds its parent.
enum Parent {
    /// Use this id (or none), as handed across a message boundary.
    Explicit(Option<SpanId>),
    /// The innermost open scoped span of the same `(gtrid, node)`.
    Stack,
}

/// Per-`(gtrid, node)` bookkeeping: a fixed-size record, so creating it
/// never allocates. The open-scope stack lives in `Inner::open_prev`.
struct TxnTrace {
    /// Next sequence number to allocate.
    next_seq: u32,
    /// Span-storage index of the innermost open scoped span ([`NONE`] when
    /// the stack is empty); older entries chain through `Inner::open_prev`.
    open_head: u32,
}

#[derive(Default)]
struct Inner {
    /// All recorded spans, in program (deterministic) order.
    spans: Vec<Span>,
    /// Parallel to `spans`: the open-stack link captured when the span was
    /// pushed — the previous `open_head` for scoped spans, [`NOT_SCOPED`]
    /// for leaves.
    open_prev: Vec<u32>,
    txns: FxHashMap<(u64, TraceNode), TxnTrace>,
}

/// Records spans for every transaction observed while installed.
#[derive(Default)]
pub struct Tracer {
    inner: RefCell<Inner>,
}

impl Tracer {
    /// A fresh, empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        parent: Parent,
        scoped: bool,
        window: Option<(geotp_simrt::SimInstant, Option<geotp_simrt::SimInstant>)>,
    ) -> SpanId {
        let at = now();
        let (start, end) = match window {
            Some((start, end)) => (start, end.unwrap_or(at)),
            None => (at, at),
        };
        let mut inner = self.inner.borrow_mut();
        let Inner {
            spans,
            open_prev,
            txns,
        } = &mut *inner;
        let idx = spans.len() as u32;
        let txn = txns.entry((gtrid, node)).or_insert(TxnTrace {
            next_seq: 0,
            open_head: NONE,
        });
        // Implicit parenting resolves against the same map entry — the hot
        // path pays exactly one hash lookup per span start.
        let parent = match parent {
            Parent::Explicit(p) => p,
            Parent::Stack => spans.get(txn.open_head as usize).map(|s| s.id),
        };
        let id = SpanId::new(gtrid, node, txn.next_seq, idx);
        txn.next_seq += 1;
        if scoped {
            open_prev.push(txn.open_head);
            txn.open_head = idx;
        } else {
            open_prev.push(NOT_SCOPED);
        }
        spans.push(Span {
            id,
            parent,
            kind,
            arg,
            start,
            end,
        });
        id
    }

    /// The innermost open scoped span for `(gtrid, node)`, if any.
    pub fn current(&self, gtrid: u64, node: TraceNode) -> Option<SpanId> {
        let inner = self.inner.borrow();
        let head = inner.txns.get(&(gtrid, node))?.open_head;
        inner.spans.get(head as usize).map(|s| s.id)
    }

    /// Start a root span (no parent). Scoped: later same-`(gtrid, node)`
    /// spans nest under it until it ends.
    pub fn start_root(&self, gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Explicit(None), true, None)
    }

    /// Start a root span backdated to `start`. Needed by instrumentation
    /// points that only learn the transaction id *after* timed work already
    /// happened (the coordinator allocates the gtrid after the analysis
    /// slice).
    pub fn start_root_at(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        start: geotp_simrt::SimInstant,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Explicit(None),
            true,
            Some((start, None)),
        )
    }

    /// Record an already-finished leaf span covering `[start, now()]` under
    /// the current innermost span of `(gtrid, node)`.
    pub fn leaf_closed(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        start: geotp_simrt::SimInstant,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Stack,
            false,
            Some((start, None)),
        )
    }

    /// Record an already-finished leaf span with an explicit `[start, end]`
    /// window, under the current innermost span of `(gtrid, node)`. Used by
    /// instrumentation points that learn the transaction id only after the
    /// timed work happened (the admission queue waits before a gtrid exists).
    pub fn leaf_window(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        start: geotp_simrt::SimInstant,
        end: geotp_simrt::SimInstant,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Stack,
            false,
            Some((start, Some(end))),
        )
    }

    /// Close every open scoped span of `(gtrid, node)`, innermost first, at
    /// the current virtual instant. The single close point for transaction
    /// exit paths (commit, abort, crash, abandon) — whatever is still open
    /// ends when the transaction's outcome is recorded.
    pub fn end_all(&self, gtrid: u64, node: TraceNode) {
        let mut inner = self.inner.borrow_mut();
        let Inner {
            spans,
            open_prev,
            txns,
        } = &mut *inner;
        let Some(txn) = txns.get_mut(&(gtrid, node)) else {
            return;
        };
        if txn.open_head == NONE {
            return;
        }
        let at = now();
        let mut cur = txn.open_head;
        while cur != NONE {
            spans[cur as usize].end = at;
            cur = open_prev[cur as usize];
        }
        txn.open_head = NONE;
    }

    /// Start a scoped span under the current innermost span of
    /// `(gtrid, node)` (root if none is open).
    pub fn start_scoped(&self, gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Stack, true, None)
    }

    /// Start a scoped span under an explicit parent — the cross-node case,
    /// where the parent id rode the message metadata.
    pub fn start_scoped_under(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Explicit(parent), true, None)
    }

    /// Start a leaf span (never a parent itself) under the current innermost
    /// span of `(gtrid, node)`.
    pub fn start_leaf(&self, gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Stack, false, None)
    }

    /// Start a leaf span under an explicit parent.
    pub fn start_leaf_under(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Explicit(parent),
            false,
            None,
        )
    }

    /// Close a span at the current virtual instant.
    pub fn end(&self, id: SpanId) {
        let mut inner = self.inner.borrow_mut();
        let Inner {
            spans,
            open_prev,
            txns,
        } = &mut *inner;
        let idx = id.slot() as usize;
        // Ids carry their storage slot, so closing is O(1); the identity
        // check rejects ids minted by a previously installed tracer.
        let Some(span) = spans.get_mut(idx) else {
            return;
        };
        if span.id != id {
            return;
        }
        span.end = now();
        if open_prev[idx] == NOT_SCOPED {
            return;
        }
        let Some(txn) = txns.get_mut(&(id.gtrid, id.node)) else {
            return;
        };
        if txn.open_head == id.slot() {
            txn.open_head = open_prev[idx];
            return;
        }
        // Out-of-order close (abandon paths): if the span is still on the
        // open chain, drop it and everything opened inside it — those scopes
        // can never close normally.
        let mut cur = txn.open_head;
        while cur != NONE {
            if cur == id.slot() {
                txn.open_head = open_prev[idx];
                return;
            }
            cur = open_prev[cur as usize];
        }
    }

    /// All spans recorded so far, in program (deterministic) order.
    pub fn spans(&self) -> Ref<'_, Vec<Span>> {
        Ref::map(self.inner.borrow(), |inner| &inner.spans)
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spans belonging to one transaction, in program order.
    pub fn spans_for(&self, gtrid: u64) -> Vec<Span> {
        self.inner
            .borrow()
            .spans
            .iter()
            .filter(|s| s.id.gtrid == gtrid)
            .copied()
            .collect()
    }

    /// Every traced gtrid, ascending.
    pub fn gtrids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .borrow()
            .spans
            .iter()
            .map(|s| s.id.gtrid)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::{sleep, Runtime};
    use std::time::Duration;

    #[test]
    fn span_identity_is_stable_per_gtrid_and_node() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(7, dm, SpanKind::Txn, 0);
            assert_eq!(root.seq, 0);
            let child = tracer.start_scoped(7, dm, SpanKind::Analysis, 0);
            assert_eq!(child.seq, 1);
            assert_eq!(
                tracer.spans()[1].parent,
                Some(root),
                "scoped spans nest under the innermost open span"
            );
            sleep(Duration::from_millis(2)).await;
            tracer.end(child);
            tracer.end(root);
            assert_eq!(tracer.spans()[1].duration_micros(), 2_000);
            // A different node gets its own sequence space.
            let ds = TraceNode::data_source(1);
            assert_eq!(tracer.start_root(7, ds, SpanKind::AgentExec, 1).seq, 0);
        });
    }

    #[test]
    fn leaf_spans_do_not_become_parents() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let ds = TraceNode::data_source(0);
            let exec = tracer.start_root(1, ds, SpanKind::AgentExec, 0);
            let wait = tracer.start_leaf(1, ds, SpanKind::LockWait, 42);
            assert_eq!(tracer.spans()[1].parent, Some(exec));
            // A second leaf still parents to the exec span, not the wait.
            let wait2 = tracer.start_leaf(1, ds, SpanKind::LockWait, 43);
            assert_eq!(tracer.spans()[2].parent, Some(exec));
            tracer.end(wait);
            tracer.end(wait2);
            tracer.end(exec);
            assert!(tracer.current(1, ds).is_none());
        });
    }

    #[test]
    fn out_of_order_close_unwinds_the_stack() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(9, dm, SpanKind::Txn, 0);
            let _inner = tracer.start_scoped(9, dm, SpanKind::Round, 0);
            // Abandon path: the root closes while the round is still open.
            tracer.end(root);
            assert!(tracer.current(9, dm).is_none());
        });
    }

    #[test]
    fn end_all_closes_every_open_span_and_later_ends_still_work() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(5, dm, SpanKind::Txn, 0);
            let round = tracer.start_scoped(5, dm, SpanKind::Round, 0);
            sleep(Duration::from_millis(3)).await;
            tracer.end_all(5, dm);
            assert!(tracer.current(5, dm).is_none());
            assert_eq!(tracer.spans()[0].duration_micros(), 3_000);
            assert_eq!(tracer.spans()[1].duration_micros(), 3_000);
            // Ending an already-closed span just restamps its end; ids stay
            // valid after end_all.
            sleep(Duration::from_millis(1)).await;
            tracer.end(round);
            assert_eq!(tracer.spans()[1].duration_micros(), 4_000);
            let _ = root;
        });
    }

    #[test]
    fn stale_ids_from_a_previous_tracer_are_rejected() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let old = Tracer::new();
            let dm = TraceNode::middleware(0);
            let stale = old.start_root(1, dm, SpanKind::Txn, 0);
            let fresh = Tracer::new();
            let root = fresh.start_root(2, dm, SpanKind::Txn, 0);
            sleep(Duration::from_millis(1)).await;
            // Same storage slot, different identity: must not restamp.
            fresh.end(stale);
            assert_eq!(fresh.spans()[0].duration_micros(), 0);
            fresh.end(root);
            assert_eq!(fresh.spans()[0].duration_micros(), 1_000);
        });
    }
}
