//! The deterministic tracer: records span trees stamped with virtual time.
//!
//! The tracer **never consumes randomness and never sleeps** — it only reads
//! the virtual clock and appends to in-memory vectors — so installing it
//! cannot perturb schedules: replay fingerprints are byte-identical with
//! tracing on or off (proved by a golden test in `geotp-chaos`).
//!
//! Internals are built for the hot path: one `RefCell` guards everything,
//! per-`(gtrid, node)` state is a fixed-size record (no per-transaction
//! allocations), and the open-scope stack is threaded *intrusively* through
//! the span storage (`open_prev` links), so starting or ending a span is one
//! hash lookup plus array writes.

use std::cell::{Cell, Ref, RefCell};

use geotp_simrt::hash::{FxHashMap, FxHashSet};
use geotp_simrt::now;

use crate::span::{Span, SpanId, SpanKind, TraceNode};

/// "No span" sentinel for the intrusive open-stack links.
const NONE: u32 = u32::MAX;
/// Link value for spans that were never on the open stack (leaves): lets
/// [`Tracer::end`] skip stack maintenance without a chain walk.
const NOT_SCOPED: u32 = u32::MAX - 1;

/// How a new span finds its parent.
enum Parent {
    /// Use this id (or none), as handed across a message boundary.
    Explicit(Option<SpanId>),
    /// The innermost open scoped span of the same `(gtrid, node)`.
    Stack,
}

/// Per-`(gtrid, node)` bookkeeping: a fixed-size record, so creating it
/// never allocates. The open-scope stack lives in `Inner::open_prev`.
struct TxnTrace {
    /// Next sequence number to allocate.
    next_seq: u32,
    /// Span-storage index of the innermost open scoped span ([`NONE`] when
    /// the stack is empty); older entries chain through `Inner::open_prev`.
    open_head: u32,
}

#[derive(Default)]
struct Inner {
    /// All recorded spans, in program (deterministic) order.
    spans: Vec<Span>,
    /// Parallel to `spans`: the open-stack link captured when the span was
    /// pushed — the previous `open_head` for scoped spans, [`NOT_SCOPED`]
    /// for leaves.
    open_prev: Vec<u32>,
    txns: FxHashMap<(u64, TraceNode), TxnTrace>,
}

/// Records spans for every transaction observed while installed.
#[derive(Default)]
pub struct Tracer {
    inner: RefCell<Inner>,
    /// Optional retention cap on stored spans. `None` (the default) retains
    /// everything — the mode every golden/fingerprint suite runs in.
    cap: Cell<Option<usize>>,
}

impl Tracer {
    /// A fresh, empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracer that retains at most `cap` spans (see [`Tracer::set_span_cap`]).
    pub fn with_span_cap(cap: usize) -> Self {
        let t = Self::default();
        t.set_span_cap(Some(cap));
        t
    }

    /// Bound tracer memory: when more than `cap` spans are stored, whole
    /// *fully-closed* transactions are evicted oldest-first (per-gtrid
    /// retention — a transaction's spans leave together, across nodes) until
    /// the store is back under half the cap. Transactions with any span
    /// still open are never evicted, so a capped long run retains its live
    /// working set plus the most recent completed history. Setting `None`
    /// restores unbounded retention.
    ///
    /// Under a cap, span *storage order* remains deterministic but is no
    /// longer the full program order (evicted prefixes are gone), and
    /// re-closing an already-closed span after an eviction pass is a no-op.
    /// Exports sort before emitting, so capped traces stay stable artifacts.
    pub fn set_span_cap(&self, cap: Option<usize>) {
        self.cap.set(cap);
    }

    /// The configured retention cap, if any.
    pub fn span_cap(&self) -> Option<usize> {
        self.cap.get()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        parent: Parent,
        scoped: bool,
        window: Option<(geotp_simrt::SimInstant, Option<geotp_simrt::SimInstant>)>,
    ) -> SpanId {
        let at = now();
        let (start, end) = match window {
            Some((start, end)) => (start, end.unwrap_or(at)),
            None => (at, at),
        };
        let mut inner = self.inner.borrow_mut();
        let Inner {
            spans,
            open_prev,
            txns,
        } = &mut *inner;
        let idx = spans.len() as u32;
        let txn = txns.entry((gtrid, node)).or_insert(TxnTrace {
            next_seq: 0,
            open_head: NONE,
        });
        // Implicit parenting resolves against the same map entry — the hot
        // path pays exactly one hash lookup per span start.
        let parent = match parent {
            Parent::Explicit(p) => p,
            Parent::Stack => spans.get(txn.open_head as usize).map(|s| s.id),
        };
        let id = SpanId::new(gtrid, node, txn.next_seq, idx);
        txn.next_seq += 1;
        if scoped {
            open_prev.push(txn.open_head);
            txn.open_head = idx;
        } else {
            open_prev.push(NOT_SCOPED);
        }
        spans.push(Span {
            id,
            parent,
            kind,
            arg,
            start,
            end,
        });
        if let Some(cap) = self.cap.get() {
            if spans.len() > cap {
                compact(spans, open_prev, txns, cap, gtrid);
            }
        }
        id
    }

    /// The innermost open scoped span for `(gtrid, node)`, if any.
    pub fn current(&self, gtrid: u64, node: TraceNode) -> Option<SpanId> {
        let inner = self.inner.borrow();
        let head = inner.txns.get(&(gtrid, node))?.open_head;
        inner.spans.get(head as usize).map(|s| s.id)
    }

    /// Start a root span (no parent). Scoped: later same-`(gtrid, node)`
    /// spans nest under it until it ends.
    pub fn start_root(&self, gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Explicit(None), true, None)
    }

    /// Start a root span backdated to `start`. Needed by instrumentation
    /// points that only learn the transaction id *after* timed work already
    /// happened (the coordinator allocates the gtrid after the analysis
    /// slice).
    pub fn start_root_at(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        start: geotp_simrt::SimInstant,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Explicit(None),
            true,
            Some((start, None)),
        )
    }

    /// Record an already-finished leaf span covering `[start, now()]` under
    /// the current innermost span of `(gtrid, node)`.
    pub fn leaf_closed(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        start: geotp_simrt::SimInstant,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Stack,
            false,
            Some((start, None)),
        )
    }

    /// Record an already-finished leaf span with an explicit `[start, end]`
    /// window, under the current innermost span of `(gtrid, node)`. Used by
    /// instrumentation points that learn the transaction id only after the
    /// timed work happened (the admission queue waits before a gtrid exists).
    pub fn leaf_window(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        start: geotp_simrt::SimInstant,
        end: geotp_simrt::SimInstant,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Stack,
            false,
            Some((start, Some(end))),
        )
    }

    /// Close every open scoped span of `(gtrid, node)`, innermost first, at
    /// the current virtual instant. The single close point for transaction
    /// exit paths (commit, abort, crash, abandon) — whatever is still open
    /// ends when the transaction's outcome is recorded.
    pub fn end_all(&self, gtrid: u64, node: TraceNode) {
        let mut inner = self.inner.borrow_mut();
        let Inner {
            spans,
            open_prev,
            txns,
        } = &mut *inner;
        let Some(txn) = txns.get_mut(&(gtrid, node)) else {
            return;
        };
        if txn.open_head == NONE {
            return;
        }
        let at = now();
        let mut cur = txn.open_head;
        while cur != NONE {
            spans[cur as usize].end = at;
            cur = open_prev[cur as usize];
        }
        txn.open_head = NONE;
    }

    /// Start a scoped span under the current innermost span of
    /// `(gtrid, node)` (root if none is open).
    pub fn start_scoped(&self, gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Stack, true, None)
    }

    /// Start a scoped span under an explicit parent — the cross-node case,
    /// where the parent id rode the message metadata.
    pub fn start_scoped_under(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Explicit(parent), true, None)
    }

    /// Start a leaf span (never a parent itself) under the current innermost
    /// span of `(gtrid, node)`.
    pub fn start_leaf(&self, gtrid: u64, node: TraceNode, kind: SpanKind, arg: u64) -> SpanId {
        self.push(gtrid, node, kind, arg, Parent::Stack, false, None)
    }

    /// Start a leaf span under an explicit parent.
    pub fn start_leaf_under(
        &self,
        gtrid: u64,
        node: TraceNode,
        kind: SpanKind,
        arg: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.push(
            gtrid,
            node,
            kind,
            arg,
            Parent::Explicit(parent),
            false,
            None,
        )
    }

    /// Close a span at the current virtual instant.
    pub fn end(&self, id: SpanId) {
        let mut inner = self.inner.borrow_mut();
        let Inner {
            spans,
            open_prev,
            txns,
        } = &mut *inner;
        // Ids carry their storage slot, so closing is normally O(1); the
        // identity check rejects ids minted by a previously installed
        // tracer. Under a retention cap, compaction may have moved an open
        // span, so fall back to resolving the stable `(gtrid, node, seq)`
        // triple along the txn's open chain (closed spans never move while
        // an id to them is still actionable).
        let fast = spans
            .get(id.slot() as usize)
            .is_some_and(|span| span.id == id);
        let idx = if fast {
            id.slot() as usize
        } else {
            let Some(found) = find_open(spans, open_prev, txns, id) else {
                return;
            };
            found
        };
        spans[idx].end = now();
        if open_prev[idx] == NOT_SCOPED {
            return;
        }
        let Some(txn) = txns.get_mut(&(id.gtrid, id.node)) else {
            return;
        };
        if txn.open_head == idx as u32 {
            txn.open_head = open_prev[idx];
            return;
        }
        // Out-of-order close (abandon paths): if the span is still on the
        // open chain, drop it and everything opened inside it — those scopes
        // can never close normally.
        let mut cur = txn.open_head;
        while cur != NONE {
            if cur == idx as u32 {
                txn.open_head = open_prev[idx];
                return;
            }
            cur = open_prev[cur as usize];
        }
    }

    /// All spans recorded so far, in program (deterministic) order.
    pub fn spans(&self) -> Ref<'_, Vec<Span>> {
        Ref::map(self.inner.borrow(), |inner| &inner.spans)
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spans belonging to one transaction, in program order.
    pub fn spans_for(&self, gtrid: u64) -> Vec<Span> {
        self.inner
            .borrow()
            .spans
            .iter()
            .filter(|s| s.id.gtrid == gtrid)
            .copied()
            .collect()
    }

    /// Every *scoped* span still open (started but not yet ended), as stable
    /// ids sorted by `(gtrid, node, seq)`. Leaves are recorded pre-closed
    /// (`end == start`) and never sit on the open stack, so they are not
    /// reported. Open spans pin their transaction against retention
    /// eviction, so the result is exact even under a span cap.
    pub fn open_spans(&self) -> Vec<SpanId> {
        let inner = self.inner.borrow();
        let mut open = Vec::new();
        for txn in inner.txns.values() {
            let mut cur = txn.open_head;
            while cur != NONE {
                open.push(inner.spans[cur as usize].id);
                cur = inner.open_prev[cur as usize];
            }
        }
        open.sort_unstable_by_key(|id| (id.gtrid, id.node, id.seq));
        open
    }

    /// Every traced gtrid, ascending.
    pub fn gtrids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .borrow()
            .spans
            .iter()
            .map(|s| s.id.gtrid)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Resolve a span whose storage slot went stale (retention compaction moved
/// it) by walking the txn's open chain for the stable sequence number.
fn find_open(
    spans: &[Span],
    open_prev: &[u32],
    txns: &FxHashMap<(u64, TraceNode), TxnTrace>,
    id: SpanId,
) -> Option<usize> {
    let txn = txns.get(&(id.gtrid, id.node))?;
    let mut cur = txn.open_head;
    while cur != NONE {
        if spans[cur as usize].id.seq == id.seq {
            return Some(cur as usize);
        }
        cur = open_prev[cur as usize];
    }
    None
}

/// Per-gtrid retention: evict whole fully-closed transactions, oldest first
/// (by their first stored span), until the store is back under `cap / 2` —
/// the half-full goal amortises the O(spans) rebuild over at least `cap / 2`
/// subsequent pushes. Transactions with any open span, and the transaction
/// a span was just pushed for (`protect`), are never evicted. Storage slots
/// are remapped; every stored reference (span ids, parents, open chains,
/// per-txn heads) is rewritten consistently, and evicted transactions also
/// drop their per-txn bookkeeping so memory is bounded end to end.
fn compact(
    spans: &mut Vec<Span>,
    open_prev: &mut Vec<u32>,
    txns: &mut FxHashMap<(u64, TraceNode), TxnTrace>,
    cap: usize,
    protect: u64,
) {
    let mut pinned: FxHashSet<u64> = FxHashSet::default();
    pinned.insert(protect);
    for ((gtrid, _), txn) in txns.iter() {
        if txn.open_head != NONE {
            pinned.insert(*gtrid);
        }
    }
    // First stored index and span count per gtrid: eviction order and size.
    let mut extent: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
    for (i, span) in spans.iter().enumerate() {
        let entry = extent.entry(span.id.gtrid).or_insert((i as u32, 0));
        entry.1 += 1;
    }
    let mut evictable: Vec<(u32, u64, u32)> = extent
        .iter()
        .filter(|(gtrid, _)| !pinned.contains(gtrid))
        .map(|(gtrid, (first, count))| (*first, *gtrid, *count))
        .collect();
    evictable.sort_unstable();
    let goal = cap / 2;
    let mut len = spans.len();
    let mut evict: FxHashSet<u64> = FxHashSet::default();
    for (_, gtrid, count) in evictable {
        if len <= goal {
            break;
        }
        evict.insert(gtrid);
        len -= count as usize;
    }
    if evict.is_empty() {
        return;
    }
    let mut remap: Vec<u32> = vec![NONE; spans.len()];
    let mut new_spans: Vec<Span> = Vec::with_capacity(len);
    let mut new_open_prev: Vec<u32> = Vec::with_capacity(len);
    for (i, span) in spans.iter().enumerate() {
        if evict.contains(&span.id.gtrid) {
            continue;
        }
        let new_idx = new_spans.len() as u32;
        remap[i] = new_idx;
        let mut moved = *span;
        moved.id = SpanId::new(moved.id.gtrid, moved.id.node, moved.id.seq, new_idx);
        new_spans.push(moved);
        new_open_prev.push(open_prev[i]);
    }
    for (i, span) in new_spans.iter_mut().enumerate() {
        if let Some(parent) = span.parent {
            let old = parent.slot() as usize;
            if old < remap.len() && remap[old] != NONE {
                span.parent = Some(SpanId::new(
                    parent.gtrid,
                    parent.node,
                    parent.seq,
                    remap[old],
                ));
            }
        }
        // Open chains only reference spans of the same (gtrid, node), and
        // retained gtrids keep every span, so chain targets always remap.
        let prev = new_open_prev[i];
        if prev != NONE && prev != NOT_SCOPED {
            new_open_prev[i] = remap[prev as usize];
        }
    }
    txns.retain(|(gtrid, _), _| !evict.contains(gtrid));
    for txn in txns.values_mut() {
        if txn.open_head != NONE {
            txn.open_head = remap[txn.open_head as usize];
        }
    }
    *spans = new_spans;
    *open_prev = new_open_prev;
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::{sleep, Runtime};
    use std::time::Duration;

    #[test]
    fn span_identity_is_stable_per_gtrid_and_node() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(7, dm, SpanKind::Txn, 0);
            assert_eq!(root.seq, 0);
            let child = tracer.start_scoped(7, dm, SpanKind::Analysis, 0);
            assert_eq!(child.seq, 1);
            assert_eq!(
                tracer.spans()[1].parent,
                Some(root),
                "scoped spans nest under the innermost open span"
            );
            sleep(Duration::from_millis(2)).await;
            tracer.end(child);
            tracer.end(root);
            assert_eq!(tracer.spans()[1].duration_micros(), 2_000);
            // A different node gets its own sequence space.
            let ds = TraceNode::data_source(1);
            assert_eq!(tracer.start_root(7, ds, SpanKind::AgentExec, 1).seq, 0);
        });
    }

    #[test]
    fn leaf_spans_do_not_become_parents() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let ds = TraceNode::data_source(0);
            let exec = tracer.start_root(1, ds, SpanKind::AgentExec, 0);
            let wait = tracer.start_leaf(1, ds, SpanKind::LockWait, 42);
            assert_eq!(tracer.spans()[1].parent, Some(exec));
            // A second leaf still parents to the exec span, not the wait.
            let wait2 = tracer.start_leaf(1, ds, SpanKind::LockWait, 43);
            assert_eq!(tracer.spans()[2].parent, Some(exec));
            tracer.end(wait);
            tracer.end(wait2);
            tracer.end(exec);
            assert!(tracer.current(1, ds).is_none());
        });
    }

    #[test]
    fn out_of_order_close_unwinds_the_stack() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(9, dm, SpanKind::Txn, 0);
            let _inner = tracer.start_scoped(9, dm, SpanKind::Round, 0);
            // Abandon path: the root closes while the round is still open.
            tracer.end(root);
            assert!(tracer.current(9, dm).is_none());
        });
    }

    #[test]
    fn end_all_closes_every_open_span_and_later_ends_still_work() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(5, dm, SpanKind::Txn, 0);
            let round = tracer.start_scoped(5, dm, SpanKind::Round, 0);
            sleep(Duration::from_millis(3)).await;
            tracer.end_all(5, dm);
            assert!(tracer.current(5, dm).is_none());
            assert_eq!(tracer.spans()[0].duration_micros(), 3_000);
            assert_eq!(tracer.spans()[1].duration_micros(), 3_000);
            // Ending an already-closed span just restamps its end; ids stay
            // valid after end_all.
            sleep(Duration::from_millis(1)).await;
            tracer.end(round);
            assert_eq!(tracer.spans()[1].duration_micros(), 4_000);
            let _ = root;
        });
    }

    #[test]
    fn span_cap_evicts_whole_closed_transactions_oldest_first() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::with_span_cap(10);
            let dm = TraceNode::middleware(0);
            // A long-lived transaction that stays open across every
            // compaction pass — it must survive them all.
            let pinned = tracer.start_root(1_000, dm, SpanKind::Txn, 7);
            for gtrid in 0..40u64 {
                let root = tracer.start_root(gtrid, dm, SpanKind::Txn, 0);
                let leaf = tracer.start_leaf(gtrid, dm, SpanKind::Analysis, 0);
                tracer.end(leaf);
                tracer.end(root);
            }
            assert!(
                tracer.len() <= 10,
                "cap exceeded: {} spans retained",
                tracer.len()
            );
            // The open transaction survived; the oldest closed ones did not.
            assert_eq!(tracer.spans_for(1_000).len(), 1);
            assert!(tracer.spans_for(0).is_empty());
            assert!(!tracer.spans_for(39).is_empty(), "newest txn retained");
            // The pre-compaction id still closes the moved span.
            sleep(Duration::from_millis(2)).await;
            tracer.end(pinned);
            assert_eq!(tracer.spans_for(1_000)[0].duration_micros(), 2_000);
            assert!(tracer.current(1_000, dm).is_none());
        });
    }

    #[test]
    fn span_cap_keeps_parent_links_consistent_after_compaction() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::with_span_cap(6);
            let dm = TraceNode::middleware(0);
            for gtrid in 0..20u64 {
                let root = tracer.start_root(gtrid, dm, SpanKind::Txn, 0);
                let child = tracer.start_scoped(gtrid, dm, SpanKind::Round, 0);
                tracer.end(child);
                tracer.end(root);
            }
            // Every retained child still points at its own root, and the
            // rewritten parent ids resolve within the retained storage.
            let spans = tracer.spans().clone();
            assert!(spans.len() <= 6);
            for span in &spans {
                if let Some(parent) = span.parent {
                    let target = spans.iter().find(|s| s.id == parent);
                    assert!(
                        target.is_some(),
                        "dangling parent {parent} for span {}",
                        span.id
                    );
                    assert_eq!(parent.gtrid, span.id.gtrid);
                }
            }
        });
    }

    #[test]
    fn stale_ids_from_a_previous_tracer_are_rejected() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let old = Tracer::new();
            let dm = TraceNode::middleware(0);
            let stale = old.start_root(1, dm, SpanKind::Txn, 0);
            let fresh = Tracer::new();
            let root = fresh.start_root(2, dm, SpanKind::Txn, 0);
            sleep(Duration::from_millis(1)).await;
            // Same storage slot, different identity: must not restamp.
            fresh.end(stale);
            assert_eq!(fresh.spans()[0].duration_micros(), 0);
            fresh.end(root);
            assert_eq!(fresh.spans()[0].duration_micros(), 1_000);
        });
    }
}
