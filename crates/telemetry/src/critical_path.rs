//! Critical-path analysis over recorded trace trees.
//!
//! For one transaction the analysis walks its span tree *backwards in
//! virtual time* from the root's end: at every level the child that was still
//! running latest is the blocking work, the gap after it belongs to the
//! parent itself, and the walk recurses into the child's window. Every
//! microsecond of the root span is attributed to exactly one [`SpanKind`], so
//! the per-kind breakdown always sums to the root's duration — the same
//! latency decomposition the paper's figure 6 presents, but derived from the
//! trace instead of hand-placed timers.

use std::time::Duration;

use geotp_simrt::hash::FxHashMap;

use crate::span::{Span, SpanId, SpanKind, SPAN_KINDS};

/// The critical-path attribution of one transaction (or an aggregate of
/// many): total root latency plus per-kind blocking time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total attributed latency in virtual microseconds.
    pub total_micros: u64,
    /// Blocking micros per span kind, indexed by [`SpanKind::ordinal`].
    pub by_kind: [u64; SPAN_KINDS.len()],
    /// Number of transactions aggregated (1 for a single-txn path).
    pub txns: u64,
}

impl CriticalPath {
    /// Blocking time attributed to one span kind.
    pub fn micros(&self, kind: SpanKind) -> u64 {
        self.by_kind[kind.ordinal()]
    }

    /// Blocking time attributed to one span kind, as a [`Duration`].
    pub fn duration(&self, kind: SpanKind) -> Duration {
        Duration::from_micros(self.micros(kind))
    }

    /// Merge another attribution into this one (for per-scenario aggregates).
    pub fn merge(&mut self, other: &CriticalPath) {
        self.total_micros += other.total_micros;
        for (a, b) in self.by_kind.iter_mut().zip(&other.by_kind) {
            *a += b;
        }
        self.txns += other.txns;
    }

    /// `(kind, micros)` rows with non-zero attribution, largest first; ties
    /// break on taxonomy order so output is deterministic.
    pub fn rows(&self) -> Vec<(SpanKind, u64)> {
        let mut rows: Vec<(SpanKind, u64)> = SPAN_KINDS
            .iter()
            .map(|k| (*k, self.by_kind[k.ordinal()]))
            .filter(|(_, v)| *v > 0)
            .collect();
        rows.sort_by_key(|(kind, v)| (std::cmp::Reverse(*v), kind.ordinal()));
        rows
    }

    /// Render as aligned `kind  micros  percent` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (kind, micros) in self.rows() {
            let pct = if self.total_micros == 0 {
                0.0
            } else {
                micros as f64 * 100.0 / self.total_micros as f64
            };
            out.push_str(&format!(
                "{:<18} {:>10} us  {:>5.1}%\n",
                kind.label(),
                micros,
                pct
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>10} us  100.0%\n",
            "total", self.total_micros
        ));
        out
    }
}

/// Attribute the window `[lo, hi]` of `span` across its subtree.
fn attribute(
    span: &Span,
    lo: u64,
    hi: u64,
    children: &FxHashMap<SpanId, Vec<Span>>,
    acc: &mut [u64; SPAN_KINDS.len()],
) {
    let mut cursor = hi;
    if let Some(kids) = children.get(&span.id) {
        // Walk backwards: the child still running latest is the blocking one.
        let mut kids: Vec<&Span> = kids.iter().collect();
        kids.sort_by_key(|c| {
            (
                std::cmp::Reverse(c.end.as_micros()),
                std::cmp::Reverse(c.start.as_micros()),
                c.id.seq,
            )
        });
        for child in kids {
            let c_start = child.start.as_micros();
            if c_start >= cursor {
                continue; // fully after the remaining window (a sibling we already passed)
            }
            let c_hi = child.end.as_micros().min(cursor);
            let c_lo = c_start.max(lo);
            if c_hi <= c_lo {
                continue;
            }
            // The gap after the blocking child is the parent's own work.
            acc[span.kind.ordinal()] += cursor - c_hi;
            attribute(child, c_lo, c_hi, children, acc);
            cursor = c_lo;
            if cursor <= lo {
                break;
            }
        }
    }
    acc[span.kind.ordinal()] += cursor.saturating_sub(lo);
}

/// Compute the critical path of one transaction from a span slice (typically
/// [`crate::Tracer::spans_for`]). The root is the transaction's [`SpanKind::Txn`]
/// span, falling back to the first parentless span. Returns `None` when no
/// spans exist for the transaction.
pub fn critical_path(spans: &[Span], gtrid: u64) -> Option<CriticalPath> {
    let mine: Vec<&Span> = spans.iter().filter(|s| s.id.gtrid == gtrid).collect();
    let root = mine
        .iter()
        .find(|s| s.kind == SpanKind::Txn && s.parent.is_none())
        .or_else(|| mine.iter().find(|s| s.parent.is_none()))?;
    let mut children: FxHashMap<SpanId, Vec<Span>> = FxHashMap::default();
    for span in &mine {
        if let Some(parent) = span.parent {
            children.entry(parent).or_default().push(**span);
        }
    }
    let lo = root.start.as_micros();
    let hi = root.end.as_micros();
    let mut acc = [0u64; SPAN_KINDS.len()];
    attribute(root, lo, hi, &children, &mut acc);
    Some(CriticalPath {
        total_micros: hi.saturating_sub(lo),
        by_kind: acc,
        txns: 1,
    })
}

/// Aggregate the critical paths of many transactions into one breakdown.
pub fn aggregate_critical_path(spans: &[Span], gtrids: &[u64]) -> CriticalPath {
    let mut total = CriticalPath::default();
    for gtrid in gtrids {
        if let Some(path) = critical_path(spans, *gtrid) {
            total.merge(&path);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceNode;
    use crate::tracer::Tracer;
    use geotp_simrt::{sleep, Runtime};

    #[test]
    fn attribution_sums_exactly_to_root_duration() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(1, dm, SpanKind::Txn, 0);
            sleep(Duration::from_micros(100)).await; // own work: 100
            let round = tracer.start_scoped(1, dm, SpanKind::Round, 0);
            sleep(Duration::from_micros(50)).await;
            let exec = tracer.start_scoped_under(
                1,
                TraceNode::data_source(0),
                SpanKind::AgentExec,
                0,
                Some(round),
            );
            sleep(Duration::from_micros(300)).await; // blocking exec: 300
            tracer.end(exec);
            sleep(Duration::from_micros(50)).await;
            tracer.end(round);
            sleep(Duration::from_micros(25)).await;
            tracer.end(root);

            let spans = tracer.spans_for(1);
            let path = critical_path(&spans, 1).unwrap();
            assert_eq!(path.total_micros, 525);
            assert_eq!(
                path.by_kind.iter().sum::<u64>(),
                path.total_micros,
                "every microsecond is attributed to exactly one kind"
            );
            assert_eq!(path.micros(SpanKind::Txn), 125); // 100 before + 25 after the round
            assert_eq!(path.micros(SpanKind::Round), 100); // 50 before + 50 after exec
            assert_eq!(path.micros(SpanKind::AgentExec), 300);
        });
    }

    #[test]
    fn latest_ending_child_wins_overlaps() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            let root = tracer.start_root(2, dm, SpanKind::Txn, 0);
            // Two overlapping children (parallel data sources): the one that
            // finishes last is the blocking chain; the faster one must not be
            // double-counted.
            let slow = tracer.start_leaf_under(
                2,
                TraceNode::data_source(0),
                SpanKind::AgentExec,
                0,
                Some(root),
            );
            let fast = tracer.start_leaf_under(
                2,
                TraceNode::data_source(1),
                SpanKind::Prepare,
                1,
                Some(root),
            );
            sleep(Duration::from_micros(40)).await;
            tracer.end(fast);
            sleep(Duration::from_micros(60)).await;
            tracer.end(slow);
            tracer.end(root);

            let spans = tracer.spans_for(2);
            let path = critical_path(&spans, 2).unwrap();
            assert_eq!(path.total_micros, 100);
            assert_eq!(
                path.micros(SpanKind::AgentExec),
                100,
                "slow child covers the window"
            );
            assert_eq!(
                path.micros(SpanKind::Prepare),
                0,
                "shadowed child contributes nothing"
            );
            assert_eq!(path.by_kind.iter().sum::<u64>(), 100);
        });
    }

    #[test]
    fn aggregate_merges_and_rows_sort_deterministically() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let tracer = Tracer::new();
            let dm = TraceNode::middleware(0);
            for gtrid in [10u64, 11] {
                let root = tracer.start_root(gtrid, dm, SpanKind::Txn, 0);
                sleep(Duration::from_micros(10)).await;
                tracer.end(root);
            }
            let spans: Vec<Span> = tracer.spans().clone();
            let agg = aggregate_critical_path(&spans, &tracer.gtrids());
            assert_eq!(agg.txns, 2);
            assert_eq!(agg.total_micros, 20);
            assert_eq!(agg.rows(), vec![(SpanKind::Txn, 20)]);
            assert!(agg.render().contains("total"));
        });
    }
}
