//! Per-shard collectors merge to the same canonical artifact at every
//! worker count: two instrumented nodes record through the free helpers
//! into auto-installed per-shard collectors (on their own shard threads
//! when `workers > 1`), the runtime deposits each shard's collector at
//! teardown ([`RuntimeBuilderTelemetryExt`] — no explicit deposit calls),
//! and the merged spans/metrics must be byte-identical whether the nodes
//! shared one thread or ran truly in parallel.

use std::sync::Arc;
use std::time::Duration;

use geotp_simrt::{sleep, RuntimeBuilder};
use geotp_telemetry as telemetry;
use geotp_telemetry::{
    FrozenTelemetry, RuntimeBuilderTelemetryExt, ShardTelemetry, SpanKind, TraceNode,
};

fn run(workers: usize) -> FrozenTelemetry {
    let shard_tel = Arc::new(ShardTelemetry::new());
    let mut builder = RuntimeBuilder::new()
        .workers(workers)
        .seed(7)
        .assign("coord", 0)
        .link("a", "coord", Duration::from_millis(20))
        .link("b", "coord", Duration::from_millis(20))
        .collect_telemetry(&shard_tel);
    let (done_tx, done_tok) = builder.mailbox::<u32>("coord");
    for (i, name) in ["a", "b"].into_iter().enumerate() {
        let tx = done_tx.clone();
        builder = builder.spawn_node(name, move || async move {
            let node = TraceNode::data_source(i as u32);
            for g in 0..5u64 {
                sleep(Duration::from_millis(3 + i as u64)).await;
                let gtrid = g * 2 + i as u64;
                let root = telemetry::span_root(gtrid, node, SpanKind::Txn, 0);
                let leaf = telemetry::span_leaf(gtrid, node, SpanKind::AgentExec, g);
                sleep(Duration::from_millis(1)).await;
                telemetry::span_end(leaf);
                telemetry::span_end(root);
                telemetry::counter_add("work.done", "", i as u32, 1);
                telemetry::observe("work.lat", "", i as u32, Duration::from_millis(g + 1));
            }
            tx.bind_src(name).send(10_000, i as u32);
        });
    }
    let mut rt = builder.build();
    rt.block_on(async move {
        let mb = done_tok.bind();
        for _ in 0..2 {
            mb.recv().await;
        }
    });
    assert_eq!(
        shard_tel.len(),
        workers,
        "every shard auto-deposited exactly once"
    );
    shard_tel.merged()
}

#[test]
fn merged_telemetry_is_identical_across_worker_counts() {
    let base = run(1);
    assert_eq!(base.spans.len(), 20);
    assert_eq!(base.counter_total("work.done"), 10);
    let base_metrics = base.metrics_snapshot().render();
    for workers in [2, 4] {
        let other = run(workers);
        assert_eq!(
            base.spans, other.spans,
            "span set diverged at workers={workers}"
        );
        assert_eq!(base.counters, other.counters);
        assert_eq!(base.gauges, other.gauges);
        assert_eq!(
            base_metrics,
            other.metrics_snapshot().render(),
            "metrics diverged at workers={workers}"
        );
    }
}
