//! TPC-C consistency conditions as plain in-process tests — no chaos, no
//! faults, a quiet network. These pin down that the *checker* and the
//! *workload* agree on what consistency means, so that when the same checker
//! runs red under the chaos harness the finding convicts the protocol, not
//! the checker.

use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::{DataSource, DataSourceConfig, Dialect};
use geotp_middleware::{Middleware, MiddlewareConfig, Protocol};
use geotp_net::{NetworkBuilder, NodeId};
use geotp_simrt::spawn;
use geotp_storage::{CostModel, EngineConfig, Row, Value};
use geotp_workloads::tpcc::{
    consistency_violations, wh_key, TpccConfig, TpccGenerator, DISTRICT, NEW_ORDER, ORDERS, STOCK,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config(nodes: u32) -> TpccConfig {
    let mut cfg = TpccConfig::new(nodes, 2);
    cfg.items = 40;
    cfg.customers_per_district = 20;
    cfg.distributed_ratio = 0.4;
    cfg
}

/// Build a quiet simulated cluster and run `clients × txns` TPC-C
/// transactions through the real middleware, then return the sources.
fn run_tpcc_mix(seed: u64, clients: usize, txns: usize) -> (TpccConfig, Vec<Rc<DataSource>>) {
    let config = small_config(2);
    let mut rt = geotp_simrt::Runtime::new();
    let sources = rt.block_on({
        let config = config.clone();
        async move {
            let dm = NodeId::middleware(0);
            let mut net_builder =
                NetworkBuilder::new(seed).default_lan_rtt(Duration::from_micros(500));
            for i in 0..config.nodes {
                net_builder = net_builder.static_link(
                    dm,
                    NodeId::data_source(i),
                    Duration::from_millis(5 + 10 * i as u64),
                );
            }
            net_builder = net_builder.static_link(
                NodeId::data_source(0),
                NodeId::data_source(1),
                Duration::from_millis(15),
            );
            let net = net_builder.build();

            let mut sources = Vec::new();
            for i in 0..config.nodes {
                let mut ds_cfg = DataSourceConfig::new(NodeId::data_source(i));
                ds_cfg.dialect = Dialect::MySql;
                ds_cfg.engine = EngineConfig {
                    lock_wait_timeout: Duration::from_secs(2),
                    cost: CostModel::default(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                sources.push(DataSource::new(ds_cfg, Rc::clone(&net)));
            }
            for a in &sources {
                for b in &sources {
                    if a.index() != b.index() {
                        a.register_peer(b);
                    }
                }
            }

            let generator = Rc::new(TpccGenerator::new(config.clone()));
            generator.load(&sources);

            let mut mw_cfg = MiddlewareConfig::new(dm, Protocol::geotp(), config.partitioner());
            mw_cfg.scheduler.seed = seed;
            let mw = Middleware::connect(mw_cfg, Rc::clone(&net), &sources, None);

            let mut handles = Vec::new();
            for client in 0..clients {
                let mw = Rc::clone(&mw);
                let generator = Rc::clone(&generator);
                handles.push(spawn(async move {
                    let mut rng = StdRng::seed_from_u64(seed ^ (client as u64 * 0x9e37 + 1));
                    for _ in 0..txns {
                        let (spec, _) = generator.generate(&mut rng);
                        let _ = mw.run_transaction(&spec).await;
                    }
                }));
            }
            for handle in handles {
                handle.await;
            }
            sources
        }
    });
    (config, sources)
}

#[test]
fn freshly_loaded_tables_are_consistent() {
    let config = small_config(2);
    let mut rt = geotp_simrt::Runtime::new();
    rt.block_on(async {
        let net = NetworkBuilder::new(1).build();
        let sources: Vec<_> = (0..2)
            .map(|i| {
                DataSource::new(
                    DataSourceConfig::new(NodeId::data_source(i)),
                    Rc::clone(&net),
                )
            })
            .collect();
        TpccGenerator::new(config.clone()).load(&sources);
        assert_eq!(
            consistency_violations(&config, &sources),
            Vec::<String>::new()
        );
    });
}

#[test]
fn mixed_workload_preserves_all_conditions() {
    for seed in [3, 11] {
        let (config, sources) = run_tpcc_mix(seed, 4, 25);
        let violations = consistency_violations(&config, &sources);
        assert!(
            violations.is_empty(),
            "seed {seed} violated TPC-C consistency:\n  {}",
            violations.join("\n  ")
        );
        // The run was not vacuous: orders actually landed.
        let orders: usize = sources
            .iter()
            .map(|s| s.engine().snapshot_table(ORDERS).len())
            .sum();
        assert!(orders > 0, "no NewOrder committed at seed {seed}");
    }
}

/// The checker is not vacuous either: perturbing final state — the kind of
/// damage a partial commit or lost write would leave — turns it red. This is
/// also the deliberate-drift demonstration the golden-table CI gate builds
/// on.
#[test]
fn checker_flags_deliberate_perturbations() {
    let (config, sources) = run_tpcc_mix(7, 2, 20);
    assert!(consistency_violations(&config, &sources).is_empty());

    // Perturbation 1: bump one district's YTD without the warehouse's.
    let key = wh_key(DISTRICT, 1, 1).storage_key();
    let victim = &sources[0];
    let mut row = victim.engine().peek(key).expect("district row");
    row.add_int(0, 100);
    victim.engine().load(key, row);
    let violations = consistency_violations(&config, &sources);
    assert!(
        violations.iter().any(|v| v.contains("w_ytd")),
        "district/warehouse YTD drift not flagged: {violations:?}"
    );

    // Perturbation 2: an ORDERS row with no matching NEW_ORDER entry
    // (half-applied NewOrder).
    let (config2, sources2) = run_tpcc_mix(9, 2, 20);
    let orphan = wh_key(ORDERS, 1, 10_000_000 + 9_999_999); // district 1
    sources2[0]
        .engine()
        .load(orphan.storage_key(), Row::from_values(vec![Value::Int(0)]));
    let violations = consistency_violations(&config2, &sources2);
    assert!(
        violations.iter().any(|v| v.contains("NEW_ORDER")),
        "orphan order not flagged: {violations:?}"
    );

    // Perturbation 3: stock consumed with no order line recorded.
    let (config3, sources3) = run_tpcc_mix(13, 2, 20);
    let stock_key = wh_key(STOCK, 1, 1).storage_key();
    let mut stock = sources3[0].engine().peek(stock_key).expect("stock row");
    stock.add_int(0, -1);
    sources3[0].engine().load(stock_key, stock);
    let violations = consistency_violations(&config3, &sources3);
    assert!(
        violations.iter().any(|v| v.contains("stock")),
        "stock drift not flagged: {violations:?}"
    );

    // NEW_ORDER table untouched by any perturbation above keeps its count.
    let _ = NEW_ORDER;
}
