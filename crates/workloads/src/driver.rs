//! Closed-loop terminal driver (the Benchbase stand-in).
//!
//! The paper drives every experiment with Benchbase terminals: each terminal
//! submits one transaction, waits for its outcome and immediately submits the
//! next. Two front doors are supported:
//!
//! * [`run_session_benchmark`] — the session-first driver: each terminal
//!   `connect`s one [`SessionService`] session and replays its generated
//!   specs through live transaction handles (optionally with client think
//!   time between statement rounds, the interactive-terminal shape);
//! * [`run_benchmark`] — the legacy one-shot driver over
//!   [`TransactionService`], kept as a compatibility shim so the recorded
//!   golden experiment tables stay reproducible.
//!
//! Both work over every backend — the GeoTP/SSP middleware, the coordinator
//! cluster tier, the ScalarDB-style baseline and the distributed-database
//! baseline — for a configurable number of terminals, warm-up period and
//! measurement window (all in virtual time).

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use geotp_middleware::session::SessionService;
use geotp_middleware::{Middleware, TransactionSpec, TxnOutcome};
use geotp_simrt::{join_all, now, spawn};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::MetricsCollector;
use crate::tpcc::TpccGenerator;
use crate::ycsb::YcsbGenerator;

/// Anything that can execute a client transaction end to end (the one-shot
/// compatibility shim; new code drives sessions via [`SessionService`]).
pub trait TransactionService {
    /// Execute one transaction and return its outcome.
    fn run<'a>(
        &'a self,
        spec: &'a TransactionSpec,
    ) -> Pin<Box<dyn Future<Output = TxnOutcome> + 'a>>;

    /// Display name used in experiment tables.
    fn label(&self) -> String {
        "service".to_string()
    }
}

impl TransactionService for Rc<Middleware> {
    fn run<'a>(
        &'a self,
        spec: &'a TransactionSpec,
    ) -> Pin<Box<dyn Future<Output = TxnOutcome> + 'a>> {
        Box::pin(async move { self.run_transaction(spec).await })
    }

    fn label(&self) -> String {
        self.protocol().name().to_string()
    }
}

/// Which workload the terminals run.
pub enum WorkloadMix {
    /// The transactional YCSB variant.
    Ycsb(Rc<YcsbGenerator>),
    /// TPC-C with its configured mix.
    Tpcc(Rc<TpccGenerator>),
    /// An arbitrary generator closure.
    Custom(Rc<dyn Fn(&mut StdRng) -> TransactionSpec>),
}

impl WorkloadMix {
    fn next(&self, rng: &mut StdRng) -> TransactionSpec {
        match self {
            WorkloadMix::Ycsb(g) => g.generate(rng).0,
            WorkloadMix::Tpcc(g) => g.generate(rng).0,
            WorkloadMix::Custom(f) => f(rng),
        }
    }
}

impl Clone for WorkloadMix {
    fn clone(&self) -> Self {
        match self {
            WorkloadMix::Ycsb(g) => WorkloadMix::Ycsb(Rc::clone(g)),
            WorkloadMix::Tpcc(g) => WorkloadMix::Tpcc(Rc::clone(g)),
            WorkloadMix::Custom(f) => WorkloadMix::Custom(Rc::clone(f)),
        }
    }
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Number of closed-loop client terminals (the paper's default is 64).
    pub terminals: usize,
    /// Warm-up period excluded from measurement.
    pub warmup: Duration,
    /// Measurement period.
    pub measure: Duration,
    /// Seed for workload generation (each terminal derives its own stream).
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            terminals: 64,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(10),
            seed: 42,
        }
    }
}

impl DriverConfig {
    /// A small configuration for unit tests and quick-scale benchmarks.
    pub fn quick(terminals: usize, measure: Duration) -> Self {
        Self {
            terminals,
            warmup: Duration::from_millis(500),
            measure,
            seed: 42,
        }
    }
}

/// The result of one benchmark run.
pub struct BenchmarkReport {
    /// Merged metrics over the measurement period.
    pub metrics: MetricsCollector,
    /// Length of the measurement period.
    pub measured: Duration,
    /// Label of the service under test.
    pub label: String,
}

impl BenchmarkReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.metrics.throughput(self.measured)
    }

    /// Mean latency of committed transactions.
    pub fn mean_latency(&self) -> Duration {
        self.metrics.latency().mean()
    }

    /// p99 latency of committed transactions.
    pub fn p99_latency(&self) -> Duration {
        self.metrics.latency().percentile(99.0)
    }

    /// Abort rate over the measurement period.
    pub fn abort_rate(&self) -> f64 {
        self.metrics.abort_rate()
    }
}

/// Session-driver configuration: the closed-loop terminal parameters plus
/// the interactive knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionDriverConfig {
    /// Terminals, warm-up, measurement window and seed.
    pub base: DriverConfig,
    /// Client think time between the statement rounds of one transaction
    /// (the interactive-terminal shape; lands in the latency breakdown's
    /// `think_time` slice). Zero replays specs back-to-back.
    pub think_time: Duration,
}

impl SessionDriverConfig {
    /// A session driver with no think time.
    pub fn new(base: DriverConfig) -> Self {
        Self {
            base,
            think_time: Duration::ZERO,
        }
    }
}

/// Run a closed-loop benchmark of `workload` through the session front door:
/// each terminal connects one session (`session_id == terminal`) and replays
/// its generated specs through live transaction handles. Refused connections
/// (no live coordinator) are retried with a small backoff, like a real
/// client reconnecting.
pub async fn run_session_benchmark<S>(
    service: S,
    workload: WorkloadMix,
    config: SessionDriverConfig,
) -> BenchmarkReport
where
    S: SessionService + Clone + 'static,
{
    let start = now();
    let measure_start = start + config.base.warmup;
    let end = measure_start + config.base.measure;
    let label = service.label();
    let think_time = config.think_time;

    let mut handles = Vec::with_capacity(config.base.terminals);
    for terminal in 0..config.base.terminals {
        let service = service.clone();
        let workload = workload.clone();
        let mut rng = StdRng::seed_from_u64(
            config
                .base
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(terminal as u64),
        );
        handles.push(spawn(async move {
            let mut collector = MetricsCollector::new(measure_start);
            let mut session = service.connect(terminal as u64);
            loop {
                if now() >= end {
                    break;
                }
                let spec = workload.next(&mut rng);
                let outcome = session.run_spec_thinking(&spec, think_time).await;
                if outcome.is_refusal() {
                    // Refused connection: back off and retry with a new spec
                    // (the terminal reconnects; the backoff keeps a dead
                    // deployment from busy-looping the driver).
                    geotp_simrt::sleep(Duration::from_millis(250)).await;
                    continue;
                }
                let finished = now();
                if finished >= measure_start && finished < end {
                    collector.record(&outcome, finished);
                }
            }
            collector
        }));
    }

    let collectors = join_all(handles.into_iter().collect()).await;
    let mut merged = MetricsCollector::new(measure_start);
    for collector in &collectors {
        merged.merge(collector);
    }
    BenchmarkReport {
        metrics: merged,
        measured: config.base.measure,
        label,
    }
}

/// Run a closed-loop benchmark of `workload` against `service` through the
/// legacy one-shot front door (the compatibility shim the recorded golden
/// tables were measured through).
///
/// `service` is cloned once per terminal; services are typically `Rc`-wrapped
/// handles, so the clone is cheap reference counting.
pub async fn run_benchmark<S>(
    service: S,
    workload: WorkloadMix,
    config: DriverConfig,
) -> BenchmarkReport
where
    S: TransactionService + Clone + 'static,
{
    let start = now();
    let measure_start = start + config.warmup;
    let end = measure_start + config.measure;
    let label = service.label();

    let mut handles = Vec::with_capacity(config.terminals);
    for terminal in 0..config.terminals {
        let service = service.clone();
        let workload = workload.clone();
        let mut rng = StdRng::seed_from_u64(
            config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(terminal as u64),
        );
        handles.push(spawn(async move {
            let mut collector = MetricsCollector::new(measure_start);
            loop {
                if now() >= end {
                    break;
                }
                let spec = workload.next(&mut rng);
                let outcome = service.run(&spec).await;
                let finished = now();
                if finished >= measure_start && finished < end {
                    collector.record(&outcome, finished);
                }
            }
            collector
        }));
    }

    let collectors = join_all(handles.into_iter().collect()).await;
    let mut merged = MetricsCollector::new(measure_start);
    for collector in &collectors {
        merged.merge(collector);
    }
    BenchmarkReport {
        metrics: merged,
        measured: config.measure,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_datasource::{DataSource, DataSourceConfig};
    use geotp_middleware::{MiddlewareConfig, Protocol};
    use geotp_net::{NetworkBuilder, NodeId};
    use geotp_simrt::Runtime;
    use geotp_storage::{CostModel, EngineConfig};

    use crate::ycsb::{Contention, YcsbConfig};

    fn build_cluster(protocol: Protocol) -> (Rc<Middleware>, Rc<YcsbGenerator>) {
        let dm = NodeId::middleware(0);
        let rtts = [10u64, 50];
        let mut builder = NetworkBuilder::new(5).default_lan_rtt(Duration::from_micros(200));
        for (i, rtt) in rtts.iter().enumerate() {
            builder = builder.static_link(
                dm,
                NodeId::data_source(i as u32),
                Duration::from_millis(*rtt),
            );
        }
        let net = builder.build();
        let ycsb = YcsbConfig::new(2, 200)
            .with_contention(Contention::Medium)
            .with_distributed_ratio(0.3);
        let generator = Rc::new(YcsbGenerator::new(ycsb));
        let sources: Vec<_> = (0..2)
            .map(|i| {
                let mut cfg = DataSourceConfig::new(NodeId::data_source(i));
                cfg.engine = EngineConfig {
                    lock_wait_timeout: Duration::from_secs(2),
                    cost: CostModel::default(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                DataSource::new(cfg, Rc::clone(&net))
            })
            .collect();
        for a in &sources {
            for b in &sources {
                if a.index() != b.index() {
                    a.register_peer(b);
                }
            }
        }
        generator.load(&sources);
        let mw = Middleware::connect(
            MiddlewareConfig::new(dm, protocol, ycsb.partitioner()),
            net,
            &sources,
            None,
        );
        (mw, generator)
    }

    #[test]
    fn closed_loop_driver_produces_sane_throughput() {
        let mut rt = Runtime::new();
        let report = rt.block_on(async {
            let (mw, generator) = build_cluster(Protocol::geotp());
            run_benchmark(
                mw,
                WorkloadMix::Ycsb(generator),
                DriverConfig {
                    terminals: 8,
                    warmup: Duration::from_millis(500),
                    measure: Duration::from_secs(3),
                    seed: 1,
                },
            )
            .await
        });
        assert_eq!(report.label, "GeoTP");
        assert!(
            report.metrics.attempts() > 50,
            "attempts {}",
            report.metrics.attempts()
        );
        assert!(
            report.throughput() > 10.0,
            "throughput {}",
            report.throughput()
        );
        assert!(report.mean_latency() > Duration::from_millis(20));
        assert!(report.p99_latency() >= report.mean_latency());
    }

    #[test]
    fn geotp_outperforms_ssp_on_the_same_workload() {
        let mut rt = Runtime::new();
        let (geotp_tput, ssp_tput) = rt.block_on(async {
            let cfg = DriverConfig {
                terminals: 16,
                warmup: Duration::from_millis(500),
                measure: Duration::from_secs(4),
                seed: 9,
            };
            let (geotp_mw, geotp_gen) = build_cluster(Protocol::geotp());
            let geotp = run_benchmark(geotp_mw, WorkloadMix::Ycsb(geotp_gen), cfg).await;
            let (ssp_mw, ssp_gen) = build_cluster(Protocol::SspXa);
            let ssp = run_benchmark(ssp_mw, WorkloadMix::Ycsb(ssp_gen), cfg).await;
            (geotp.throughput(), ssp.throughput())
        });
        assert!(
            geotp_tput > ssp_tput,
            "GeoTP ({geotp_tput:.1} tps) should outperform SSP ({ssp_tput:.1} tps)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        fn once() -> (u64, u64) {
            let mut rt = Runtime::new();
            rt.block_on(async {
                let (mw, generator) = build_cluster(Protocol::geotp());
                let report = run_benchmark(
                    mw,
                    WorkloadMix::Ycsb(generator),
                    DriverConfig::quick(4, Duration::from_secs(2)),
                )
                .await;
                (report.metrics.committed(), report.metrics.aborted())
            })
        }
        assert_eq!(once(), once());
    }

    #[test]
    fn session_driver_matches_one_shot_driver_without_think_time() {
        // With a co-located client and zero think time the session driver is
        // the one-shot driver: same terminals, same RNG streams, same
        // committed counts and latency distribution.
        let mut rt = Runtime::new();
        let (oneshot, sessions) = rt.block_on(async {
            let cfg = DriverConfig::quick(6, Duration::from_secs(3));
            let (mw_a, gen_a) = build_cluster(Protocol::geotp());
            let oneshot = run_benchmark(mw_a, WorkloadMix::Ycsb(gen_a), cfg).await;
            let (mw_b, gen_b) = build_cluster(Protocol::geotp());
            let sessions = run_session_benchmark(
                mw_b,
                WorkloadMix::Ycsb(gen_b),
                SessionDriverConfig::new(cfg),
            )
            .await;
            (oneshot, sessions)
        });
        assert_eq!(oneshot.metrics.committed(), sessions.metrics.committed());
        assert_eq!(oneshot.metrics.aborted(), sessions.metrics.aborted());
        assert_eq!(oneshot.mean_latency(), sessions.mean_latency());
    }

    fn build_tpcc_cluster(
        tpcc: &crate::tpcc::TpccConfig,
    ) -> (Rc<Middleware>, Rc<crate::tpcc::TpccGenerator>) {
        let dm = NodeId::middleware(0);
        let mut builder = NetworkBuilder::new(5).default_lan_rtt(Duration::from_micros(200));
        for (i, rtt) in [10u64, 50].iter().enumerate() {
            builder = builder.static_link(
                dm,
                NodeId::data_source(i as u32),
                Duration::from_millis(*rtt),
            );
        }
        let net = builder.build();
        let sources: Vec<_> = (0..2)
            .map(|i| {
                let mut cfg = DataSourceConfig::new(NodeId::data_source(i));
                cfg.engine = EngineConfig {
                    lock_wait_timeout: Duration::from_secs(2),
                    cost: CostModel::default(),
                    record_history: false,
                    ..EngineConfig::default()
                };
                DataSource::new(cfg, Rc::clone(&net))
            })
            .collect();
        for a in &sources {
            for b in &sources {
                if a.index() != b.index() {
                    a.register_peer(b);
                }
            }
        }
        let generator = Rc::new(crate::tpcc::TpccGenerator::new(tpcc.clone()));
        generator.load(&sources);
        let mw = Middleware::connect(
            MiddlewareConfig::new(dm, Protocol::geotp(), tpcc.partitioner()),
            net,
            &sources,
            None,
        );
        (mw, generator)
    }

    #[test]
    fn think_time_slows_terminals_and_lands_in_latency() {
        let mut rt = Runtime::new();
        let (eager, thinking) = rt.block_on(async {
            let cfg = DriverConfig::quick(4, Duration::from_secs(3));
            // TPC-C transactions are multi-round, so think time has
            // between-round windows to land in.
            let tpcc = {
                let mut t = crate::tpcc::TpccConfig::new(2, 1);
                t.items = 40;
                t.customers_per_district = 20;
                t
            };
            let (mw_a, gen_a) = build_tpcc_cluster(&tpcc);
            let eager = run_session_benchmark(
                mw_a,
                WorkloadMix::Tpcc(gen_a),
                SessionDriverConfig::new(cfg),
            )
            .await;
            let (mw_b, gen_b) = build_tpcc_cluster(&tpcc);
            let thinking = run_session_benchmark(
                mw_b,
                WorkloadMix::Tpcc(gen_b),
                SessionDriverConfig {
                    base: cfg,
                    think_time: Duration::from_millis(50),
                },
            )
            .await;
            (eager, thinking)
        });
        assert!(eager.metrics.committed() > 0 && thinking.metrics.committed() > 0);
        assert!(
            thinking.throughput() < eager.throughput(),
            "think time must cost throughput: {} vs {}",
            thinking.throughput(),
            eager.throughput()
        );
        assert!(
            thinking.mean_latency() > eager.mean_latency(),
            "think time is part of the client-observed latency"
        );
    }

    #[test]
    fn custom_workload_mix_runs() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let (mw, _generator) = build_cluster(Protocol::geotp());
            let custom = WorkloadMix::Custom(Rc::new(|rng: &mut StdRng| {
                use geotp_middleware::{ClientOp, GlobalKey};
                use geotp_storage::TableId;
                use rand::Rng;
                let key = GlobalKey::new(TableId(0), rng.gen_range(0..100));
                TransactionSpec::single_round(vec![ClientOp::Read(key)])
            }));
            let report =
                run_benchmark(mw, custom, DriverConfig::quick(2, Duration::from_secs(1))).await;
            assert!(report.metrics.committed() > 0);
            assert!(report.abort_rate() < 0.01);
        });
    }
}
