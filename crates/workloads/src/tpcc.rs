//! TPC-C workload: warehouse order processing over warehouse-partitioned
//! data, with the five standard transaction profiles.
//!
//! Layout follows the paper's setup: each data node hosts a fixed number of
//! warehouses (16 by default) and transactions become *distributed* when a
//! NewOrder orders an item supplied by a remote warehouse or a Payment pays a
//! customer registered at a remote warehouse. As in the paper we exclude
//! think time and the 1% intentional NewOrder user errors.
//!
//! Scale-down note: the full TPC-C specification uses 100 000 items and 3 000
//! customers per district; the simulation defaults are smaller (configurable)
//! so that experiments fit comfortably in memory. Contention behaviour is
//! preserved because TPC-C's hotspots are the warehouse and district rows,
//! which keep their original cardinality (1 per warehouse, 10 per warehouse).

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{ClientOp, GlobalKey, Partitioner, TransactionSpec};
use geotp_storage::{Row, TableId, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// WAREHOUSE table.
pub const WAREHOUSE: TableId = TableId(10);
/// DISTRICT table.
pub const DISTRICT: TableId = TableId(11);
/// CUSTOMER table.
pub const CUSTOMER: TableId = TableId(12);
/// STOCK table.
pub const STOCK: TableId = TableId(13);
/// ITEM table (replicated per warehouse partition).
pub const ITEM: TableId = TableId(14);
/// ORDERS table.
pub const ORDERS: TableId = TableId(15);
/// ORDER_LINE table.
pub const ORDER_LINE: TableId = TableId(16);
/// NEW_ORDER table.
pub const NEW_ORDER: TableId = TableId(17);
/// HISTORY table.
pub const HISTORY: TableId = TableId(18);

/// Number of districts per warehouse (fixed by the TPC-C specification).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;

/// Stride separating districts in the ORDERS / NEW_ORDER local key space:
/// `local = district * stride + order_id`. Must keep `district * stride +
/// order_id` within the 32 bits [`wh_key`] reserves for the local part
/// (10 × 10⁷ ≈ 2²⁶·⁶), so the encoding is losslessly decodable by
/// [`order_key_parts`] — the consistency checker counts orders per district
/// from final state alone.
pub const ORDER_DISTRICT_STRIDE: u64 = 10_000_000;

/// Initial per-item stock quantity loaded by [`TpccGenerator::load`]. Every
/// committed order line decrements stock by one, which is what the stock
/// consistency condition aggregates over.
pub const INITIAL_STOCK: i64 = 10_000;

/// Decode an ORDERS / NEW_ORDER key into `(warehouse, district, order_id)`.
pub fn order_key_parts(key: GlobalKey) -> (u32, u64, u64) {
    let warehouse = (key.row >> 32) as u32;
    let local = key.row & 0xffff_ffff;
    (
        warehouse,
        local / ORDER_DISTRICT_STRIDE,
        local % ORDER_DISTRICT_STRIDE,
    )
}

/// The five TPC-C transaction profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTransaction {
    /// Order entry (read-write, ~45% of the mix).
    NewOrder,
    /// Payment processing (read-write, ~43%).
    Payment,
    /// Order status inquiry (read-only, ~4%).
    OrderStatus,
    /// Batch delivery (read-write, ~4%).
    Delivery,
    /// Stock level inquiry (read-only, ~4%).
    StockLevel,
}

impl TpccTransaction {
    /// The standard mix weights.
    pub fn standard_mix() -> Vec<(TpccTransaction, f64)> {
        vec![
            (TpccTransaction::NewOrder, 0.45),
            (TpccTransaction::Payment, 0.43),
            (TpccTransaction::OrderStatus, 0.04),
            (TpccTransaction::Delivery, 0.04),
            (TpccTransaction::StockLevel, 0.04),
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TpccTransaction::NewOrder => "NewOrder",
            TpccTransaction::Payment => "Payment",
            TpccTransaction::OrderStatus => "OrderStatus",
            TpccTransaction::Delivery => "Delivery",
            TpccTransaction::StockLevel => "StockLevel",
        }
    }
}

/// TPC-C configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TpccConfig {
    /// Warehouses hosted per data node (paper default: 16).
    pub warehouses_per_node: u32,
    /// Number of data nodes.
    pub nodes: u32,
    /// Items (and stock rows) per warehouse partition.
    pub items: u64,
    /// Customers per district.
    pub customers_per_district: u64,
    /// Fraction of NewOrder/Payment transactions forced to touch a remote
    /// data node (the paper's distributed-transaction ratio knob).
    pub distributed_ratio: f64,
    /// Transaction mix (type, weight).
    pub mix: Vec<(TpccTransaction, f64)>,
}

impl TpccConfig {
    /// Defaults scaled for simulation: 4 nodes × `warehouses_per_node`
    /// warehouses, 1 000 items per warehouse, 300 customers per district.
    pub fn new(nodes: u32, warehouses_per_node: u32) -> Self {
        Self {
            warehouses_per_node,
            nodes,
            items: 1_000,
            customers_per_district: 300,
            distributed_ratio: 0.2,
            mix: TpccTransaction::standard_mix(),
        }
    }

    /// Run a single transaction profile only (Fig. 9 evaluates pure Payment
    /// and pure NewOrder workloads).
    pub fn with_only(mut self, txn: TpccTransaction) -> Self {
        self.mix = vec![(txn, 1.0)];
        self
    }

    /// Set the distributed-transaction ratio.
    pub fn with_distributed_ratio(mut self, ratio: f64) -> Self {
        self.distributed_ratio = ratio;
        self
    }

    /// Total number of warehouses.
    pub fn total_warehouses(&self) -> u32 {
        self.warehouses_per_node * self.nodes
    }

    /// The partitioner matching this layout.
    pub fn partitioner(&self) -> Partitioner {
        Partitioner::ByWarehouse {
            warehouses_per_node: self.warehouses_per_node,
            nodes: self.nodes,
        }
    }
}

/// Encode a warehouse-scoped key: warehouse id in the upper 32 bits.
pub fn wh_key(table: TableId, warehouse: u32, local: u64) -> GlobalKey {
    GlobalKey::new(table, ((warehouse as u64) << 32) | (local & 0xffff_ffff))
}

/// Generates TPC-C transactions.
pub struct TpccGenerator {
    config: TpccConfig,
    next_order_id: std::cell::Cell<u64>,
}

impl TpccGenerator {
    /// Create a generator.
    pub fn new(config: TpccConfig) -> Self {
        assert!(config.nodes >= 1 && config.warehouses_per_node >= 1);
        Self {
            config,
            next_order_id: std::cell::Cell::new(1),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Populate the data sources with the TPC-C tables.
    pub fn load(&self, sources: &[Rc<DataSource>]) {
        let partitioner = self.config.partitioner();
        for w in 1..=self.config.total_warehouses() {
            let node = partitioner.route(wh_key(WAREHOUSE, w, 0)) as usize;
            let source = &sources[node.min(sources.len() - 1)];
            source.load(
                wh_key(WAREHOUSE, w, 0).storage_key(),
                Row::from_values(vec![
                    Value::Int(0),                // w_ytd
                    Value::Str(format!("wh{w}")), // w_name
                ]),
            );
            for d in 1..=DISTRICTS_PER_WAREHOUSE {
                source.load(
                    wh_key(DISTRICT, w, d).storage_key(),
                    Row::from_values(vec![
                        Value::Int(0), // d_ytd
                        Value::Int(1), // d_next_o_id
                    ]),
                );
                for c in 1..=self.config.customers_per_district {
                    source.load(
                        wh_key(CUSTOMER, w, d * 100_000 + c).storage_key(),
                        Row::from_values(vec![
                            Value::Int(1_000), // c_balance
                            Value::Int(0),     // c_payment_cnt
                        ]),
                    );
                }
            }
            for item in 1..=self.config.items {
                source.load(wh_key(ITEM, w, item).storage_key(), Row::int(100));
                source.load(
                    wh_key(STOCK, w, item).storage_key(),
                    Row::from_values(vec![Value::Int(INITIAL_STOCK), Value::Int(0)]),
                );
            }
        }
    }

    fn home_warehouse(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(1..=self.config.total_warehouses())
    }

    fn remote_warehouse(&self, home: u32, rng: &mut StdRng) -> u32 {
        let partitioner = self.config.partitioner();
        let home_node = partitioner.route(wh_key(WAREHOUSE, home, 0));
        // Pick a warehouse on a different data node so the transaction is
        // genuinely geo-distributed (same-node remote warehouses would not be).
        for _ in 0..32 {
            let candidate = rng.gen_range(1..=self.config.total_warehouses());
            if partitioner.route(wh_key(WAREHOUSE, candidate, 0)) != home_node {
                return candidate;
            }
        }
        home
    }

    fn customer_key(&self, w: u32, d: u64, rng: &mut StdRng) -> GlobalKey {
        let c = rng.gen_range(1..=self.config.customers_per_district);
        wh_key(CUSTOMER, w, d * 100_000 + c)
    }

    /// Pick which transaction profile to run next.
    pub fn pick_transaction(&self, rng: &mut StdRng) -> TpccTransaction {
        let total: f64 = self.config.mix.iter().map(|(_, w)| w).sum();
        let mut draw = rng.gen::<f64>() * total;
        for (txn, weight) in &self.config.mix {
            if draw < *weight {
                return *txn;
            }
            draw -= weight;
        }
        self.config
            .mix
            .last()
            .map(|(t, _)| *t)
            .unwrap_or(TpccTransaction::NewOrder)
    }

    /// Generate one transaction of the given profile.
    pub fn generate_of(&self, txn: TpccTransaction, rng: &mut StdRng) -> TransactionSpec {
        match txn {
            TpccTransaction::NewOrder => self.new_order(rng),
            TpccTransaction::Payment => self.payment(rng),
            TpccTransaction::OrderStatus => self.order_status(rng),
            TpccTransaction::Delivery => self.delivery(rng),
            TpccTransaction::StockLevel => self.stock_level(rng),
        }
    }

    /// Generate one transaction according to the configured mix.
    pub fn generate(&self, rng: &mut StdRng) -> (TransactionSpec, TpccTransaction) {
        let txn = self.pick_transaction(rng);
        (self.generate_of(txn, rng), txn)
    }

    /// NewOrder: read warehouse/customer, bump the district's next order id,
    /// update the stock of 5–15 items (possibly on a remote node), insert the
    /// order, its lines and the NEW_ORDER entry.
    pub fn new_order(&self, rng: &mut StdRng) -> TransactionSpec {
        let w = self.home_warehouse(rng);
        let d = rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        let customer = self.customer_key(w, d, rng);
        let distributed = rng.gen::<f64>() < self.config.distributed_ratio && self.config.nodes > 1;
        let ol_cnt = rng.gen_range(5..=15usize);
        let order_id = self.next_order_id.get();
        self.next_order_id.set(order_id + 1);

        let mut round1 = vec![
            ClientOp::Read(wh_key(WAREHOUSE, w, 0)),
            ClientOp::Read(customer),
            ClientOp::AddInt {
                key: wh_key(DISTRICT, w, d),
                col: 1, // d_next_o_id += 1 (column 0 is d_ytd, owned by Payment)
                delta: 1,
            },
        ];
        let mut round2 = Vec::new();
        for line in 0..ol_cnt {
            let item = rng.gen_range(1..=self.config.items);
            // The first line of a "distributed" NewOrder is supplied remotely.
            let supply_w = if distributed && line == 0 {
                self.remote_warehouse(w, rng)
            } else {
                w
            };
            round1.push(ClientOp::Read(wh_key(ITEM, supply_w, item)));
            round2.push(ClientOp::AddInt {
                key: wh_key(STOCK, supply_w, item),
                col: 0,
                delta: -1,
            });
            round2.push(ClientOp::Insert {
                key: wh_key(ORDER_LINE, w, order_id * 100 + line as u64),
                row: Row::from_values(vec![Value::Int(item as i64), Value::Int(supply_w as i64)]),
            });
        }
        round2.push(ClientOp::Insert {
            key: wh_key(ORDERS, w, d * ORDER_DISTRICT_STRIDE + order_id),
            row: Row::from_values(vec![Value::Int(ol_cnt as i64)]),
        });
        round2.push(ClientOp::Insert {
            key: wh_key(NEW_ORDER, w, d * ORDER_DISTRICT_STRIDE + order_id),
            row: Row::int(1),
        });
        TransactionSpec::multi_round(vec![round1, round2])
    }

    /// Payment: update warehouse and district year-to-date totals and the
    /// customer's balance (customer possibly registered at a remote node).
    pub fn payment(&self, rng: &mut StdRng) -> TransactionSpec {
        let w = self.home_warehouse(rng);
        let d = rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        let amount = rng.gen_range(1..=5000i64);
        let remote = rng.gen::<f64>() < self.config.distributed_ratio && self.config.nodes > 1;
        let (c_w, c_d) = if remote {
            (
                self.remote_warehouse(w, rng),
                rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE),
            )
        } else {
            (w, d)
        };
        let customer = self.customer_key(c_w, c_d, rng);
        let order_id = self.next_order_id.get();
        self.next_order_id.set(order_id + 1);
        TransactionSpec::single_round(vec![
            ClientOp::AddInt {
                key: wh_key(WAREHOUSE, w, 0),
                col: 0,
                delta: amount,
            },
            ClientOp::AddInt {
                key: wh_key(DISTRICT, w, d),
                col: 0,
                delta: amount,
            },
            ClientOp::AddInt {
                key: customer,
                col: 0,
                delta: -amount,
            },
            ClientOp::Insert {
                key: wh_key(HISTORY, w, order_id),
                row: Row::int(amount),
            },
        ])
    }

    /// OrderStatus: read a customer and a handful of their order lines.
    pub fn order_status(&self, rng: &mut StdRng) -> TransactionSpec {
        let w = self.home_warehouse(rng);
        let d = rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        let customer = self.customer_key(w, d, rng);
        let mut ops = vec![ClientOp::Read(customer)];
        for _ in 0..5 {
            let item = rng.gen_range(1..=self.config.items);
            ops.push(ClientOp::Read(wh_key(STOCK, w, item)));
        }
        TransactionSpec::single_round(ops)
    }

    /// Delivery: settle one pending order per district (simplified to a
    /// customer balance credit per district).
    pub fn delivery(&self, rng: &mut StdRng) -> TransactionSpec {
        let w = self.home_warehouse(rng);
        let mut ops = Vec::new();
        for d in 1..=DISTRICTS_PER_WAREHOUSE {
            let customer = self.customer_key(w, d, rng);
            ops.push(ClientOp::AddInt {
                key: customer,
                col: 0,
                delta: 50,
            });
        }
        TransactionSpec::single_round(ops)
    }

    /// StockLevel: read the district row and twenty stock rows.
    pub fn stock_level(&self, rng: &mut StdRng) -> TransactionSpec {
        let w = self.home_warehouse(rng);
        let d = rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        let mut ops = vec![ClientOp::Read(wh_key(DISTRICT, w, d))];
        for _ in 0..20 {
            let item = rng.gen_range(1..=self.config.items);
            ops.push(ClientOp::Read(wh_key(STOCK, w, item)));
        }
        TransactionSpec::single_round(ops)
    }
}

/// TPC-C consistency conditions (the spec's §3.3.2 conditions, adapted to
/// the simulated schema), checked over the *final durable state* of the data
/// sources. Every condition is an invariant of the workload itself — each
/// committed transaction preserves it — so any violation convicts the
/// transaction machinery (partial commit, lost write, double apply), not the
/// checker. Returns one line per violated condition; empty means consistent.
///
/// Conditions:
/// 1. `w_ytd = Σ d_ytd` per warehouse (Payment updates both atomically);
/// 2. `d_next_o_id − 1 = |ORDERS(w,d)| = |NEW_ORDER(w,d)|` per district
///    (NewOrder bumps the counter and inserts both rows atomically);
/// 3. `Σ ol_cnt over ORDERS(w,·) = |ORDER_LINE(w,·)|` per warehouse;
/// 4. `Σ (INITIAL_STOCK − s_quantity)` over all stock = total order lines
///    (each committed order line decrements exactly one stock row).
pub fn consistency_violations(config: &TpccConfig, sources: &[Rc<DataSource>]) -> Vec<String> {
    let mut violations = Vec::new();
    let snapshot = |table: TableId| -> Vec<(geotp_storage::Key, Row)> {
        let mut rows = Vec::new();
        for source in sources {
            rows.extend(source.engine().snapshot_table(table));
        }
        rows.sort_by_key(|(k, _)| *k);
        rows
    };
    let col_int = |row: &Row, col: usize| row.get(col).and_then(Value::as_int).unwrap_or(0);

    let warehouses = config.total_warehouses() as u64;
    let districts = snapshot(DISTRICT);
    let orders = snapshot(ORDERS);
    let new_orders = snapshot(NEW_ORDER);
    let order_lines = snapshot(ORDER_LINE);

    // 1. Warehouse YTD equals the sum of its districts' YTDs.
    let warehouse_rows = snapshot(WAREHOUSE);
    if warehouse_rows.len() as u64 != warehouses {
        violations.push(format!(
            "tpcc: expected {warehouses} warehouse rows, found {}",
            warehouse_rows.len()
        ));
    }
    for (key, row) in &warehouse_rows {
        let w = (key.row >> 32) as u32;
        let w_ytd = col_int(row, 0);
        let district_sum: i64 = districts
            .iter()
            .filter(|(k, _)| (k.row >> 32) as u32 == w)
            .map(|(_, r)| col_int(r, 0))
            .sum();
        if w_ytd != district_sum {
            violations.push(format!(
                "tpcc: warehouse {w} w_ytd {w_ytd} != sum of district YTDs {district_sum}"
            ));
        }
    }

    // 2. Per district: order-id counter vs ORDERS vs NEW_ORDER counts.
    for (key, row) in &districts {
        let w = (key.row >> 32) as u32;
        let d = key.row & 0xffff_ffff;
        let issued = col_int(row, 1) - 1; // d_next_o_id starts at 1
        let order_count = orders
            .iter()
            .filter(|(k, _)| {
                let (ow, od, _) = order_key_parts(GlobalKey::new(ORDERS, k.row));
                ow == w && od == d
            })
            .count() as i64;
        let new_order_count = new_orders
            .iter()
            .filter(|(k, _)| {
                let (ow, od, _) = order_key_parts(GlobalKey::new(NEW_ORDER, k.row));
                ow == w && od == d
            })
            .count() as i64;
        if issued != order_count || issued != new_order_count {
            violations.push(format!(
                "tpcc: district ({w},{d}) issued {issued} order ids but has \
                 {order_count} ORDERS / {new_order_count} NEW_ORDER rows"
            ));
        }
    }

    // 3. Per warehouse: declared order-line counts vs actual ORDER_LINE rows.
    for w in 1..=config.total_warehouses() {
        let declared: i64 = orders
            .iter()
            .filter(|(k, _)| (k.row >> 32) as u32 == w)
            .map(|(_, r)| col_int(r, 0))
            .sum();
        let actual = order_lines
            .iter()
            .filter(|(k, _)| (k.row >> 32) as u32 == w)
            .count() as i64;
        if declared != actual {
            violations.push(format!(
                "tpcc: warehouse {w} ORDERS declare {declared} line(s) but \
                 ORDER_LINE holds {actual}"
            ));
        }
    }

    // 4. Global: every committed order line decremented exactly one stock row.
    let stock_consumed: i64 = snapshot(STOCK)
        .iter()
        .map(|(_, r)| INITIAL_STOCK - col_int(r, 0))
        .sum();
    let total_lines = order_lines.len() as i64;
    if stock_consumed != total_lines {
        violations.push(format!(
            "tpcc: {stock_consumed} unit(s) of stock consumed but {total_lines} \
             order line(s) exist"
        ));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn small_config() -> TpccConfig {
        let mut cfg = TpccConfig::new(2, 2);
        cfg.items = 50;
        cfg.customers_per_district = 20;
        cfg
    }

    #[test]
    fn mix_weights_cover_all_profiles() {
        let generator = TpccGenerator::new(small_config());
        let mut rng = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            let txn = generator.pick_transaction(&mut rng);
            *counts.entry(txn.name()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 5);
        let neworder = counts["NewOrder"] as f64 / 5000.0;
        assert!((neworder - 0.45).abs() < 0.05, "NewOrder share {neworder}");
    }

    #[test]
    fn payment_distributed_ratio_controls_cross_node_access() {
        let cfg = small_config()
            .with_only(TpccTransaction::Payment)
            .with_distributed_ratio(0.5);
        let partitioner = cfg.partitioner();
        let generator = TpccGenerator::new(cfg);
        let mut rng = rng();
        let mut distributed = 0;
        let n = 1000;
        for _ in 0..n {
            let spec = generator.payment(&mut rng);
            if partitioner.involved_nodes(&spec.keys()).len() > 1 {
                distributed += 1;
            }
        }
        let ratio = distributed as f64 / n as f64;
        assert!((ratio - 0.5).abs() < 0.07, "distributed ratio {ratio}");
    }

    #[test]
    fn new_order_touches_warehouse_district_stock() {
        let generator = TpccGenerator::new(small_config());
        let spec = generator.new_order(&mut rng());
        let tables: Vec<TableId> = spec.keys().iter().map(|k| k.table).collect();
        assert!(tables.contains(&WAREHOUSE));
        assert!(tables.contains(&DISTRICT));
        assert!(tables.contains(&STOCK));
        assert!(tables.contains(&ORDER_LINE));
        assert_eq!(spec.rounds.len(), 2, "NewOrder is interactive (two rounds)");
        assert!(spec.op_count() >= 5 + 3);
    }

    #[test]
    fn order_ids_are_unique_across_generated_orders() {
        let generator = TpccGenerator::new(small_config());
        let mut rng = rng();
        let mut order_keys = std::collections::HashSet::new();
        for _ in 0..100 {
            let spec = generator.new_order(&mut rng);
            for key in spec.keys() {
                if key.table == ORDERS {
                    assert!(order_keys.insert(key), "duplicate order key {key:?}");
                }
            }
        }
    }

    #[test]
    fn loader_distributes_warehouses_across_nodes() {
        use geotp_net::{NetworkBuilder, NodeId};
        let mut rt = geotp_simrt::Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1).build();
            let cfg = small_config();
            let generator = TpccGenerator::new(cfg.clone());
            let sources: Vec<_> = (0..2)
                .map(|i| {
                    DataSource::new(
                        geotp_datasource::DataSourceConfig::new(NodeId::data_source(i)),
                        Rc::clone(&net),
                    )
                })
                .collect();
            generator.load(&sources);
            // Each node hosts 2 warehouses worth of rows.
            assert!(sources[0].engine().record_count() > 0);
            assert!(sources[1].engine().record_count() > 0);
            // Warehouse 1 lives on node 0, warehouse 3 on node 1.
            assert!(sources[0]
                .engine()
                .peek(wh_key(WAREHOUSE, 1, 0).storage_key())
                .is_some());
            assert!(sources[1]
                .engine()
                .peek(wh_key(WAREHOUSE, 3, 0).storage_key())
                .is_some());
            assert!(sources[0]
                .engine()
                .peek(wh_key(WAREHOUSE, 3, 0).storage_key())
                .is_none());
        });
    }

    #[test]
    fn read_only_profiles_contain_no_writes() {
        let generator = TpccGenerator::new(small_config());
        let mut rng = rng();
        let status = generator.order_status(&mut rng);
        assert!(status.all_ops().all(|op| !op.is_write()));
        let stock = generator.stock_level(&mut rng);
        assert!(stock.all_ops().all(|op| !op.is_write()));
        assert_eq!(stock.op_count(), 21);
    }
}
