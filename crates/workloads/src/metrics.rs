//! Measurement plumbing: latency histograms, percentiles, throughput and
//! abort-rate accounting, CDFs and throughput timelines.

use std::time::Duration;

use geotp_middleware::{AbortReason, TxnOutcome};
use geotp_simrt::SimInstant;

/// A logarithmically-bucketed latency histogram (1 µs – ~1 hour range) with
/// exact tracking of count, sum, min and max.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket `i` counts samples in `[bucket_floor(i), bucket_floor(i+1))`,
    /// with sub-bucket resolution of 1/32 of each power of two.
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u128,
    min_micros: u64,
    max_micros: u64,
}

const SUB_BUCKETS: usize = 32;
const MAX_POWER: usize = 32; // 2^32 µs ≈ 1.2 hours

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; MAX_POWER * SUB_BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    fn bucket_index(micros: u64) -> usize {
        if micros < SUB_BUCKETS as u64 {
            return micros as usize;
        }
        let power = 63 - micros.leading_zeros() as usize;
        let base = (power.saturating_sub(4)).min(MAX_POWER - 1) * SUB_BUCKETS;
        let sub = ((micros >> power.saturating_sub(5)) as usize) & (SUB_BUCKETS - 1);
        (base + sub).min(MAX_POWER * SUB_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let power = index / SUB_BUCKETS + 4;
        let sub = (index % SUB_BUCKETS) as u64;
        (1u64 << power) + (sub << (power - 5))
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.sum_micros += micros as u128;
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros((self.sum_micros / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_micros)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// Latency at the given percentile (0.0–100.0), approximated by the
    /// bucket's representative value.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return Duration::from_micros(Self::bucket_value(idx).max(self.min_micros));
            }
        }
        self.max()
    }

    /// Extract `(latency, cumulative_fraction)` points for a CDF plot.
    pub fn cdf(&self, points: usize) -> Vec<(Duration, f64)> {
        if self.count == 0 || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                (self.percentile(frac * 100.0), frac)
            })
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// Throughput over time: committed transactions per window, used for the
/// dynamic-latency timeline of Fig. 11b.
#[derive(Debug, Clone)]
pub struct ThroughputTimeline {
    window: Duration,
    start: SimInstant,
    commits_per_window: Vec<u64>,
}

impl ThroughputTimeline {
    /// Create a timeline with the given window length starting at `start`.
    pub fn new(start: SimInstant, window: Duration) -> Self {
        Self {
            window,
            start,
            commits_per_window: Vec::new(),
        }
    }

    /// Record one committed transaction finishing at `at`.
    pub fn record_commit(&mut self, at: SimInstant) {
        let elapsed = at.duration_since(self.start);
        let idx = (elapsed.as_micros() / self.window.as_micros().max(1)) as usize;
        if self.commits_per_window.len() <= idx {
            self.commits_per_window.resize(idx + 1, 0);
        }
        self.commits_per_window[idx] += 1;
    }

    /// Throughput series in transactions/second per window.
    pub fn series_tps(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.commits_per_window
            .iter()
            .map(|c| *c as f64 / secs)
            .collect()
    }
}

/// Collects transaction outcomes for one benchmark run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    started_at: SimInstant,
    window: Duration,
    committed: u64,
    aborted: u64,
    admission_rejections: u64,
    execution_failures: u64,
    prepare_failures: u64,
    commit_latency: Histogram,
    distributed_commit_latency: Histogram,
    centralized_commit_latency: Histogram,
    timeline: ThroughputTimeline,
}

impl MetricsCollector {
    /// Start collecting at `started_at` with a 1-second throughput window.
    pub fn new(started_at: SimInstant) -> Self {
        Self::with_window(started_at, Duration::from_secs(1))
    }

    /// Start collecting with a custom throughput window.
    pub fn with_window(started_at: SimInstant, window: Duration) -> Self {
        Self {
            started_at,
            window,
            committed: 0,
            aborted: 0,
            admission_rejections: 0,
            execution_failures: 0,
            prepare_failures: 0,
            commit_latency: Histogram::new(),
            distributed_commit_latency: Histogram::new(),
            centralized_commit_latency: Histogram::new(),
            timeline: ThroughputTimeline::new(started_at, window),
        }
    }

    /// Record one transaction outcome observed at virtual time `at`.
    pub fn record(&mut self, outcome: &TxnOutcome, at: SimInstant) {
        if outcome.committed {
            self.committed += 1;
            self.commit_latency.record(outcome.latency);
            if outcome.distributed {
                self.distributed_commit_latency.record(outcome.latency);
            } else {
                self.centralized_commit_latency.record(outcome.latency);
            }
            self.timeline.record_commit(at);
        } else {
            self.aborted += 1;
            match outcome.abort_reason {
                Some(AbortReason::AdmissionRejected) => self.admission_rejections += 1,
                Some(AbortReason::ExecutionFailed) => self.execution_failures += 1,
                Some(AbortReason::PrepareFailed) => self.prepare_failures += 1,
                _ => {}
            }
        }
    }

    /// Committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Total attempts.
    pub fn attempts(&self) -> u64 {
        self.committed + self.aborted
    }

    /// Abort rate over all attempts.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.aborted as f64 / self.attempts() as f64
        }
    }

    /// Throughput in committed transactions per second over `elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / elapsed.as_secs_f64()
        }
    }

    /// Latency histogram over committed transactions.
    pub fn latency(&self) -> &Histogram {
        &self.commit_latency
    }

    /// Latency histogram over committed *distributed* transactions.
    pub fn distributed_latency(&self) -> &Histogram {
        &self.distributed_commit_latency
    }

    /// Latency histogram over committed *centralized* transactions.
    pub fn centralized_latency(&self) -> &Histogram {
        &self.centralized_commit_latency
    }

    /// Throughput timeline.
    pub fn timeline(&self) -> &ThroughputTimeline {
        &self.timeline
    }

    /// When collection started.
    pub fn started_at(&self) -> SimInstant {
        self.started_at
    }

    /// The configured throughput window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Breakdown of abort causes `(admission, execution, prepare)`.
    pub fn abort_breakdown(&self) -> (u64, u64, u64) {
        (
            self.admission_rejections,
            self.execution_failures,
            self.prepare_failures,
        )
    }

    /// Merge another collector (e.g. from another terminal) into this one.
    pub fn merge(&mut self, other: &MetricsCollector) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.admission_rejections += other.admission_rejections;
        self.execution_failures += other.execution_failures;
        self.prepare_failures += other.prepare_failures;
        self.commit_latency.merge(&other.commit_latency);
        self.distributed_commit_latency
            .merge(&other.distributed_commit_latency);
        self.centralized_commit_latency
            .merge(&other.centralized_commit_latency);
        for (idx, count) in other.timeline.commits_per_window.iter().enumerate() {
            if self.timeline.commits_per_window.len() <= idx {
                self.timeline.commits_per_window.resize(idx + 1, 0);
            }
            self.timeline.commits_per_window[idx] += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_middleware::LatencyBreakdown;

    fn outcome(committed: bool, ms: u64, distributed: bool) -> TxnOutcome {
        TxnOutcome {
            gtrid: 0,
            committed,
            abort_reason: if committed {
                None
            } else {
                Some(AbortReason::ExecutionFailed)
            },
            latency: Duration::from_millis(ms),
            breakdown: LatencyBreakdown::default(),
            distributed,
            rows: vec![],
            ..TxnOutcome::default()
        }
    }

    #[test]
    fn histogram_percentiles_are_monotonic_and_close() {
        let mut h = Histogram::new();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p99 && p99 <= p999);
        // Log buckets keep ~6% relative error.
        assert!(
            (p50.as_millis() as i64 - 500).unsigned_abs() < 40,
            "p50={p50:?}"
        );
        assert!(
            (p99.as_millis() as i64 - 990).unsigned_abs() < 70,
            "p99={p99:?}"
        );
        assert!(h.max() == Duration::from_millis(1000));
        assert!(h.min() == Duration::from_millis(1));
        assert_eq!(h.mean(), Duration::from_micros(500_500));
    }

    #[test]
    fn histogram_cdf_is_nondecreasing() {
        let mut h = Histogram::new();
        for ms in [1u64, 5, 10, 10, 20, 100, 200, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let cdf = h.cdf(20);
        assert_eq!(cdf.len(), 20);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collector_tracks_throughput_and_abort_rate() {
        let start = SimInstant::ZERO;
        let mut c = MetricsCollector::new(start);
        for i in 0..80 {
            c.record(
                &outcome(true, 50, i % 5 == 0),
                start + Duration::from_millis(100 * i),
            );
        }
        for _ in 0..20 {
            c.record(&outcome(false, 10, true), start + Duration::from_secs(1));
        }
        assert_eq!(c.committed(), 80);
        assert_eq!(c.aborted(), 20);
        assert!((c.abort_rate() - 0.2).abs() < 1e-9);
        assert!((c.throughput(Duration::from_secs(8)) - 10.0).abs() < 1e-9);
        assert_eq!(c.abort_breakdown(), (0, 20, 0));
        assert_eq!(c.distributed_latency().count(), 16);
        assert_eq!(c.centralized_latency().count(), 64);
        let series = c.timeline().series_tps();
        assert!(!series.is_empty());
        assert!((series[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_collectors() {
        let start = SimInstant::ZERO;
        let mut a = MetricsCollector::new(start);
        let mut b = MetricsCollector::new(start);
        a.record(&outcome(true, 10, false), start);
        b.record(&outcome(true, 30, true), start + Duration::from_secs(2));
        b.record(&outcome(false, 5, true), start);
        a.merge(&b);
        assert_eq!(a.committed(), 2);
        assert_eq!(a.aborted(), 1);
        assert_eq!(a.latency().count(), 2);
        assert_eq!(a.timeline().series_tps().len(), 3);
    }
}
