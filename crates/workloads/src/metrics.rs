//! Measurement plumbing: latency histograms, percentiles, throughput and
//! abort-rate accounting, CDFs and throughput timelines.

use std::time::Duration;

use geotp_middleware::{AbortReason, TxnOutcome, ABORT_REASONS};
use geotp_simrt::SimInstant;

/// The log-bucketed latency histogram now lives in `geotp-telemetry` (the
/// unified metrics registry shares it); re-exported so existing
/// `geotp_workloads::Histogram` callers keep working.
pub use geotp_telemetry::Histogram;

/// Throughput over time: committed transactions per window, used for the
/// dynamic-latency timeline of Fig. 11b.
#[derive(Debug, Clone)]
pub struct ThroughputTimeline {
    window: Duration,
    start: SimInstant,
    commits_per_window: Vec<u64>,
}

impl ThroughputTimeline {
    /// Create a timeline with the given window length starting at `start`.
    pub fn new(start: SimInstant, window: Duration) -> Self {
        Self {
            window,
            start,
            commits_per_window: Vec::new(),
        }
    }

    /// Record one committed transaction finishing at `at`.
    pub fn record_commit(&mut self, at: SimInstant) {
        let elapsed = at.duration_since(self.start);
        let idx = (elapsed.as_micros() / self.window.as_micros().max(1)) as usize;
        if self.commits_per_window.len() <= idx {
            self.commits_per_window.resize(idx + 1, 0);
        }
        self.commits_per_window[idx] += 1;
    }

    /// Throughput series in transactions/second per window.
    pub fn series_tps(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.commits_per_window
            .iter()
            .map(|c| *c as f64 / secs)
            .collect()
    }

    /// When this timeline starts.
    pub fn start(&self) -> SimInstant {
        self.start
    }

    /// The window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Merge another timeline into this one, aligning both on the earliest
    /// start so commits land in the window they actually happened in (merging
    /// bin-by-bin without alignment silently shifts the later timeline's
    /// history earlier). Window lengths must match.
    ///
    /// # Panics
    ///
    /// Panics when the window lengths differ — there is no faithful rebinning
    /// between different resolutions.
    pub fn merge(&mut self, other: &ThroughputTimeline) {
        assert_eq!(
            self.window, other.window,
            "cannot merge throughput timelines with different windows"
        );
        let window_micros = self.window.as_micros().max(1) as u64;
        let new_start =
            SimInstant::from_micros(self.start.as_micros().min(other.start.as_micros()));
        let self_shift = (self.start.as_micros() - new_start.as_micros()) / window_micros;
        if self_shift > 0 {
            let mut shifted = vec![0u64; self_shift as usize];
            shifted.extend_from_slice(&self.commits_per_window);
            self.commits_per_window = shifted;
            self.start = new_start;
        }
        let other_shift =
            ((other.start.as_micros() - new_start.as_micros()) / window_micros) as usize;
        let needed = other_shift + other.commits_per_window.len();
        if self.commits_per_window.len() < needed {
            self.commits_per_window.resize(needed, 0);
        }
        for (idx, count) in other.commits_per_window.iter().enumerate() {
            self.commits_per_window[other_shift + idx] += count;
        }
    }
}

/// Collects transaction outcomes for one benchmark run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    started_at: SimInstant,
    window: Duration,
    committed: u64,
    aborted: u64,
    /// Aborts per cause, indexed by [`AbortReason::ordinal`]. Every variant
    /// is counted — nothing falls through a catch-all arm.
    aborts_by_reason: [u64; ABORT_REASONS.len()],
    commit_latency: Histogram,
    distributed_commit_latency: Histogram,
    centralized_commit_latency: Histogram,
    timeline: ThroughputTimeline,
}

impl MetricsCollector {
    /// Start collecting at `started_at` with a 1-second throughput window.
    pub fn new(started_at: SimInstant) -> Self {
        Self::with_window(started_at, Duration::from_secs(1))
    }

    /// Start collecting with a custom throughput window.
    pub fn with_window(started_at: SimInstant, window: Duration) -> Self {
        Self {
            started_at,
            window,
            committed: 0,
            aborted: 0,
            aborts_by_reason: [0; ABORT_REASONS.len()],
            commit_latency: Histogram::new(),
            distributed_commit_latency: Histogram::new(),
            centralized_commit_latency: Histogram::new(),
            timeline: ThroughputTimeline::new(started_at, window),
        }
    }

    /// Record one transaction outcome observed at virtual time `at`.
    pub fn record(&mut self, outcome: &TxnOutcome, at: SimInstant) {
        if outcome.committed {
            self.committed += 1;
            self.commit_latency.record(outcome.latency);
            if outcome.distributed {
                self.distributed_commit_latency.record(outcome.latency);
            } else {
                self.centralized_commit_latency.record(outcome.latency);
            }
            self.timeline.record_commit(at);
        } else {
            self.aborted += 1;
            if let Some(reason) = outcome.abort_reason {
                self.aborts_by_reason[reason.ordinal()] += 1;
            }
        }
    }

    /// Committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Total attempts.
    pub fn attempts(&self) -> u64 {
        self.committed + self.aborted
    }

    /// Abort rate over all attempts.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.aborted as f64 / self.attempts() as f64
        }
    }

    /// Throughput in committed transactions per second over `elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / elapsed.as_secs_f64()
        }
    }

    /// Latency histogram over committed transactions.
    pub fn latency(&self) -> &Histogram {
        &self.commit_latency
    }

    /// Latency histogram over committed *distributed* transactions.
    pub fn distributed_latency(&self) -> &Histogram {
        &self.distributed_commit_latency
    }

    /// Latency histogram over committed *centralized* transactions.
    pub fn centralized_latency(&self) -> &Histogram {
        &self.centralized_commit_latency
    }

    /// Throughput timeline.
    pub fn timeline(&self) -> &ThroughputTimeline {
        &self.timeline
    }

    /// When collection started.
    pub fn started_at(&self) -> SimInstant {
        self.started_at
    }

    /// The configured throughput window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Aborts attributed to one specific cause.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.aborts_by_reason[reason.ordinal()]
    }

    /// The full abort breakdown as `(reason, count)` pairs in
    /// [`ABORT_REASONS`] order, zero counts included.
    pub fn abort_breakdown_full(&self) -> Vec<(AbortReason, u64)> {
        ABORT_REASONS
            .iter()
            .map(|r| (*r, self.aborts_by_reason[r.ordinal()]))
            .collect()
    }

    /// Legacy 3-way breakdown `(admission, execution, prepare)`; prefer
    /// [`Self::abort_breakdown_full`], which covers every cause.
    pub fn abort_breakdown(&self) -> (u64, u64, u64) {
        (
            self.aborts_for(AbortReason::AdmissionRejected),
            self.aborts_for(AbortReason::ExecutionFailed),
            self.aborts_for(AbortReason::PrepareFailed),
        )
    }

    /// Merge another collector (e.g. from another terminal) into this one.
    /// Timelines align on the earliest start (see
    /// [`ThroughputTimeline::merge`]), so collectors that began at different
    /// virtual instants merge without shifting either history.
    pub fn merge(&mut self, other: &MetricsCollector) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        for (a, b) in self
            .aborts_by_reason
            .iter_mut()
            .zip(&other.aborts_by_reason)
        {
            *a += b;
        }
        self.commit_latency.merge(&other.commit_latency);
        self.distributed_commit_latency
            .merge(&other.distributed_commit_latency);
        self.centralized_commit_latency
            .merge(&other.centralized_commit_latency);
        self.timeline.merge(&other.timeline);
        self.started_at = SimInstant::from_micros(
            self.started_at
                .as_micros()
                .min(other.started_at.as_micros()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_middleware::LatencyBreakdown;

    fn outcome(committed: bool, ms: u64, distributed: bool) -> TxnOutcome {
        TxnOutcome {
            gtrid: 0,
            committed,
            abort_reason: if committed {
                None
            } else {
                Some(AbortReason::ExecutionFailed)
            },
            latency: Duration::from_millis(ms),
            breakdown: LatencyBreakdown::default(),
            distributed,
            rows: vec![],
            ..TxnOutcome::default()
        }
    }

    #[test]
    fn histogram_percentiles_are_monotonic_and_close() {
        let mut h = Histogram::new();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p99 && p99 <= p999);
        // Log buckets keep ~6% relative error.
        assert!(
            (p50.as_millis() as i64 - 500).unsigned_abs() < 40,
            "p50={p50:?}"
        );
        assert!(
            (p99.as_millis() as i64 - 990).unsigned_abs() < 70,
            "p99={p99:?}"
        );
        assert!(h.max() == Duration::from_millis(1000));
        assert!(h.min() == Duration::from_millis(1));
        assert_eq!(h.mean(), Duration::from_micros(500_500));
    }

    #[test]
    fn histogram_cdf_is_nondecreasing() {
        let mut h = Histogram::new();
        for ms in [1u64, 5, 10, 10, 20, 100, 200, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let cdf = h.cdf(20);
        assert_eq!(cdf.len(), 20);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collector_tracks_throughput_and_abort_rate() {
        let start = SimInstant::ZERO;
        let mut c = MetricsCollector::new(start);
        for i in 0..80 {
            c.record(
                &outcome(true, 50, i % 5 == 0),
                start + Duration::from_millis(100 * i),
            );
        }
        for _ in 0..20 {
            c.record(&outcome(false, 10, true), start + Duration::from_secs(1));
        }
        assert_eq!(c.committed(), 80);
        assert_eq!(c.aborted(), 20);
        assert!((c.abort_rate() - 0.2).abs() < 1e-9);
        assert!((c.throughput(Duration::from_secs(8)) - 10.0).abs() < 1e-9);
        assert_eq!(c.abort_breakdown(), (0, 20, 0));
        assert_eq!(c.distributed_latency().count(), 16);
        assert_eq!(c.centralized_latency().count(), 64);
        let series = c.timeline().series_tps();
        assert!(!series.is_empty());
        assert!((series[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn every_abort_reason_is_counted() {
        // Regression: Overloaded, SessionExpired, CoordinatorFenced,
        // ClientDisconnected (and friends) used to fall through a `_ => {}`
        // arm and vanish from the breakdown.
        let start = SimInstant::ZERO;
        let mut c = MetricsCollector::new(start);
        for (i, reason) in ABORT_REASONS.iter().enumerate() {
            for _ in 0..=i {
                c.record(
                    &TxnOutcome::aborted(*reason, Duration::from_millis(1), false),
                    start,
                );
            }
        }
        assert_eq!(c.aborted(), (1..=ABORT_REASONS.len() as u64).sum::<u64>());
        for (i, (reason, count)) in c.abort_breakdown_full().iter().enumerate() {
            assert_eq!(
                *count,
                i as u64 + 1,
                "abort cause {reason:?} must be counted, not dropped"
            );
            assert_eq!(c.aborts_for(*reason), i as u64 + 1);
        }
        // The full breakdown accounts for every abort.
        let total: u64 = c.abort_breakdown_full().iter().map(|(_, n)| n).sum();
        assert_eq!(total, c.aborted());
    }

    #[test]
    fn merge_combines_collectors() {
        let start = SimInstant::ZERO;
        let mut a = MetricsCollector::new(start);
        let mut b = MetricsCollector::new(start);
        a.record(&outcome(true, 10, false), start);
        b.record(&outcome(true, 30, true), start + Duration::from_secs(2));
        b.record(&outcome(false, 5, true), start);
        a.merge(&b);
        assert_eq!(a.committed(), 2);
        assert_eq!(a.aborted(), 1);
        assert_eq!(a.latency().count(), 2);
        assert_eq!(a.timeline().series_tps().len(), 3);
    }

    #[test]
    fn merge_aligns_timelines_with_different_starts() {
        // Regression: merging used to add bin i of `other` into bin i of
        // `self` even when the collectors started at different virtual
        // instants, silently time-shifting the later collector's commits.
        let early = SimInstant::ZERO;
        let late = early + Duration::from_secs(3);
        let mut a = MetricsCollector::new(late);
        let mut b = MetricsCollector::new(early);
        // `a` starts 3 s in and commits immediately (absolute t = 3 s).
        a.record(&outcome(true, 10, false), late);
        // `b` starts at zero and commits at absolute t = 1 s.
        b.record(&outcome(true, 10, false), early + Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(
            a.started_at(),
            early,
            "merged collector adopts earliest start"
        );
        assert_eq!(a.timeline().start(), early);
        let series = a.timeline().series_tps();
        assert_eq!(series.len(), 4, "windows span the union of both histories");
        assert_eq!(
            series,
            vec![0.0, 1.0, 0.0, 1.0],
            "each commit stays in the window it actually happened in"
        );
        // Symmetric case: merging the late collector into the early one.
        let mut c = MetricsCollector::new(early);
        c.record(&outcome(true, 10, false), early + Duration::from_secs(1));
        let mut d = MetricsCollector::new(late);
        d.record(&outcome(true, 10, false), late);
        c.merge(&d);
        assert_eq!(c.timeline().series_tps(), series);
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn merging_mismatched_windows_is_rejected() {
        let mut a = ThroughputTimeline::new(SimInstant::ZERO, Duration::from_secs(1));
        let b = ThroughputTimeline::new(SimInstant::ZERO, Duration::from_millis(100));
        a.merge(&b);
    }
}
