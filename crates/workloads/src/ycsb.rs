//! The transactional YCSB variant used in the paper's evaluation (§VII-A2):
//! each transaction has 5 operations, each a 50/50 read or write, over a
//! `usertable` partitioned with a fixed number of records per data node.
//! The *skew factor* (Zipfian theta) controls contention and the
//! *distributed-transaction ratio* controls how many transactions touch more
//! than one data node.

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{ClientOp, GlobalKey, Partitioner, TransactionSpec};
use geotp_storage::{Row, TableId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::zipfian::ZipfianGenerator;

/// The `usertable` table id.
pub const USERTABLE: TableId = TableId(0);

/// The paper's three contention presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contention {
    /// Skew factor 0.3.
    Low,
    /// Skew factor 0.9.
    Medium,
    /// Skew factor 1.5.
    High,
}

impl Contention {
    /// The Zipfian theta for this preset.
    pub fn theta(&self) -> f64 {
        match self {
            Contention::Low => 0.3,
            Contention::Medium => 0.9,
            Contention::High => 1.5,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::Medium => "medium",
            Contention::High => "high",
        }
    }
}

/// YCSB workload configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbConfig {
    /// Records hosted per data node (paper: 1 million).
    pub records_per_node: u64,
    /// Number of data nodes.
    pub nodes: u32,
    /// Operations per transaction (paper default: 5).
    pub ops_per_txn: usize,
    /// Probability that an operation is a read (paper default: 0.5).
    pub read_ratio: f64,
    /// Zipfian skew factor.
    pub theta: f64,
    /// Fraction of transactions that access more than one data node.
    pub distributed_ratio: f64,
    /// Number of data nodes a distributed transaction touches (paper: 2).
    pub nodes_per_distributed_txn: usize,
    /// Number of interactive rounds the operations are spread over.
    pub rounds: usize,
    /// If set, centralized transactions always run on this node and
    /// distributed transactions always include it (the Fig. 1b motivating
    /// setup where all centralized traffic hits DS1).
    pub home_node: Option<u32>,
}

impl YcsbConfig {
    /// The paper's default configuration scaled to `records_per_node`.
    pub fn new(nodes: u32, records_per_node: u64) -> Self {
        Self {
            records_per_node,
            nodes,
            ops_per_txn: 5,
            read_ratio: 0.5,
            theta: Contention::Medium.theta(),
            distributed_ratio: 0.2,
            nodes_per_distributed_txn: 2,
            rounds: 1,
            home_node: None,
        }
    }

    /// Set the contention preset.
    pub fn with_contention(mut self, contention: Contention) -> Self {
        self.theta = contention.theta();
        self
    }

    /// Set the distributed-transaction ratio.
    pub fn with_distributed_ratio(mut self, ratio: f64) -> Self {
        self.distributed_ratio = ratio;
        self
    }

    /// The partitioner matching this workload's layout.
    pub fn partitioner(&self) -> Partitioner {
        Partitioner::Range {
            rows_per_node: self.records_per_node,
            nodes: self.nodes,
        }
    }
}

/// Generates YCSB transactions.
pub struct YcsbGenerator {
    config: YcsbConfig,
    zipf: ZipfianGenerator,
}

impl YcsbGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: YcsbConfig) -> Self {
        assert!(config.nodes >= 1);
        assert!(config.ops_per_txn >= 1);
        assert!(config.rounds >= 1);
        Self {
            zipf: ZipfianGenerator::new(config.records_per_node, config.theta),
            config,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Populate every data source with its partition of the usertable.
    /// Records start with a balance of 10 000.
    pub fn load(&self, sources: &[Rc<DataSource>]) {
        for (node, source) in sources.iter().enumerate() {
            let base = node as u64 * self.config.records_per_node;
            for row in 0..self.config.records_per_node {
                source.load(
                    GlobalKey::new(USERTABLE, base + row).storage_key(),
                    Row::int(10_000),
                );
            }
        }
    }

    fn key_on_node(&self, node: u32, rng: &mut StdRng) -> GlobalKey {
        let local = self.zipf.next(rng);
        GlobalKey::new(
            USERTABLE,
            node as u64 * self.config.records_per_node + local,
        )
    }

    fn pick_nodes(&self, rng: &mut StdRng, distributed: bool) -> Vec<u32> {
        let home = self
            .config
            .home_node
            .unwrap_or_else(|| rng.gen_range(0..self.config.nodes));
        if !distributed || self.config.nodes == 1 {
            return vec![home];
        }
        let mut nodes = vec![home];
        let wanted = self
            .config
            .nodes_per_distributed_txn
            .clamp(2, self.config.nodes as usize);
        while nodes.len() < wanted {
            let candidate = rng.gen_range(0..self.config.nodes);
            if !nodes.contains(&candidate) {
                nodes.push(candidate);
            }
        }
        nodes
    }

    /// Generate one transaction. Returns the spec and whether it is
    /// distributed by construction.
    pub fn generate(&self, rng: &mut StdRng) -> (TransactionSpec, bool) {
        let distributed = rng.gen::<f64>() < self.config.distributed_ratio;
        let nodes = self.pick_nodes(rng, distributed);
        let mut ops = Vec::with_capacity(self.config.ops_per_txn);
        let mut used = Vec::new();
        for i in 0..self.config.ops_per_txn {
            // Spread operations over the involved nodes round-robin so every
            // involved node receives at least one operation.
            let node = nodes[i % nodes.len()];
            let mut key = self.key_on_node(node, rng);
            for _ in 0..8 {
                if !used.contains(&key) {
                    break;
                }
                key = self.key_on_node(node, rng);
            }
            used.push(key);
            let op = if rng.gen::<f64>() < self.config.read_ratio {
                ClientOp::Read(key)
            } else {
                ClientOp::add(key, 1)
            };
            ops.push(op);
        }

        let spec = if self.config.rounds <= 1 {
            TransactionSpec::single_round(ops)
        } else {
            let rounds = self.config.rounds.min(ops.len());
            let chunk = ops.len().div_ceil(rounds);
            TransactionSpec::multi_round(ops.chunks(chunk).map(<[ClientOp]>::to_vec).collect())
        };
        (spec, nodes.len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn contention_presets_match_paper() {
        assert_eq!(Contention::Low.theta(), 0.3);
        assert_eq!(Contention::Medium.theta(), 0.9);
        assert_eq!(Contention::High.theta(), 1.5);
    }

    #[test]
    fn distributed_ratio_is_respected() {
        let config = YcsbConfig::new(4, 1000).with_distributed_ratio(0.4);
        let generator = YcsbGenerator::new(config);
        let partitioner = config.partitioner();
        let mut rng = rng();
        let mut distributed = 0;
        let n = 2000;
        for _ in 0..n {
            let (spec, is_distributed) = generator.generate(&mut rng);
            let involved = partitioner.involved_nodes(&spec.keys());
            assert_eq!(involved.len() > 1, is_distributed);
            if is_distributed {
                distributed += 1;
            }
            assert_eq!(spec.op_count(), 5);
        }
        let ratio = distributed as f64 / n as f64;
        assert!(
            (ratio - 0.4).abs() < 0.05,
            "observed distributed ratio {ratio}"
        );
    }

    #[test]
    fn home_node_pins_centralized_transactions() {
        let mut config = YcsbConfig::new(2, 1000).with_distributed_ratio(0.2);
        config.home_node = Some(0);
        let generator = YcsbGenerator::new(config);
        let partitioner = config.partitioner();
        let mut rng = rng();
        for _ in 0..500 {
            let (spec, is_distributed) = generator.generate(&mut rng);
            let involved = partitioner.involved_nodes(&spec.keys());
            assert!(involved.contains(&0), "home node must always participate");
            if !is_distributed {
                assert_eq!(involved, vec![0]);
            }
        }
    }

    #[test]
    fn read_ratio_and_write_mix() {
        let mut config = YcsbConfig::new(1, 1000);
        config.read_ratio = 0.5;
        config.ops_per_txn = 10;
        let generator = YcsbGenerator::new(config);
        let mut rng = rng();
        let mut reads = 0;
        let mut total = 0;
        for _ in 0..500 {
            let (spec, _) = generator.generate(&mut rng);
            for op in spec.all_ops() {
                total += 1;
                if !op.is_write() {
                    reads += 1;
                }
            }
        }
        let ratio = reads as f64 / total as f64;
        assert!((ratio - 0.5).abs() < 0.05, "read ratio {ratio}");
    }

    #[test]
    fn rounds_split_operations() {
        let mut config = YcsbConfig::new(2, 1000);
        config.rounds = 3;
        config.ops_per_txn = 6;
        let generator = YcsbGenerator::new(config);
        let (spec, _) = generator.generate(&mut rng());
        assert_eq!(spec.rounds.len(), 3);
        assert_eq!(spec.op_count(), 6);
    }

    #[test]
    fn skew_concentrates_keys_within_each_partition() {
        let config = YcsbConfig::new(2, 1000).with_contention(Contention::High);
        let generator = YcsbGenerator::new(config);
        let mut rng = rng();
        let mut hot = 0;
        let mut total = 0;
        for _ in 0..1000 {
            let (spec, _) = generator.generate(&mut rng);
            for key in spec.keys() {
                total += 1;
                if key.row % 1000 < 10 {
                    hot += 1;
                }
            }
        }
        assert!(
            hot as f64 / total as f64 > 0.5,
            "high contention should focus on hot keys ({hot}/{total})"
        );
    }

    #[test]
    fn load_populates_every_partition() {
        use geotp_net::{NetworkBuilder, NodeId};
        let mut rt = geotp_simrt::Runtime::new();
        rt.block_on(async {
            let net = NetworkBuilder::new(1).build();
            let config = YcsbConfig::new(2, 50);
            let generator = YcsbGenerator::new(config);
            let sources: Vec<_> = (0..2)
                .map(|i| {
                    DataSource::new(
                        geotp_datasource::DataSourceConfig::new(NodeId::data_source(i)),
                        Rc::clone(&net),
                    )
                })
                .collect();
            generator.load(&sources);
            assert_eq!(sources[0].engine().record_count(), 50);
            assert_eq!(sources[1].engine().record_count(), 50);
            assert!(sources[1]
                .engine()
                .peek(GlobalKey::new(USERTABLE, 50).storage_key())
                .is_some());
        });
    }
}
