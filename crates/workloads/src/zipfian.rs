//! Zipfian key chooser, following the YCSB reference implementation
//! (Gray et al.'s "Quickly generating billion-record synthetic databases"
//! rejection-free algorithm).

use rand::rngs::StdRng;
use rand::Rng;

/// Generates integers in `[0, n)` with a Zipfian distribution of parameter
/// `theta` (the paper's *skew factor*). Item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianGenerator {
    /// Create a generator over `items` items with skew `theta`.
    ///
    /// `theta = 0` degenerates to uniform; the paper uses 0.3 / 0.9 / 1.5 for
    /// low / medium / high contention. Values ≥ 1 are supported (the YCSB
    /// zeta recursion handles them, unlike the textbook closed form).
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian over an empty domain");
        assert!(theta >= 0.0, "theta must be non-negative");
        let zeta2theta = Self::zeta(2.min(items), theta);
        let zetan = Self::zeta(items, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 0..n {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
        }
        sum
    }

    /// Number of items in the domain.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next value in `[0, items)`.
    pub fn next(&self, rng: &mut StdRng) -> u64 {
        if self.theta < 1e-9 {
            return rng.gen_range(0..self.items);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = self.eta.mul_add(u, 1.0 - self.eta);
        ((self.items as f64) * spread.powf(self.alpha)) as u64 % self.items
    }

    /// Zeta value of the first two items (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw_histogram(items: u64, theta: f64, draws: usize) -> Vec<usize> {
        let gen = ZipfianGenerator::new(items, theta);
        let mut rng = StdRng::seed_from_u64(99);
        let mut hist = vec![0usize; items as usize];
        for _ in 0..draws {
            hist[gen.next(&mut rng) as usize] += 1;
        }
        hist
    }

    #[test]
    fn values_stay_in_range() {
        let gen = ZipfianGenerator::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(gen.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let hist = draw_histogram(10, 0.0, 50_000);
        for count in &hist {
            let frac = *count as f64 / 50_000.0;
            assert!((frac - 0.1).abs() < 0.02, "fraction {frac}");
        }
    }

    #[test]
    fn higher_theta_concentrates_on_hot_keys() {
        let low = draw_histogram(1000, 0.3, 50_000);
        let med = draw_histogram(1000, 0.9, 50_000);
        let high = draw_histogram(1000, 1.5, 50_000);
        let hot_share = |h: &Vec<usize>| {
            let hot: usize = h.iter().take(10).sum();
            hot as f64 / 50_000.0
        };
        let (l, m, h) = (hot_share(&low), hot_share(&med), hot_share(&high));
        assert!(
            l < m && m < h,
            "hot shares {l} {m} {h} must increase with theta"
        );
        assert!(
            h > 0.8,
            "theta=1.5 should send most accesses to the hottest keys ({h})"
        );
        assert!(l < 0.1, "theta=0.3 should be mild ({l})");
    }

    #[test]
    fn most_popular_item_is_item_zero() {
        let hist = draw_histogram(100, 0.99, 50_000);
        let max_idx = hist
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let gen = ZipfianGenerator::new(500, 0.9);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| gen.next(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| gen.next(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
