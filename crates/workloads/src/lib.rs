//! # geotp-workloads — benchmark workloads and measurement harness
//!
//! Re-implements the workloads the paper evaluates with (Benchbase-generated
//! YCSB and TPC-C) plus the measurement plumbing:
//!
//! * [`zipfian`]: the YCSB Zipfian key-chooser (the paper's *skew factor* is
//!   the Zipfian theta: 0.3 / 0.9 / 1.5 for low / medium / high contention),
//! * [`ycsb`]: the transactional YCSB variant (5 operations per transaction,
//!   50% reads / 50% writes, configurable distributed-transaction ratio),
//! * [`tpcc`]: a TPC-C implementation (NewOrder, Payment, OrderStatus,
//!   Delivery, StockLevel) over warehouse-partitioned data,
//! * [`metrics`]: latency histograms, percentiles, throughput and abort-rate
//!   accounting, CDF extraction and a throughput timeline,
//! * [`driver`]: a closed-loop terminal driver (the Benchbase stand-in) that
//!   runs any [`driver::TransactionService`] — the GeoTP middleware, the
//!   ScalarDB-style baseline or the distributed-database baseline.

pub mod driver;
pub mod metrics;
pub mod tpcc;
pub mod ycsb;
pub mod zipfian;

pub use driver::{
    run_session_benchmark, BenchmarkReport, DriverConfig, SessionDriverConfig, TransactionService,
    WorkloadMix,
};
pub use metrics::{Histogram, MetricsCollector, ThroughputTimeline};
pub use tpcc::{consistency_violations, TpccConfig, TpccGenerator, TpccTransaction};
pub use ycsb::{Contention, YcsbConfig, YcsbGenerator};
pub use zipfian::ZipfianGenerator;
