//! Scheduler-independence matrix: chaos traces are a pure function of
//! `(preset, seed, workload)` — never of the simulator's worker-shard
//! count. Three presets × three seeds run at `workers ∈ {1, 2, 4, 8}` and
//! must produce bit-identical fingerprints (plus one TPC-C drill, whose
//! multi-round statement streams exercise a different scheduling shape).
//!
//! The chaos deployment is a single `Rc`-shared object graph pinned to
//! shard 0, so this pins down exactly the property the sharded runtime
//! promises: extra shards idle at the conservative barrier without
//! perturbing the shard-0 schedule by a single poll.

use geotp_chaos::{traced, DrillWorkload, Scenario};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_worker_independent(scenario: Scenario, workload: DrillWorkload, seed: u64) {
    let baseline = scenario.run_with_workers(seed, workload, 1);
    assert!(
        baseline.invariants.all_hold(),
        "{} ({}) seed {} violated invariants at workers=1",
        scenario.name(),
        workload.name(),
        seed
    );
    for workers in &WORKER_COUNTS[1..] {
        let report = scenario.run_with_workers(seed, workload, *workers);
        assert_eq!(
            baseline.fingerprint,
            report.fingerprint,
            "{} ({}) seed {}: trace fingerprint diverged at workers={workers}",
            scenario.name(),
            workload.name(),
            seed
        );
        assert_eq!(
            baseline.trace,
            report.trace,
            "{} ({}) seed {}: fingerprints collided but traces differ at workers={workers}",
            scenario.name(),
            workload.name(),
            seed
        );
    }
}

#[test]
fn prepare_phase_crash_is_worker_independent() {
    for seed in 1..=3 {
        assert_worker_independent(Scenario::PreparePhaseCrash, DrillWorkload::Transfer, seed);
    }
}

#[test]
fn coordinator_failover_is_worker_independent() {
    for seed in 1..=3 {
        assert_worker_independent(Scenario::CoordinatorFailover, DrillWorkload::Transfer, seed);
    }
}

#[test]
fn wan_brownout_is_worker_independent() {
    for seed in 1..=3 {
        assert_worker_independent(Scenario::WanBrownout, DrillWorkload::Transfer, seed);
    }
}

#[test]
fn tpcc_drill_is_worker_independent() {
    assert_worker_independent(Scenario::PreparePhaseCrash, DrillWorkload::Tpcc, 1);
}

/// The trace oracle's verdict is part of the same promise: a traced run at
/// any worker count produces the identical fifth-checker verdict and the
/// identical violation list — both for a green preset and for the armed
/// write-ahead fail point (which every worker count must convict).
#[test]
fn trace_oracle_verdict_is_worker_independent() {
    for armed in [false, true] {
        let run = |workers: usize| {
            traced(|| {
                let (mut config, schedule) = Scenario::PreparePhaseCrash.build(2);
                config.commit_before_flush_bug = armed;
                config.workers = Some(workers);
                geotp_chaos::run_scenario(config, schedule)
            })
            .0
        };
        let baseline = run(1);
        assert_eq!(
            baseline.invariants.trace_ok, !armed,
            "armed={armed}: unexpected baseline verdict: {:?}",
            baseline.invariants.violations
        );
        for workers in [2, 4] {
            let report = run(workers);
            assert_eq!(
                baseline.invariants.trace_ok, report.invariants.trace_ok,
                "armed={armed}: trace verdict diverged at workers={workers}"
            );
            assert_eq!(
                baseline.invariants.violations, report.invariants.violations,
                "armed={armed}: violation lists diverged at workers={workers}"
            );
            assert_eq!(baseline.fingerprint, report.fingerprint);
        }
    }
}
