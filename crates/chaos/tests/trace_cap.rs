//! Bounded tracing under sustained load: a 200k-session `flash_crowd` drill
//! traced with a span cap must (a) keep the retained trace under the cap,
//! (b) reproduce the uncapped run's fingerprint byte-for-byte — eviction is
//! pure bookkeeping on the in-memory span store, never a schedule
//! perturbation — and (c) lose no metrics, since the cap bounds spans only.

use geotp_chaos::telemetry::traced_capped;
use geotp_chaos::ClusterScenario;

const SPAN_CAP: usize = 4_096;

#[test]
fn flash_crowd_trace_stays_under_span_cap() {
    let seed = 11;
    let untraced = ClusterScenario::FlashCrowd.run(seed);
    let (capped, telemetry) = traced_capped(SPAN_CAP, || ClusterScenario::FlashCrowd.run(seed));

    assert_eq!(
        untraced.fingerprint, capped.fingerprint,
        "span-cap eviction perturbed the schedule"
    );
    assert_eq!(
        untraced.trace, capped.trace,
        "event traces diverged line-for-line under the span cap"
    );

    let retained = telemetry.tracer.len();
    assert!(
        retained <= SPAN_CAP,
        "flash crowd retained {retained} spans, cap is {SPAN_CAP}"
    );
    assert!(
        retained > 0,
        "capped run retained no spans at all — eviction is too aggressive"
    );

    // The cap bounds the span store only; counters must still see every
    // commit the clients saw (crash-lost replies make it strictly larger).
    let committed = telemetry.metrics.snapshot().counter_total("mw.committed");
    assert!(
        committed >= capped.committed,
        "registry saw {committed} commits, clients saw {}",
        capped.committed
    );
}
