//! Seeded sweeps for the MVCC / group-commit drills, the lock-freedom
//! contrast between snapshot reads and strict 2PL, the adversarial
//! write-skew leg of the serializability checker, and custom trace-rule
//! registration at the harness check site.
//!
//! Sweep width follows the classic sweeps: 4 seeds by default,
//! `GEOTP_CHAOS_SWEEP=n` / `GEOTP_FULL=1` (→ 32) for the paper-scale runs.

use geotp_chaos::{traced, ChaosReport, MvccScenario, TraceContext, TraceRule, TraceRules};
use geotp_telemetry::{MetricValue, Telemetry};
use std::rc::Rc;

fn sweep_seeds() -> u64 {
    if let Ok(v) = std::env::var("GEOTP_CHAOS_SWEEP") {
        if let Ok(n) = v.parse::<u64>() {
            return n.max(1);
        }
    }
    if std::env::var("GEOTP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        32
    } else {
        4
    }
}

/// Total sample count across every `(label, index)` series of one
/// histogram name.
fn histogram_samples(telemetry: &Telemetry, name: &str) -> u64 {
    telemetry
        .metrics
        .snapshot()
        .entries
        .iter()
        .filter(|((n, _, _), _)| *n == name)
        .map(|(_, v)| match v {
            MetricValue::Histogram { count, .. } => *count,
            _ => 0,
        })
        .sum()
}

fn assert_green(scenario: MvccScenario, seed: u64, report: &ChaosReport) {
    assert!(
        report.invariants.all_hold(),
        "{} seed {} violated invariants:\n  {}",
        scenario.name(),
        seed,
        report.invariants.violations.join("\n  ")
    );
    assert!(
        report.committed > 0,
        "{} seed {}: a drill where nothing commits proves nothing",
        scenario.name(),
        seed
    );
}

/// Snapshot readers acquire zero locks: across the whole sweep, not one
/// sample lands in the `storage.lock_wait` histogram (writers never collide
/// by construction, and versioned reads bypass the lock table entirely),
/// while the coordinator's read-only fast path visibly commits the scans.
#[test]
fn sweep_long_readers_snapshot_holds_and_takes_zero_locks() {
    for seed in 1..=sweep_seeds() {
        let (report, telemetry) = traced(|| MvccScenario::LongReadersSnapshot.run(seed));
        assert_green(MvccScenario::LongReadersSnapshot, seed, &report);
        let lock_waits = histogram_samples(&telemetry, "storage.lock_wait");
        assert_eq!(
            lock_waits, 0,
            "seed {seed}: snapshot readers must not touch the lock table \
             ({lock_waits} lock-wait sample(s) recorded)"
        );
        let fast_path = telemetry
            .metrics
            .snapshot()
            .counter_total("mw.readonly_commits");
        assert!(
            fast_path > 0,
            "seed {seed}: the snapshot-read fast path never fired"
        );
    }
}

/// The contrast run: the same scans under strict 2PL do contend — the
/// lock-wait histogram is non-empty, which is exactly the cost the
/// snapshot-read path removes.
#[test]
fn sweep_long_readers_2pl_holds_but_readers_block_writers() {
    for seed in 1..=sweep_seeds() {
        let (report, telemetry) = traced(|| MvccScenario::LongReaders2pl.run(seed));
        assert_green(MvccScenario::LongReaders2pl, seed, &report);
        assert!(
            histogram_samples(&telemetry, "storage.lock_wait") > 0,
            "seed {seed}: long 2PL scans against an OLTP stream must contend"
        );
    }
}

/// The adversarial leg: under the deliberately weak isolation modes, the
/// write-skew hot pair must produce at least one run the serializability
/// checker convicts — proving the checker observes real version chains, not
/// a vacuous approximation.
#[test]
fn serializability_checker_convicts_write_skew_under_weak_isolation() {
    for scenario in [
        MvccScenario::WriteSkewSnapshot,
        MvccScenario::WriteSkewReadCommitted,
    ] {
        let mut caught = false;
        for seed in 1..=8 {
            let report = scenario.run(seed);
            if !report.invariants.serializability_ok {
                caught = true;
                break;
            }
        }
        assert!(
            caught,
            "{}: write skew under weak isolation must trip the \
             serializability checker at least once across seeds",
            scenario.name()
        );
    }
}

/// Crashing a data source with a 10 ms group-commit window open lands the
/// crash between WAL appends and their deferred flush: unacknowledged
/// commits roll back on recovery and all five checkers stay green, while
/// the group path demonstrably batches (group-cause flushes recorded).
#[test]
fn sweep_group_commit_crash_window_holds() {
    for seed in 1..=sweep_seeds() {
        let (report, telemetry) = traced(|| MvccScenario::GroupCommitCrashWindow.run(seed));
        assert_green(MvccScenario::GroupCommitCrashWindow, seed, &report);
        let snapshot = telemetry.metrics.snapshot();
        let group_flushes: u64 = (0..3)
            .map(
                |ds| match snapshot.get("storage.wal_flushes", "group", ds) {
                    Some(MetricValue::Counter(c)) => *c,
                    _ => 0,
                },
            )
            .sum();
        assert!(
            group_flushes > 0,
            "seed {seed}: a 10 ms window under concurrent committers must \
             produce group-cause flushes"
        );
    }
}

/// A rule that fires whenever the run recorded any spans at all — a
/// deterministic tripwire proving extra rules run at the harness check
/// site, labelled with their name.
struct SpanBudgetZero;

impl TraceRule for SpanBudgetZero {
    fn name(&self) -> &'static str {
        "span-budget-zero"
    }

    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
        if ctx.spans.is_empty() {
            Vec::new()
        } else {
            vec![format!(
                "{} span(s) recorded, budget is zero",
                ctx.spans.len()
            )]
        }
    }
}

/// A rule that can never fire (recovery of gtrid 0 does not exist).
struct NeverFires;

impl TraceRule for NeverFires {
    fn name(&self) -> &'static str {
        "never-fires"
    }

    fn check(&self, _ctx: &TraceContext<'_>) -> Vec<String> {
        Vec::new()
    }
}

/// Custom trace rules registered on `ChaosConfig::trace_rules` are
/// evaluated by the harness after the built-ins: a firing rule lowers
/// `trace_ok` with a violation labelled by the rule's name, and an inert
/// rule leaves the run green.
#[test]
fn custom_trace_rules_register_at_the_harness_check_site() {
    use geotp_chaos::{run_scenario, ChaosConfig, FaultSchedule};

    let small = |rules: TraceRules| ChaosConfig {
        seed: 5,
        clients: 2,
        txns_per_client: 3,
        trace_rules: rules,
        ..ChaosConfig::default()
    };

    let tripwire = TraceRules::default().with(Rc::new(SpanBudgetZero));
    let (report, _) = traced(|| run_scenario(small(tripwire), FaultSchedule::new()));
    assert!(!report.invariants.trace_ok, "the tripwire rule must fire");
    assert!(
        report
            .invariants
            .violations
            .iter()
            .any(|v| v.starts_with("trace[span-budget-zero]:")),
        "violations must carry the firing rule's name: {:?}",
        report.invariants.violations
    );

    let inert = TraceRules::default().with(Rc::new(NeverFires));
    let (report, _) = traced(|| run_scenario(small(inert), FaultSchedule::new()));
    assert!(
        report.invariants.all_hold(),
        "an inert extra rule must leave the run green: {:?}",
        report.invariants.violations
    );

    // Untraced runs skip the oracle entirely — extra rules included.
    let tripwire = TraceRules::default().with(Rc::new(SpanBudgetZero));
    let report = run_scenario(small(tripwire), FaultSchedule::new());
    assert!(report.invariants.trace_ok);
}
