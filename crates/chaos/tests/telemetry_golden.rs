//! The telemetry golden gate: installing the tracer must not move a single
//! event in a chaos run.
//!
//! `geotp-telemetry` promises zero schedule perturbation — it never consumes
//! randomness, never sleeps, never spawns. The only acceptable proof is
//! end-to-end: run the same preset and seed with and without a collector
//! installed and require the replay fingerprints (an order-sensitive FNV-1a
//! over the full event trace) to be *byte-identical*. Any telemetry call
//! that so much as reorders two timer wakeups breaks this test.

use geotp_chaos::telemetry::{
    attach_trace_on_failure, run_scenario_traced, write_failure_artifact,
};
use geotp_chaos::{DrillWorkload, Scenario};
use geotp_telemetry::SpanKind;

/// Presets covering every instrumented subsystem: decentralized prepare and
/// early abort, partitions (net drops), coordinator failover + recovery
/// spans, the interactive session path with admission, and the seeded-random
/// schedule as a catch-all.
const GOLDEN_SCENARIOS: &[Scenario] = &[
    Scenario::PreparePhaseCrash,
    Scenario::CommitPhasePartition,
    Scenario::CoordinatorFailover,
    Scenario::InteractiveClientChaos,
    Scenario::RandomizedFaults,
];

#[test]
fn fingerprints_are_byte_identical_with_tracing_on_and_off() {
    for scenario in GOLDEN_SCENARIOS {
        for seed in [1u64, 7, 23] {
            let untraced = scenario.run(seed);
            let (config, schedule) = scenario.build(seed);
            let (traced, telemetry) = run_scenario_traced(config, schedule);
            assert_eq!(
                untraced.fingerprint,
                traced.fingerprint,
                "{} seed {seed}: tracing perturbed the schedule",
                scenario.name()
            );
            assert_eq!(
                untraced.trace,
                traced.trace,
                "{} seed {seed}: event traces diverged line-for-line",
                scenario.name()
            );
            assert!(
                !telemetry.tracer.is_empty(),
                "{} seed {seed}: traced run recorded no spans",
                scenario.name()
            );
            // The registry must agree with the report on commits: every
            // client-observed commit was recorded by some coordinator
            // incarnation (commits whose reply was lost to a crash make the
            // counter strictly larger, never smaller).
            let committed = telemetry.metrics.snapshot().counter_total("mw.committed");
            assert!(
                committed >= traced.committed,
                "{} seed {seed}: registry saw {committed} commits, clients saw {}",
                scenario.name(),
                traced.committed
            );
        }
    }
}

#[test]
fn tpcc_mix_fingerprint_survives_tracing() {
    let untraced = Scenario::WanBrownout.run_with(5, DrillWorkload::Tpcc);
    let (traced, telemetry) =
        geotp_chaos::telemetry::traced(|| Scenario::WanBrownout.run_with(5, DrillWorkload::Tpcc));
    assert_eq!(untraced.fingerprint, traced.fingerprint);
    assert!(!telemetry.tracer.is_empty());
}

#[test]
fn traced_spans_reconstruct_per_txn_trees_with_rounds_and_votes() {
    let (config, schedule) = Scenario::PreparePhaseCrash.build(11);
    let (report, telemetry) = run_scenario_traced(config, schedule);
    assert!(report.committed > 0);
    let spans = telemetry.tracer.spans();
    // Every traced transaction has exactly one root Txn span, and at least
    // one committed transaction's tree reaches down to data-source work.
    let mut saw_agent_exec = false;
    for gtrid in telemetry.tracer.gtrids() {
        let mine: Vec<_> = spans.iter().filter(|s| s.id.gtrid == gtrid).collect();
        let roots = mine
            .iter()
            .filter(|s| s.kind == SpanKind::Txn && s.parent.is_none())
            .count();
        assert!(
            roots <= 1,
            "gtrid {gtrid}: {roots} Txn roots on one coordinator trace"
        );
        saw_agent_exec |= mine.iter().any(|s| s.kind == SpanKind::AgentExec);
    }
    assert!(
        saw_agent_exec,
        "no data-source span joined a coordinator trace"
    );
    // Critical-path analysis works straight off the recorded spans.
    let gtrids = telemetry.tracer.gtrids();
    let agg = geotp_telemetry::aggregate_critical_path(&spans, &gtrids);
    assert!(agg.txns > 0);
    assert!(agg.total_micros > 0);
}

#[test]
fn failure_artifact_is_written_only_for_red_runs() {
    let (config, schedule) = Scenario::PreparePhaseCrash.build(3);
    let (report, telemetry) = run_scenario_traced(config, schedule);
    assert!(report.invariants.all_hold());
    let dir = std::path::Path::new("../../target/chaos/test_artifacts");
    // Green run: attach_trace_on_failure declines to write.
    let none = attach_trace_on_failure(dir, "green_run", &report, &telemetry).unwrap();
    assert!(none.is_none());
    assert!(!dir.join("green_run.trace.json").exists());
    assert!(!dir.join("green_run.metrics.txt").exists());
    // Forced write (the path a failed minimized drill takes): all three
    // artifact files appear and the trace file is Chrome-trace JSON.
    let path = write_failure_artifact(dir, "forced", &report, &telemetry).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.starts_with("{\"displayTimeUnit\"") && json.contains("\"ph\":\"X\""));
    let events = std::fs::read_to_string(dir.join("forced.events.txt")).unwrap();
    assert!(events.contains("scenario start"));
    assert!(events.contains("mw.committed"));
    // The standalone metrics snapshot matches what the event log embeds:
    // every line of metrics.txt also closes out events.txt.
    let metrics = std::fs::read_to_string(dir.join("forced.metrics.txt")).unwrap();
    assert!(metrics.contains("mw.committed"));
    assert!(!metrics.contains("scenario start"));
    assert!(events.ends_with(&metrics));
}
