//! Seeded sweeps of the multi-coordinator presets.
//!
//! Same contract as `sweeps.rs`, one tier up: every cluster preset runs a
//! 2-coordinator tier across the seed spread, all four invariant checkers
//! must stay green, every adopted in-doubt branch must be resolved, and no
//! decision from a fenced epoch may be accepted. Width is 4 seeds per preset
//! by default and ≥32 with `GEOTP_CHAOS_SWEEP=32` / `GEOTP_FULL=1` (the
//! chaos-drills CI job and the nightly sweep both set it).

use std::rc::Rc;

use geotp_chaos::{traced, traced_capped, ClusterScenario, TpccChaosWorkload};

fn sweep_seeds() -> u64 {
    if let Ok(v) = std::env::var("GEOTP_CHAOS_SWEEP") {
        if let Ok(n) = v.parse::<u64>() {
            return n.max(1);
        }
    }
    if std::env::var("GEOTP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        32
    } else {
        4
    }
}

fn assert_cluster_scenario_green(scenario: ClusterScenario, seed: u64) {
    // Traced, so the trace oracle (fifth checker, folded into `all_hold`)
    // runs on every preset × seed. The flash-crowd preset uses a capped
    // tracer — its span volume is the largest in the suite, and the cap
    // proves the per-gtrid trace rules survive whole-txn eviction.
    let (report, _telemetry) = if scenario == ClusterScenario::FlashCrowd {
        traced_capped(8192, || scenario.run(seed))
    } else {
        traced(|| scenario.run(seed))
    };
    assert!(
        report.invariants.all_hold(),
        "{} seed {} violated invariants:\n  {}\ntrace tail:\n  {}",
        scenario.name(),
        seed,
        report.invariants.violations.join("\n  "),
        report
            .trace
            .iter()
            .rev()
            .take(30)
            .rev()
            .cloned()
            .collect::<Vec<_>>()
            .join("\n  "),
    );
    assert!(
        report.committed > 0,
        "{} seed {}: a drill where nothing commits proves nothing",
        scenario.name(),
        seed
    );
}

#[test]
fn sweep_coordinator_crash_takeover() {
    for seed in 1..=sweep_seeds() {
        assert_cluster_scenario_green(ClusterScenario::CoordinatorCrashTakeover, seed);
    }
}

#[test]
fn sweep_coordinator_partition() {
    for seed in 1..=sweep_seeds() {
        assert_cluster_scenario_green(ClusterScenario::CoordinatorPartition, seed);
    }
}

#[test]
fn sweep_coordinator_source_partition() {
    for seed in 1..=sweep_seeds() {
        assert_cluster_scenario_green(ClusterScenario::CoordinatorSourcePartition, seed);
    }
}

#[test]
fn sweep_dual_coordinator_cold_restart() {
    for seed in 1..=sweep_seeds() {
        assert_cluster_scenario_green(ClusterScenario::DualCoordinatorCrash, seed);
    }
}

#[test]
fn sweep_flash_crowd() {
    for seed in 1..=sweep_seeds() {
        assert_cluster_scenario_green(ClusterScenario::FlashCrowd, seed);
    }
}

/// TPC-C at drill scale through the *cluster* harness: the real NewOrder /
/// Payment / Delivery mix runs on a 2-coordinator tier and a coordinator is
/// crashed after a commit-log flush mid-traffic (takeover mid-`NewOrder`),
/// with all four checkers — including the TPC-C consistency conditions —
/// green across the seed spread.
#[test]
fn sweep_cluster_tpcc_takeover() {
    for seed in 1..=sweep_seeds() {
        let workload = Rc::new(TpccChaosWorkload::drill_scale(3));
        let (report, _telemetry) =
            traced(|| ClusterScenario::CoordinatorCrashTakeover.run_with(seed, workload));
        assert!(
            report.invariants.all_hold(),
            "cluster tpcc takeover seed {} violated invariants:\n  {}",
            seed,
            report.invariants.violations.join("\n  "),
        );
        assert!(report.committed > 0, "seed {seed}: nothing committed");
    }
}

/// The flash-crowd preset actually degrades gracefully rather than merely
/// surviving: admission sheds load, the reaper drains the 200k-session
/// registries, and the mid-spike coordinator crash is taken over — all in
/// the same run.
#[test]
fn flash_crowd_sheds_reaps_and_takes_over() {
    let report = ClusterScenario::FlashCrowd.run(1);
    assert!(
        report.invariants.all_hold(),
        "{:?}",
        report.invariants.violations
    );
    let trace = report.trace.join("\n");
    assert!(
        trace.contains("flash crowd: 200000 idle session(s) registered"),
        "the crowd must be registered:\n{trace}"
    );
    assert!(
        trace.contains("shed by admission"),
        "bounded admission must shed under the spike:\n{trace}"
    );
    assert!(
        trace.contains("session(s) reaped") && !trace.contains("0 idle session(s) reaped"),
        "the reaper must evict idle sessions:\n{trace}"
    );
    let takeovers_line = report
        .trace
        .iter()
        .find(|l| l.contains("takeovers so far:"))
        .expect("trace records the takeover count");
    assert!(
        !takeovers_line.contains("takeovers so far: 0"),
        "the mid-spike crash must be taken over: {takeovers_line}"
    );
    assert!(report.committed > 0);
}

/// Flash-crowd replay is bit-identical: the spike's session choices, specs
/// and jittered backoff schedules are all pure functions of the seed.
#[test]
fn flash_crowd_replay_is_bit_identical_in_process() {
    let a = ClusterScenario::FlashCrowd.run(3);
    let b = ClusterScenario::FlashCrowd.run(3);
    assert_eq!(a.trace, b.trace, "traces must match line for line");
    assert_eq!(a.fingerprint, b.fingerprint);
    let c = ClusterScenario::FlashCrowd.run(4);
    assert_ne!(a.fingerprint, c.fingerprint);
}

/// The cold-restart preset really goes through the dark window: both
/// coordinators die, clients see refusals while nobody is alive, successors
/// re-register at fresh epochs, and traffic commits again afterwards.
#[test]
fn dual_crash_recovers_from_cold_and_recommits() {
    let report = ClusterScenario::DualCoordinatorCrash.run(1);
    assert!(
        report.invariants.all_hold(),
        "{:?}",
        report.invariants.violations
    );
    let trace = report.trace.join("\n");
    assert!(
        trace.contains("crash coordinator dm0")
            || trace.contains("dm0 after next commit-log flush"),
        "dm0 must die:\n{trace}"
    );
    assert!(trace.contains("crash coordinator dm1"), "dm1 must die");
    assert!(
        trace.contains("restart coordinator dm0") && trace.contains("restart coordinator dm1"),
        "both slots must restart"
    );
    assert!(
        trace.contains("refused"),
        "the all-dead window must refuse connections:\n{trace}"
    );
    assert!(report.committed > 0);
}

/// The crash-takeover preset actually exercises the takeover machinery: the
/// trace must show the supervisor adopting the dead coordinator (not just the
/// clients failing over), and the run must still commit traffic afterwards.
#[test]
fn crash_takeover_preset_actually_takes_over() {
    let report = ClusterScenario::CoordinatorCrashTakeover.run(1);
    assert!(
        report.invariants.all_hold(),
        "{:?}",
        report.invariants.violations
    );
    let takeovers_line = report
        .trace
        .iter()
        .find(|l| l.contains("takeovers so far:"))
        .expect("trace records the takeover count");
    assert!(
        !takeovers_line.contains("takeovers so far: 0"),
        "the supervisor should have performed a takeover: {takeovers_line}"
    );
}

/// Replayability holds one tier up: same seed + same schedule ⇒ bit-identical
/// trace.
#[test]
fn cluster_replay_is_bit_identical_in_process() {
    let a = ClusterScenario::CoordinatorCrashTakeover.run(7);
    let b = ClusterScenario::CoordinatorCrashTakeover.run(7);
    assert_eq!(a.trace, b.trace, "traces must match line for line");
    assert_eq!(a.fingerprint, b.fingerprint);
    let c = ClusterScenario::CoordinatorCrashTakeover.run(8);
    assert_ne!(a.fingerprint, c.fingerprint);
}
