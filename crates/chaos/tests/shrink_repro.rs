//! Checker validation + schedule shrinking, end to end.
//!
//! Jepsen practice: a checker you have never seen catch a bug is not a
//! checker. These tests arm the storage engines' lock-bypass fail point (a
//! *deliberately injected* isolation bug: every n-th read skips its shared
//! lock), run TPC-C under a seeded-random fault schedule, and require that
//!
//! 1. the serializability checker turns red (the dirty reads are caught),
//! 2. the QuickCheck-style shrinker reduces the failing schedule to a
//!    minimal repro (≤ 5 events — for an unconditional engine bug it
//!    typically reaches the *empty* schedule, correctly reporting that no
//!    fault is needed at all), and
//! 3. the minimized schedule round-trips through the replayable timeline
//!    format and still fails when replayed from it.

use std::rc::Rc;

use geotp_chaos::{
    client_scripts, run_scenario_scripted, run_scenario_with, shrink_schedule, shrink_workload,
    ChaosConfig, FaultSchedule, RandomFaultConfig, Scenario, TpccChaosWorkload,
};

/// The failing configuration: TPC-C at drill scale with every 2nd read
/// bypassing its shared lock. Deterministic — seed 1 reliably produces dirty
/// reads under contention on the warehouse/district hotspot rows.
fn bugged_config() -> ChaosConfig {
    let (mut config, _) = Scenario::RandomizedFaults.build(1);
    config.isolation_bug_read_stride = Some(2);
    config
}

fn tpcc_fails(config: &ChaosConfig, schedule: &FaultSchedule) -> bool {
    let workload = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
    let report = run_scenario_with(config.clone(), schedule.clone(), workload);
    !report.invariants.serializability_ok
}

#[test]
fn injected_isolation_bug_is_caught_and_shrunk_to_a_minimal_timeline() {
    let config = bugged_config();
    let schedule = FaultSchedule::random(
        config.seed,
        &RandomFaultConfig {
            data_sources: 3,
            faults: 8,
            horizon: std::time::Duration::from_secs(60),
        },
    );
    assert!(
        schedule.events.len() >= 8,
        "the starting schedule should be noisy ({} events)",
        schedule.events.len()
    );

    // 1. The checker catches the injected bug under the noisy schedule.
    let workload = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
    let report = run_scenario_with(config.clone(), schedule.clone(), workload);
    assert!(
        !report.invariants.serializability_ok,
        "the injected lock-bypass bug must turn the serializability checker red"
    );
    assert!(
        report
            .invariants
            .violations
            .iter()
            .any(|v| v.contains("dirty read") || v.contains("cycle")),
        "violations should name the anomaly: {:?}",
        report.invariants.violations
    );

    // 2. Shrink to a minimal repro.
    let shrink = shrink_schedule(&schedule, 80, |candidate| tpcc_fails(&config, candidate))
        .expect("the initial schedule fails, so shrinking must engage");
    assert!(
        shrink.minimized_events <= 5,
        "expected a ≤5-event repro, got {} (runs spent: {})",
        shrink.minimized_events,
        shrink.runs
    );
    assert!(
        tpcc_fails(&config, &shrink.minimized),
        "the minimized schedule must still fail"
    );

    // 3. The emitted timeline replays to the same still-failing schedule.
    let replayed = FaultSchedule::parse_timeline(&shrink.timeline()).expect("timeline parses");
    assert_eq!(replayed, shrink.minimized);
    assert!(tpcc_fails(&config, &replayed));

    // 4. Value-aware workload shrinking: with the fault schedule minimized,
    //    ddmin the *workload* too. Start from the exact per-client scripts
    //    the seeded run generated; drop clients and transactions while the
    //    serializability checker keeps turning red.
    let workload = TpccChaosWorkload::drill_scale(config.nodes());
    let scripts = client_scripts(&config, &workload);
    let initial_txns: usize = scripts.iter().map(Vec::len).sum();
    let scripted_fails = |candidate: &[Vec<geotp_middleware::TransactionSpec>]| {
        let workload = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
        let report = run_scenario_scripted(
            config.clone(),
            shrink.minimized.clone(),
            workload,
            candidate.to_vec(),
        );
        !report.invariants.serializability_ok
    };
    let wshrink = shrink_workload(&scripts, 60, scripted_fails)
        .expect("the full scripted workload reproduces the failure");
    assert!(
        wshrink.minimized_txns < initial_txns / 2,
        "the workload should shrink substantially: {} -> {} txns (runs: {})",
        initial_txns,
        wshrink.minimized_txns,
        wshrink.runs
    );
    assert!(
        wshrink.minimized_clients <= wshrink.initial_clients,
        "clients can only be dropped"
    );
    // The minimized workload still fails when replayed.
    assert!(scripted_fails(&wshrink.minimized));
}

#[test]
fn without_the_fail_point_the_same_run_is_green() {
    // Control: identical seed and schedule, fail point disarmed — every
    // checker (serializability included) holds. The red verdict above is the
    // bug's doing, not the checker's.
    let mut config = bugged_config();
    config.isolation_bug_read_stride = None;
    let schedule = FaultSchedule::random(
        config.seed,
        &RandomFaultConfig {
            data_sources: 3,
            faults: 8,
            horizon: std::time::Duration::from_secs(60),
        },
    );
    let workload = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
    let report = run_scenario_with(config, schedule, workload);
    assert!(
        report.invariants.all_hold(),
        "control run must be green: {:?}",
        report.invariants.violations
    );
}
