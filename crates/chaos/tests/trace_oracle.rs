//! The trace oracle has teeth.
//!
//! The seeded write-ahead violation (`ChaosConfig::commit_before_flush_bug`:
//! the coordinator dispatches voted-2PC commits *before* flushing the
//! decision) leaves durably correct final state — every commit the client
//! saw is in every WAL, nothing is stuck, histories serialize. The four
//! state-based checkers therefore stay green, which is exactly the blind
//! spot the fifth, trace-based checker exists to cover: its
//! flush-before-dispatch rule convicts the reordering from the span record
//! alone, and the conviction is ddmin-shrinkable to a replayable timeline
//! like any other chaos failure.

use geotp_chaos::{
    run_scenario, run_scenario_traced, shrink_schedule, ChaosConfig, FaultSchedule, Scenario,
};

/// The armed preset: a real fault schedule (data-source crash mid-prepare)
/// plus the coordinator-side reordering bug.
fn armed(seed: u64) -> (ChaosConfig, FaultSchedule) {
    let (mut config, schedule) = Scenario::PreparePhaseCrash.build(seed);
    config.commit_before_flush_bug = true;
    (config, schedule)
}

#[test]
fn write_ahead_violation_is_convicted_only_by_the_trace_oracle() {
    let (config, schedule) = armed(11);
    let (report, _telemetry) = run_scenario_traced(config, schedule);
    let inv = &report.invariants;
    assert!(
        !inv.trace_ok,
        "the trace oracle must convict the dispatch-before-flush reordering"
    );
    assert!(
        inv.atomicity_ok && inv.durability_ok && inv.liveness_ok && inv.serializability_ok,
        "the state-based checkers must stay green — the bug leaves correct \
         durable state — but saw: {:?}",
        inv.violations
    );
    assert!(
        inv.violations
            .iter()
            .any(|v| v.contains("before the earliest log flush ends")),
        "the conviction must name the write-ahead rule: {:?}",
        inv.violations
    );
}

#[test]
fn untraced_runs_demonstrate_the_state_checkers_blind_spot() {
    // The same buggy run without telemetry: the fifth checker is vacuous and
    // all four state-based checkers pass — i.e. before the trace oracle this
    // bug was undetectable.
    let (config, schedule) = armed(11);
    let report = run_scenario(config, schedule);
    assert!(
        report.invariants.all_hold(),
        "without a trace the bug must go unnoticed, but: {:?}",
        report.invariants.violations
    );
}

#[test]
fn unarmed_run_passes_the_trace_oracle() {
    let (config, schedule) = Scenario::PreparePhaseCrash.build(11);
    let (report, _telemetry) = run_scenario_traced(config, schedule);
    assert!(report.invariants.trace_ok);
    assert!(
        report.invariants.all_hold(),
        "{:?}",
        report.invariants.violations
    );
}

#[test]
fn trace_conviction_shrinks_to_a_replayable_timeline() {
    let (config, schedule) = armed(11);
    let initial_events = schedule.events.len();
    assert!(initial_events > 0, "the preset must have faults to strip");

    let probe_config = config.clone();
    let report = shrink_schedule(&schedule, 60, move |candidate| {
        let (report, _telemetry) = run_scenario_traced(probe_config.clone(), candidate.clone());
        !report.invariants.trace_ok
    })
    .expect("the armed run fails the oracle, so the shrink must start");

    // The bug lives in the coordinator, not in the fault schedule: ddmin
    // should discover that every injected fault is irrelevant.
    assert_eq!(
        report.minimized_events,
        0,
        "no fault event is needed to reproduce a coordinator-side bug:\n{}",
        report.timeline()
    );

    // The minimized schedule round-trips through its timeline and still
    // produces the same conviction — a self-contained repro.
    let replayed = FaultSchedule::parse_timeline(&report.timeline()).expect("timeline parses");
    let (replay, _telemetry) = run_scenario_traced(config, replayed);
    assert!(
        !replay.invariants.trace_ok,
        "the minimized timeline must still fail the trace oracle"
    );
    assert!(
        replay.invariants.atomicity_ok
            && replay.invariants.durability_ok
            && replay.invariants.liveness_ok
            && replay.invariants.serializability_ok,
        "still invisible to the state-based checkers after shrinking: {:?}",
        replay.invariants.violations
    );
}
