//! Seeded chaos sweeps and the replayability acceptance checks.
//!
//! Every scenario preset runs across a spread of seeds; the atomicity,
//! durability and liveness checkers must stay green for all of them. The
//! sweep width is 4 seeds per preset by default (fast enough for every CI
//! push) and ≥32 seeds with `GEOTP_CHAOS_SWEEP=32` or `GEOTP_FULL=1`, which
//! the chaos-drills CI job and the nightly sweep both set.
//!
//! Replayability is checked twice: in-process (two runs of the same seed and
//! preset must produce bit-identical traces) and *across processes* — the
//! parent test re-executes this test binary as a child with
//! `GEOTP_CHAOS_EMIT_FP` set and compares fingerprints, proving the trace
//! does not depend on address-space layout, environment or any other
//! process-local accident.

use geotp_chaos::{traced, traced_capped, DrillWorkload, Scenario};

/// Seeds per preset: 4 by default, honouring `GEOTP_CHAOS_SWEEP` /
/// `GEOTP_FULL=1` (which bumps to 32) for the paper-scale runs.
fn sweep_seeds() -> u64 {
    if let Ok(v) = std::env::var("GEOTP_CHAOS_SWEEP") {
        if let Ok(n) = v.parse::<u64>() {
            return n.max(1);
        }
    }
    if std::env::var("GEOTP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        32
    } else {
        4
    }
}

fn assert_scenario_green(scenario: Scenario, workload: DrillWorkload, seed: u64) {
    // Sweeps run traced so the trace oracle (the fifth checker, folded into
    // `all_hold`) is exercised on every preset × seed. Tracing never perturbs
    // the schedule, so the drills themselves are unchanged. The TPC-C leg
    // uses a capped tracer to prove the per-gtrid rules survive whole-txn
    // eviction mid-drill.
    let (report, _telemetry) = match workload {
        DrillWorkload::Transfer => traced(|| scenario.run_with(seed, workload)),
        DrillWorkload::Tpcc => traced_capped(4096, || scenario.run_with(seed, workload)),
    };
    assert!(
        report.invariants.all_hold(),
        "{} ({}) seed {} violated invariants:\n  {}\ntrace tail:\n  {}",
        scenario.name(),
        workload.name(),
        seed,
        report.invariants.violations.join("\n  "),
        report
            .trace
            .iter()
            .rev()
            .take(25)
            .rev()
            .cloned()
            .collect::<Vec<_>>()
            .join("\n  "),
    );
    assert!(
        report.committed > 0,
        "{} ({}) seed {}: a drill where nothing commits proves nothing",
        scenario.name(),
        workload.name(),
        seed
    );
}

macro_rules! sweep_test {
    ($transfer_name:ident, $tpcc_name:ident, $scenario:expr) => {
        #[test]
        fn $transfer_name() {
            for seed in 1..=sweep_seeds() {
                assert_scenario_green($scenario, DrillWorkload::Transfer, seed);
            }
        }

        #[test]
        fn $tpcc_name() {
            for seed in 1..=sweep_seeds() {
                assert_scenario_green($scenario, DrillWorkload::Tpcc, seed);
            }
        }
    };
}

sweep_test!(
    sweep_prepare_phase_crash,
    sweep_tpcc_prepare_phase_crash,
    Scenario::PreparePhaseCrash
);
sweep_test!(
    sweep_commit_phase_partition,
    sweep_tpcc_commit_phase_partition,
    Scenario::CommitPhasePartition
);
sweep_test!(
    sweep_asymmetric_partition,
    sweep_tpcc_asymmetric_partition,
    Scenario::AsymmetricPartition
);
sweep_test!(
    sweep_rolling_restarts,
    sweep_tpcc_rolling_restarts,
    Scenario::RollingRestarts
);
sweep_test!(
    sweep_wan_brownout,
    sweep_tpcc_wan_brownout,
    Scenario::WanBrownout
);
sweep_test!(
    sweep_coordinator_failover,
    sweep_tpcc_coordinator_failover,
    Scenario::CoordinatorFailover
);
sweep_test!(
    sweep_lossy_notifications,
    sweep_tpcc_lossy_notifications,
    Scenario::LossyNotifications
);
sweep_test!(
    sweep_clock_skew_drift,
    sweep_tpcc_clock_skew_drift,
    Scenario::ClockSkewDrift
);
sweep_test!(
    sweep_crash_during_brownout,
    sweep_tpcc_crash_during_brownout,
    Scenario::CrashDuringBrownout
);
sweep_test!(
    sweep_randomized_faults,
    sweep_tpcc_randomized_faults,
    Scenario::RandomizedFaults
);
sweep_test!(
    sweep_interactive_client_chaos,
    sweep_tpcc_interactive_client_chaos,
    Scenario::InteractiveClientChaos
);

/// The interactive preset genuinely exercises the new surface: client crashes
/// are booked on the coordinator (aborted without a ledger entry), think time
/// spreads the statement stream, and the invariants still hold.
#[test]
fn interactive_preset_abandons_transactions_mid_flight() {
    let (config, _schedule) = Scenario::InteractiveClientChaos.build(1);
    assert!(config.interactive_transfers);
    assert_eq!(config.client_crash_every, Some(4));
    let report = Scenario::InteractiveClientChaos.run(1);
    assert!(
        report.invariants.all_hold(),
        "{:?}",
        report.invariants.violations
    );
    // Each client abandons every 4th transaction: those never reach the
    // client-side ledger, so the ledger is visibly smaller than the offered
    // transaction count (minus the indeterminate coordinator-crash window).
    let offered = (config.clients * config.txns_per_client) as u64;
    let recorded = report.committed + report.aborted + report.indeterminate;
    assert!(
        recorded < offered,
        "abandoned transactions must be missing from the ledger: {recorded} vs {offered}"
    );
}

/// The checkers are not vacuous: a protocol that genuinely lacks atomicity
/// (SSP "local" mode one-phase-commits every branch independently) must turn
/// at least one drill red across a handful of seeds.
#[test]
fn checkers_catch_ssp_local_atomicity_violations() {
    use geotp_chaos::{run_scenario, Scenario};
    let mut caught = false;
    for seed in 1..=6 {
        let (mut config, schedule) = Scenario::PreparePhaseCrash.build(seed);
        config.protocol = geotp_chaos::Protocol::SspLocal;
        config.distributed_ratio = 1.0;
        let report = run_scenario(config, schedule);
        if !report.invariants.all_hold() {
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "SSP(local) under a crash drill should violate atomicity/durability at least once"
    );
}

/// Same seed + same schedule ⇒ bit-identical trace, within one process.
#[test]
fn replay_is_bit_identical_in_process() {
    let a = Scenario::CoordinatorFailover.run(7);
    let b = Scenario::CoordinatorFailover.run(7);
    assert_eq!(a.trace, b.trace, "traces must match line for line");
    assert_eq!(a.fingerprint, b.fingerprint);
    let c = Scenario::CoordinatorFailover.run(8);
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds must diverge (the fingerprint is not a constant)"
    );
}

/// Child half of the cross-process check: when `GEOTP_CHAOS_EMIT_FP` names a
/// `scenario:seed`, print the fingerprint and do nothing else.
#[test]
fn replay_fingerprint_child() {
    let Ok(spec) = std::env::var("GEOTP_CHAOS_EMIT_FP") else {
        return; // Only active when invoked by the parent test below.
    };
    let (name, seed) = spec.split_once(':').expect("format: <scenario>:<seed>");
    let seed: u64 = seed.parse().expect("numeric seed");
    let scenario = Scenario::all()
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| panic!("unknown scenario {name}"));
    let report = scenario.run(seed);
    println!("CHAOS_FINGERPRINT={:016x}", report.fingerprint);
}

/// Same seed + same schedule ⇒ bit-identical trace **across two processes**.
#[test]
fn replay_is_bit_identical_across_processes() {
    if std::env::var("GEOTP_CHAOS_EMIT_FP").is_ok() {
        return; // We *are* the child; the parent drives the comparison.
    }
    let scenario = Scenario::PreparePhaseCrash;
    let seed = 13;
    let local = scenario.run(seed).fingerprint;

    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args(["--exact", "replay_fingerprint_child", "--nocapture"])
        .env(
            "GEOTP_CHAOS_EMIT_FP",
            format!("{}:{}", scenario.name(), seed),
        )
        .output()
        .expect("spawn child test process");
    assert!(
        output.status.success(),
        "child process failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // libtest may glue the marker onto its own "test ... " line, so search
    // within lines rather than at line starts.
    let remote = stdout
        .lines()
        .find_map(|l| l.split("CHAOS_FINGERPRINT=").nth(1))
        .map(|tail| {
            tail.trim()
                .chars()
                .take_while(char::is_ascii_hexdigit)
                .collect::<String>()
        })
        .unwrap_or_else(|| panic!("child printed no fingerprint:\n{stdout}"));
    assert_eq!(
        u64::from_str_radix(&remote, 16).expect("hex fingerprint"),
        local,
        "cross-process trace fingerprints diverged"
    );
}
