//! Workloads the chaos harness can drive.
//!
//! The harness is workload-generic: anything implementing [`ChaosWorkload`]
//! can run under every fault preset, every checker and the schedule
//! shrinker. A workload contributes three things — how to populate the data
//! sources, how to generate client transactions, and which *state-level
//! consistency conditions* its committed transactions preserve (those
//! conditions are what make atomicity violations observable from final state
//! alone).
//!
//! Two workloads ship built in:
//!
//! * [`TransferWorkload`] — the original balance-transfer workload: every
//!   transaction moves 1 unit between two rows, so the total balance is
//!   conserved by construction;
//! * [`TpccChaosWorkload`] — the real TPC-C mix from `geotp-workloads`
//!   (NewOrder, Payment, OrderStatus, Delivery, StockLevel), scaled down to
//!   drill size, with the TPC-C §3.3.2 consistency conditions
//!   (warehouse/district YTD agreement, order-id/ORDERS/NEW_ORDER counts,
//!   order-line counts, stock conservation).

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{ClientOp, GlobalKey, Partitioner, TransactionSpec};
use geotp_storage::{Row, TableId};
use geotp_workloads::tpcc::{self, TpccConfig, TpccGenerator};
use rand::rngs::StdRng;
use rand::Rng;

use crate::harness::ChaosConfig;

/// A workload the chaos harness can drive under fault schedules.
pub trait ChaosWorkload {
    /// Stable identifier used in traces, tables and CI artifacts.
    fn name(&self) -> &'static str;

    /// The partitioner the middleware routes this workload through.
    fn partitioner(&self) -> Partitioner;

    /// Populate the data sources (bulk load, before any fault fires).
    fn load(&self, sources: &[Rc<DataSource>]);

    /// Generate the next client transaction. Called once per transaction
    /// (retries after a refused connection reuse the same spec, like a real
    /// client re-submitting its statement buffer).
    fn next_spec(&self, rng: &mut StdRng) -> TransactionSpec;

    /// Workload-specific consistency conditions over the healed, recovered
    /// final state. Every committed transaction preserves these by
    /// construction, so violations convict the transaction machinery. One
    /// line per violation; empty means consistent.
    fn consistency_violations(&self, sources: &[Rc<DataSource>]) -> Vec<String>;
}

/// Table used by the transfer workload (the single YCSB-style usertable).
pub const CHAOS_TABLE: TableId = TableId(0);

/// The original balance-transfer workload: −1 from one row, +1 to another.
/// Transfers conserve the total balance, so any partial commit shows up in
/// the conservation condition.
#[derive(Debug, Clone)]
pub struct TransferWorkload {
    /// Data sources in the deployment.
    pub nodes: u32,
    /// Rows per data source.
    pub records_per_node: u64,
    /// Initial integer balance of every row.
    pub initial_balance: i64,
    /// Fraction of transfers that cross data sources.
    pub distributed_ratio: f64,
}

impl TransferWorkload {
    /// The transfer workload described by a [`ChaosConfig`] (its
    /// `records_per_node` / `initial_balance` / `distributed_ratio` knobs).
    pub fn from_config(config: &ChaosConfig) -> Self {
        Self {
            nodes: config.nodes(),
            records_per_node: config.records_per_node,
            initial_balance: config.initial_balance,
            distributed_ratio: config.distributed_ratio,
        }
    }
}

impl ChaosWorkload for TransferWorkload {
    fn name(&self) -> &'static str {
        "transfer"
    }

    fn partitioner(&self) -> Partitioner {
        Partitioner::Range {
            rows_per_node: self.records_per_node,
            nodes: self.nodes,
        }
    }

    fn load(&self, sources: &[Rc<DataSource>]) {
        let partitioner = self.partitioner();
        let total_rows = self.records_per_node * self.nodes as u64;
        for row in 0..total_rows {
            let key = GlobalKey::new(CHAOS_TABLE, row);
            let ds = partitioner.route(key) as usize;
            sources[ds].load(key.storage_key(), Row::int(self.initial_balance));
        }
    }

    fn next_spec(&self, rng: &mut StdRng) -> TransactionSpec {
        let nodes = self.nodes as u64;
        let records = self.records_per_node;
        let src_ds = rng.gen_range(0..nodes);
        let distributed = nodes > 1 && rng.gen::<f64>() < self.distributed_ratio;
        let dst_ds = if distributed {
            let mut d = rng.gen_range(0..nodes - 1);
            if d >= src_ds {
                d += 1;
            }
            d
        } else {
            src_ds
        };
        let src_row = src_ds * records + rng.gen_range(0..records);
        let dst_row = dst_ds * records + rng.gen_range(0..records);
        TransactionSpec::single_round(vec![
            ClientOp::add(GlobalKey::new(CHAOS_TABLE, src_row), -1),
            ClientOp::add(GlobalKey::new(CHAOS_TABLE, dst_row), 1),
        ])
    }

    fn consistency_violations(&self, sources: &[Rc<DataSource>]) -> Vec<String> {
        let mut violations = Vec::new();
        let partitioner = self.partitioner();
        let total_rows = self.records_per_node * self.nodes as u64;
        let expected_total = total_rows as i64 * self.initial_balance;
        let mut actual_total = 0i64;
        let mut missing_rows = 0u64;
        for row in 0..total_rows {
            let key = GlobalKey::new(CHAOS_TABLE, row);
            let ds = partitioner.route(key) as usize;
            match sources[ds].engine().peek(key.storage_key()) {
                Some(r) => actual_total += r.int_value().unwrap_or(0),
                None => missing_rows += 1,
            }
        }
        if missing_rows > 0 {
            violations.push(format!(
                "transfer: {missing_rows} row(s) vanished from the record stores"
            ));
        }
        if actual_total != expected_total {
            violations.push(format!(
                "transfer: total balance {actual_total} != initial {expected_total} \
                 (transfers conserve it)"
            ));
        }
        violations
    }
}

/// The transfer workload issued *interactively*: the debit and the credit
/// ship as separate statement rounds (the credit carries the `/*+ last */`
/// annotation), so the branch locks span a real client round trip and the
/// harness's think-time and mid-transaction client-crash events have a
/// between-rounds window to land in. Conservation conditions are unchanged.
#[derive(Debug, Clone)]
pub struct InteractiveTransferWorkload(pub TransferWorkload);

impl ChaosWorkload for InteractiveTransferWorkload {
    fn name(&self) -> &'static str {
        "transfer_interactive"
    }

    fn partitioner(&self) -> Partitioner {
        self.0.partitioner()
    }

    fn load(&self, sources: &[Rc<DataSource>]) {
        self.0.load(sources);
    }

    fn next_spec(&self, rng: &mut StdRng) -> TransactionSpec {
        let spec = self.0.next_spec(rng);
        let rounds = spec
            .rounds
            .into_iter()
            .flatten()
            .map(|op| vec![op])
            .collect();
        TransactionSpec::multi_round(rounds)
    }

    fn consistency_violations(&self, sources: &[Rc<DataSource>]) -> Vec<String> {
        self.0.consistency_violations(sources)
    }
}

/// TPC-C at drill scale: the real five-profile mix over warehouse-partitioned
/// data, small enough that a 10-preset × 32-seed sweep stays in CI budget.
pub struct TpccChaosWorkload {
    config: TpccConfig,
    generator: TpccGenerator,
}

impl TpccChaosWorkload {
    /// Drill-scale TPC-C over `nodes` data sources: 2 warehouses per node,
    /// 40 items per warehouse, 20 customers per district, 40% distributed
    /// NewOrder/Payment transactions. Hotspot cardinality (1 warehouse row,
    /// 10 district rows per warehouse) is full-size, so contention behaviour
    /// is preserved.
    pub fn drill_scale(nodes: u32) -> Self {
        let mut config = TpccConfig::new(nodes, 2);
        config.items = 40;
        config.customers_per_district = 20;
        config.distributed_ratio = 0.4;
        Self::new(config)
    }

    /// A TPC-C chaos workload with an explicit configuration.
    pub fn new(config: TpccConfig) -> Self {
        let generator = TpccGenerator::new(config.clone());
        Self { config, generator }
    }

    /// The TPC-C configuration in use.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }
}

impl ChaosWorkload for TpccChaosWorkload {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn partitioner(&self) -> Partitioner {
        self.config.partitioner()
    }

    fn load(&self, sources: &[Rc<DataSource>]) {
        self.generator.load(sources);
    }

    fn next_spec(&self, rng: &mut StdRng) -> TransactionSpec {
        self.generator.generate(rng).0
    }

    fn consistency_violations(&self, sources: &[Rc<DataSource>]) -> Vec<String> {
        tpcc::consistency_violations(&self.config, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transfer_spec_is_a_conserving_two_op_transaction() {
        let workload = TransferWorkload {
            nodes: 3,
            records_per_node: 100,
            initial_balance: 10,
            distributed_ratio: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let spec = workload.next_spec(&mut rng);
            assert_eq!(spec.op_count(), 2);
            let deltas: Vec<i64> = spec
                .all_ops()
                .map(|op| match op {
                    ClientOp::AddInt { delta, .. } => *delta,
                    other => panic!("unexpected op {other:?}"),
                })
                .collect();
            assert_eq!(deltas.iter().sum::<i64>(), 0, "transfers conserve");
            // distributed_ratio 1.0: the two rows live on different sources.
            let keys = spec.keys();
            let p = workload.partitioner();
            assert_ne!(p.route(keys[0]), p.route(keys[1]));
        }
    }

    #[test]
    fn tpcc_drill_scale_generates_all_profiles() {
        let workload = TpccChaosWorkload::drill_scale(3);
        assert_eq!(workload.config().nodes, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut op_counts = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let spec = workload.next_spec(&mut rng);
            assert!(!spec.is_empty());
            op_counts.insert(spec.op_count());
        }
        // Five profiles with very different shapes: the op-count spread
        // proves the mix is live (Payment=4, OrderStatus=6, Delivery=10,
        // StockLevel=21, NewOrder varies 11..33).
        assert!(op_counts.len() >= 4, "op counts seen: {op_counts:?}");
    }
}
