//! Traced chaos runs: run any scenario with a `geotp-telemetry` collector
//! installed, and turn a failing drill into an on-disk trace artifact.
//!
//! Tracing is guaranteed not to perturb the schedule — the collector only
//! reads the virtual clock and appends to in-memory structures — so a traced
//! run's [`ChaosReport::fingerprint`] is byte-identical to the untraced
//! run's (the golden test in `tests/telemetry_golden.rs` sweeps presets and
//! seeds to prove it). That makes the trace a *free* diagnostic: when a
//! drill fails, re-running it traced reproduces the exact same failure with
//! a full span tree attached.

use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use geotp_middleware::TransactionSpec;
use geotp_telemetry::Telemetry;

use crate::harness::{
    run_scenario, run_scenario_scripted, run_scenario_with, ChaosConfig, ChaosReport,
};
use crate::schedule::FaultSchedule;
use crate::workload::ChaosWorkload;

/// Run `f` with a fresh telemetry collector installed, returning both its
/// report and the collector. Restores the previous install state afterwards,
/// so nesting a traced run inside another instrumented context is safe.
pub fn traced<F: FnOnce() -> ChaosReport>(f: F) -> (ChaosReport, Rc<Telemetry>) {
    traced_into(Telemetry::new(), f)
}

/// [`traced`] with a bounded tracer: the collector retains at most `cap`
/// spans, evicting whole closed transactions oldest-first (see
/// [`geotp_telemetry::Tracer::set_span_cap`]). Use for long drills — a
/// flash crowd, an overnight soak — whose full span set would dominate
/// memory. Eviction is pure bookkeeping on the in-memory span store, so the
/// fingerprint guarantee above holds for capped runs too.
pub fn traced_capped<F: FnOnce() -> ChaosReport>(cap: usize, f: F) -> (ChaosReport, Rc<Telemetry>) {
    traced_into(Telemetry::with_span_cap(cap), f)
}

fn traced_into<F: FnOnce() -> ChaosReport>(
    telemetry: Rc<Telemetry>,
    f: F,
) -> (ChaosReport, Rc<Telemetry>) {
    let previous = geotp_telemetry::uninstall();
    geotp_telemetry::install_collector(telemetry.clone());
    let report = f();
    geotp_telemetry::uninstall();
    if let Some(previous) = previous {
        geotp_telemetry::install_collector(previous);
    }
    (report, telemetry)
}

/// [`run_scenario`], traced: same fingerprint, plus the full span tree and
/// metrics registry for the run.
pub fn run_scenario_traced(
    config: ChaosConfig,
    schedule: FaultSchedule,
) -> (ChaosReport, Rc<Telemetry>) {
    traced(|| run_scenario(config, schedule))
}

/// [`run_scenario_with`], traced.
pub fn run_scenario_with_traced(
    config: ChaosConfig,
    schedule: FaultSchedule,
    workload: Rc<dyn ChaosWorkload>,
) -> (ChaosReport, Rc<Telemetry>) {
    traced(|| run_scenario_with(config, schedule, workload))
}

/// [`run_scenario_scripted`], traced — the replay vehicle for minimized
/// workloads, with the span tree attached.
pub fn run_scenario_scripted_traced(
    config: ChaosConfig,
    schedule: FaultSchedule,
    workload: Rc<dyn ChaosWorkload>,
    scripts: Vec<Vec<TransactionSpec>>,
) -> (ChaosReport, Rc<Telemetry>) {
    traced(|| run_scenario_scripted(config, schedule, workload, scripts))
}

/// Write the failure artifact for a (typically minimized) failing run:
/// `<name>.trace.json` — the Chrome-trace/Perfetto export of every span —
/// `<name>.events.txt` — the replayable event trace with the metrics
/// snapshot appended — and `<name>.metrics.txt` — the metrics snapshot
/// alone, for tooling that wants counters/histograms without parsing the
/// event log. Returns the trace-file path.
pub fn write_failure_artifact(
    dir: &Path,
    name: &str,
    report: &ChaosReport,
    telemetry: &Telemetry,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let trace_path = dir.join(format!("{name}.trace.json"));
    geotp_telemetry::write_chrome_trace(&trace_path, &telemetry.tracer.spans())?;
    let metrics = telemetry.metrics.snapshot().render();
    let mut text = String::new();
    for line in &report.trace {
        text.push_str(line);
        text.push('\n');
    }
    text.push('\n');
    text.push_str(&metrics);
    std::fs::write(dir.join(format!("{name}.events.txt")), text)?;
    std::fs::write(dir.join(format!("{name}.metrics.txt")), metrics)?;
    Ok(trace_path)
}

/// If `report` violated an invariant, write the failure artifact and return
/// its path; a green run writes nothing.
pub fn attach_trace_on_failure(
    dir: &Path,
    name: &str,
    report: &ChaosReport,
    telemetry: &Telemetry,
) -> io::Result<Option<PathBuf>> {
    if report.invariants.all_hold() {
        return Ok(None);
    }
    write_failure_artifact(dir, name, report, telemetry).map(Some)
}
