//! QuickCheck-style minimization of failing fault schedules.
//!
//! A seeded-random schedule that turns a checker red is a terrible bug
//! report: dozens of events, most irrelevant. [`shrink_schedule`] applies
//! delta debugging (Zeller's ddmin, the algorithm behind QuickCheck
//! shrinking) to the event list: repeatedly drop chunks of events — halves,
//! then quarters, down to single events — re-run the scenario, and keep every
//! reduction that still fails. A second pass then simplifies the survivors'
//! *timing*: fault windows are halved and activation instants pulled earlier,
//! as long as the failure reproduces.
//!
//! Every probe is a full deterministic chaos run, so the result is exact,
//! not probabilistic: the minimized schedule is guaranteed still-failing,
//! and 1-minimal with respect to single-event removal (dropping any one
//! remaining event makes the failure disappear — unless the probe budget ran
//! out first, which the report says). The minimized schedule is emitted as a
//! replayable explicit timeline ([`crate::FaultSchedule::to_timeline`]) that
//! reproduces without the original seed's random generator.

use std::time::Duration;

use geotp_middleware::TransactionSpec;

use crate::schedule::{FaultEvent, FaultSchedule};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The smallest still-failing schedule found.
    pub minimized: FaultSchedule,
    /// Events in the schedule the shrink started from.
    pub initial_events: usize,
    /// Events left after shrinking.
    pub minimized_events: usize,
    /// Scenario runs spent (including the initial confirmation run).
    pub runs: u32,
    /// `true` if the probe budget ran out before the schedule was 1-minimal;
    /// the minimized schedule still fails either way.
    pub budget_exhausted: bool,
}

impl ShrinkReport {
    /// The minimized schedule as a replayable explicit timeline.
    pub fn timeline(&self) -> String {
        self.minimized.to_timeline()
    }
}

/// Bookkeeping for the probe budget shared by both shrink passes.
struct Probe<F> {
    fails: F,
    runs: u32,
    max_runs: u32,
}

impl<F: FnMut(&FaultSchedule) -> bool> Probe<F> {
    /// Run the scenario against `events`; `None` when the budget is gone.
    fn fails(&mut self, events: &[FaultEvent]) -> Option<bool> {
        if self.runs >= self.max_runs {
            return None;
        }
        self.runs += 1;
        Some((self.fails)(&FaultSchedule {
            events: events.to_vec(),
        }))
    }
}

/// The generic ddmin removal pass over any item list: repeatedly drop chunks
/// (halves → quarters → … → single items), keep every reduction that still
/// fails. `probe` returns `None` when the run budget is exhausted. Returns
/// the minimized items and whether the budget ran out mid-pass.
fn ddmin_items<T: Clone>(
    initial: &[T],
    probe: &mut impl FnMut(&[T]) -> Option<bool>,
) -> (Vec<T>, bool) {
    let mut current = initial.to_vec();
    let mut granularity = 2usize;
    while !current.is_empty() {
        granularity = granularity.min(current.len());
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            match probe(&candidate) {
                None => return (current, true),
                Some(true) => {
                    current = candidate;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                Some(false) => start = end,
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break; // 1-minimal: no single item can be dropped.
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    (current, false)
}

/// Shrink `initial` to a minimal schedule for which `fails` still returns
/// `true`. `fails` runs one full scenario per call (deterministic: same
/// schedule ⇒ same verdict); `max_runs` bounds the total number of probe
/// runs. Returns `None` if the initial schedule does not fail at all.
pub fn shrink_schedule<F>(initial: &FaultSchedule, max_runs: u32, fails: F) -> Option<ShrinkReport>
where
    F: FnMut(&FaultSchedule) -> bool,
{
    let mut probe = Probe {
        fails,
        runs: 0,
        max_runs: max_runs.max(1),
    };
    if !probe.fails(&initial.events)? {
        return None;
    }

    // ---------------- pass 1: ddmin event removal ----------------
    let (mut current, mut budget_exhausted) =
        ddmin_items(&initial.events, &mut |events| probe.fails(events));

    // ---------------- pass 2: timing simplification ----------------
    // For each surviving event, try a variant with a halved window and an
    // earlier activation; keep whatever still fails.
    if !budget_exhausted {
        for index in 0..current.len() {
            // Re-derive variants from the adopted event each round, so a
            // later variant cannot silently undo an earlier simplification.
            let mut improved = true;
            let mut rounds = 0;
            while improved && rounds < 8 && !budget_exhausted {
                improved = false;
                rounds += 1;
                for variant in simplify_event(&current[index]) {
                    let mut candidate = current.clone();
                    candidate[index] = variant.clone();
                    match probe.fails(&candidate) {
                        None => {
                            budget_exhausted = true;
                            break;
                        }
                        Some(true) => {
                            current[index] = variant;
                            improved = true;
                            break;
                        }
                        Some(false) => {}
                    }
                }
            }
            if budget_exhausted {
                break;
            }
        }
    }

    Some(ShrinkReport {
        initial_events: initial.events.len(),
        minimized_events: current.len(),
        minimized: FaultSchedule { events: current },
        runs: probe.runs,
        budget_exhausted,
    })
}

/// Result of a workload shrink run.
#[derive(Debug, Clone)]
pub struct WorkloadShrinkReport {
    /// The smallest still-failing workload: one transaction list per
    /// surviving client (clients whose every transaction was dropped are
    /// gone entirely).
    pub minimized: Vec<Vec<TransactionSpec>>,
    /// Clients in the workload the shrink started from.
    pub initial_clients: usize,
    /// Clients left after shrinking.
    pub minimized_clients: usize,
    /// Total transactions in the starting workload.
    pub initial_txns: usize,
    /// Total transactions left after shrinking.
    pub minimized_txns: usize,
    /// Scenario runs spent (including the initial confirmation run).
    pub runs: u32,
    /// `true` if the probe budget ran out before the workload was 1-minimal.
    pub budget_exhausted: bool,
}

/// Value-aware workload shrinking: after [`shrink_schedule`] minimizes the
/// *fault* timeline, ddmin the *workload* too — drop whole clients and
/// individual transactions while the failure keeps reproducing. `initial` is
/// one transaction script per client (see
/// [`crate::harness::client_scripts`], which materializes exactly what the
/// seeded harness would have generated); `fails` replays a full scenario
/// against a candidate script set, typically through
/// [`crate::harness::run_scenario_scripted`]. Returns `None` if the initial
/// workload does not fail at all.
pub fn shrink_workload<F>(
    initial: &[Vec<TransactionSpec>],
    max_runs: u32,
    mut fails: F,
) -> Option<WorkloadShrinkReport>
where
    F: FnMut(&[Vec<TransactionSpec>]) -> bool,
{
    // Flatten to (client, spec) pairs so ddmin can drop any subset while the
    // rebuild keeps each surviving transaction on its original client (the
    // concurrency structure is part of the repro).
    let flat: Vec<(usize, TransactionSpec)> = initial
        .iter()
        .enumerate()
        .flat_map(|(client, specs)| specs.iter().map(move |s| (client, s.clone())))
        .collect();
    let clients = initial.len();
    let rebuild = |items: &[(usize, TransactionSpec)]| -> Vec<Vec<TransactionSpec>> {
        let mut per_client: Vec<Vec<TransactionSpec>> = vec![Vec::new(); clients];
        for (client, spec) in items {
            per_client[*client].push(spec.clone());
        }
        per_client.retain(|specs| !specs.is_empty());
        per_client
    };

    let mut runs = 0u32;
    let max_runs = max_runs.max(1);
    let mut probe = |items: &[(usize, TransactionSpec)]| -> Option<bool> {
        if runs >= max_runs {
            return None;
        }
        runs += 1;
        Some(fails(&rebuild(items)))
    };
    if !probe(&flat)? {
        return None;
    }
    let (minimized_flat, budget_exhausted) = ddmin_items(&flat, &mut probe);
    let minimized = rebuild(&minimized_flat);
    Some(WorkloadShrinkReport {
        initial_clients: clients,
        minimized_clients: minimized.len(),
        initial_txns: flat.len(),
        minimized_txns: minimized_flat.len(),
        minimized,
        runs,
        budget_exhausted,
    })
}

/// Candidate simplifications of one event, simplest first: pull the
/// activation instant halfway toward zero, and halve a windowed fault's
/// duration. Instant events only get the time pull.
fn simplify_event(event: &FaultEvent) -> Vec<FaultEvent> {
    // Quantized to whole microseconds: the virtual clock ticks in µs and the
    // replayable timeline stores µs, so finer durations would not round-trip.
    let halve_at = |at: &Duration| Duration::from_micros(at.as_micros() as u64 / 2);
    let halve_window = |at: &Duration, until: &Duration| {
        let length = until.saturating_sub(*at).as_micros() as u64;
        *at + Duration::from_micros(length / 2)
    };
    let mut variants = Vec::new();
    match event {
        FaultEvent::CrashDataSource { at, ds } => variants.push(FaultEvent::CrashDataSource {
            at: halve_at(at),
            ds: *ds,
        }),
        FaultEvent::RestartDataSource { at, ds } => variants.push(FaultEvent::RestartDataSource {
            at: halve_at(at),
            ds: *ds,
        }),
        FaultEvent::CrashMiddleware { at } => {
            variants.push(FaultEvent::CrashMiddleware { at: halve_at(at) })
        }
        FaultEvent::CrashMiddlewareAfterFlush { at } => {
            variants.push(FaultEvent::CrashMiddlewareAfterFlush { at: halve_at(at) })
        }
        FaultEvent::FailoverMiddleware { at } => {
            variants.push(FaultEvent::FailoverMiddleware { at: halve_at(at) })
        }
        FaultEvent::CrashCoordinator { at, dm } => variants.push(FaultEvent::CrashCoordinator {
            at: halve_at(at),
            dm: *dm,
        }),
        FaultEvent::CrashCoordinatorAfterFlush { at, dm } => {
            variants.push(FaultEvent::CrashCoordinatorAfterFlush {
                at: halve_at(at),
                dm: *dm,
            })
        }
        FaultEvent::RestartCoordinator { at, dm } => {
            variants.push(FaultEvent::RestartCoordinator {
                at: halve_at(at),
                dm: *dm,
            })
        }
        FaultEvent::Partition { at, until, a, b } => {
            variants.push(FaultEvent::Partition {
                at: *at,
                until: halve_window(at, until),
                a: *a,
                b: *b,
            });
            variants.push(FaultEvent::Partition {
                at: halve_at(at),
                until: *until,
                a: *a,
                b: *b,
            });
        }
        FaultEvent::PartitionOneWay {
            at,
            until,
            from,
            to,
        } => {
            variants.push(FaultEvent::PartitionOneWay {
                at: *at,
                until: halve_window(at, until),
                from: *from,
                to: *to,
            });
        }
        FaultEvent::LatencyStorm {
            at,
            until,
            a,
            b,
            extra,
            jitter,
        } => {
            variants.push(FaultEvent::LatencyStorm {
                at: *at,
                until: halve_window(at, until),
                a: *a,
                b: *b,
                extra: *extra,
                jitter: *jitter,
            });
        }
        FaultEvent::DropNotifications {
            at,
            until,
            from,
            to,
            probability,
        } => {
            variants.push(FaultEvent::DropNotifications {
                at: *at,
                until: halve_window(at, until),
                from: *from,
                to: *to,
                probability: *probability,
            });
        }
        FaultEvent::DuplicateNotifications {
            at,
            until,
            from,
            to,
            probability,
        } => {
            variants.push(FaultEvent::DuplicateNotifications {
                at: *at,
                until: halve_window(at, until),
                from: *from,
                to: *to,
                probability: *probability,
            });
        }
        FaultEvent::ClockSkewRamp {
            at,
            node,
            drift_ppm,
        } => variants.push(FaultEvent::ClockSkewRamp {
            at: halve_at(at),
            node: *node,
            drift_ppm: *drift_ppm,
        }),
    }
    // A zero-time variant equals the original for `at == 0`; drop no-ops.
    variants.retain(|v| v != event);
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_net::NodeId;

    fn crash(at_secs: u64, ds: u32) -> FaultEvent {
        FaultEvent::CrashDataSource {
            at: Duration::from_secs(at_secs),
            ds,
        }
    }

    fn partition(at_secs: u64, until_secs: u64) -> FaultEvent {
        FaultEvent::Partition {
            at: Duration::from_secs(at_secs),
            until: Duration::from_secs(until_secs),
            a: NodeId::middleware(0),
            b: NodeId::data_source(0),
        }
    }

    /// A synthetic failure oracle: the "bug" triggers iff ds1 crashes while
    /// some partition is scheduled. The shrinker must isolate exactly that
    /// pair out of a pile of noise events.
    fn synthetic_fails(schedule: &FaultSchedule) -> bool {
        let crash_ds1 = schedule
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::CrashDataSource { ds: 1, .. }));
        let any_partition = schedule
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Partition { .. }));
        crash_ds1 && any_partition
    }

    #[test]
    fn ddmin_isolates_the_failing_pair() {
        let schedule = FaultSchedule {
            events: vec![
                crash(1, 0),
                partition(2, 4),
                crash(3, 2),
                crash(4, 1), // culprit 1
                partition(5, 6),
                crash(6, 0),
                FaultEvent::ClockSkewRamp {
                    at: Duration::from_secs(1),
                    node: NodeId::data_source(2),
                    drift_ppm: 400,
                },
                crash(8, 2),
            ],
        };
        let report = shrink_schedule(&schedule, 200, synthetic_fails).expect("initial fails");
        assert!(!report.budget_exhausted);
        assert_eq!(report.minimized_events, 2, "{:?}", report.minimized);
        assert!(synthetic_fails(&report.minimized));
        assert!(report
            .minimized
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::CrashDataSource { ds: 1, .. })));
        assert!(report
            .minimized
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Partition { .. })));
        // The timeline artifact replays to the same schedule.
        let replayed = FaultSchedule::parse_timeline(&report.timeline()).unwrap();
        assert_eq!(replayed, report.minimized);
    }

    #[test]
    fn non_failing_schedule_returns_none() {
        let schedule = FaultSchedule {
            events: vec![crash(1, 0)],
        };
        assert!(shrink_schedule(&schedule, 50, synthetic_fails).is_none());
    }

    #[test]
    fn unconditional_failure_shrinks_to_empty() {
        // A bug that fires regardless of faults (e.g. a broken checker or an
        // injected engine bug) shrinks all the way to the empty schedule.
        let schedule = FaultSchedule {
            events: vec![crash(1, 0), partition(2, 3), crash(4, 2)],
        };
        let report = shrink_schedule(&schedule, 100, |_| true).unwrap();
        assert_eq!(report.minimized_events, 0);
        assert!(!report.budget_exhausted);
    }

    #[test]
    fn budget_exhaustion_is_reported_and_result_still_fails() {
        let schedule = FaultSchedule {
            events: (0..12).map(|i| crash(i, (i % 3) as u32)).collect(),
        };
        let report = shrink_schedule(&schedule, 3, |s| {
            s.events
                .iter()
                .any(|e| matches!(e, FaultEvent::CrashDataSource { ds: 1, .. }))
        })
        .unwrap();
        assert!(report.budget_exhausted);
        assert!(report.runs <= 3);
        assert!(report
            .minimized
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::CrashDataSource { ds: 1, .. })));
    }

    #[test]
    fn workload_shrink_isolates_the_failing_pair_across_clients() {
        use geotp_middleware::{ClientOp, GlobalKey};
        use geotp_storage::TableId;

        let spec = |row: u64| {
            TransactionSpec::single_round(vec![ClientOp::add(GlobalKey::new(TableId(0), row), 1)])
        };
        // 3 clients × 4 txns; the synthetic bug needs client 0 touching row 7
        // *and* client 2 touching row 9 (a cross-client race).
        let initial: Vec<Vec<TransactionSpec>> = vec![
            vec![spec(1), spec(7), spec(2), spec(3)],
            vec![spec(4), spec(5), spec(6), spec(4)],
            vec![spec(8), spec(8), spec(9), spec(8)],
        ];
        let touches = |scripts: &[Vec<TransactionSpec>], row: u64| {
            scripts
                .iter()
                .flatten()
                .any(|s| s.keys().contains(&GlobalKey::new(TableId(0), row)))
        };
        let report = shrink_workload(&initial, 200, |scripts| {
            touches(scripts, 7) && touches(scripts, 9)
        })
        .expect("initial workload fails");
        assert!(!report.budget_exhausted);
        assert_eq!(report.initial_clients, 3);
        assert_eq!(report.initial_txns, 12);
        assert_eq!(
            report.minimized_txns, 2,
            "exactly the two culprit transactions survive: {:?}",
            report.minimized
        );
        assert_eq!(
            report.minimized_clients, 2,
            "the middle (irrelevant) client is dropped entirely"
        );
        assert!(touches(&report.minimized, 7) && touches(&report.minimized, 9));
    }

    #[test]
    fn workload_shrink_returns_none_when_green() {
        let initial = vec![vec![TransactionSpec::default()]];
        assert!(shrink_workload(&initial, 50, |_| false).is_none());
    }

    #[test]
    fn timing_pass_halves_windows() {
        // Single event, failure independent of timing: the window shrinks.
        let schedule = FaultSchedule {
            events: vec![partition(4, 12)],
        };
        let report = shrink_schedule(&schedule, 100, |s| {
            s.events
                .iter()
                .any(|e| matches!(e, FaultEvent::Partition { .. }))
        })
        .unwrap();
        assert_eq!(report.minimized_events, 1);
        match &report.minimized.events[0] {
            FaultEvent::Partition { at, until, .. } => {
                assert!(*until < Duration::from_secs(12), "window not simplified");
                assert!(*at <= Duration::from_secs(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
