//! Named failure-drill presets.
//!
//! Each preset is a `(ChaosConfig, FaultSchedule)` pair aimed at one failure
//! mode the paper's protocol must survive. They run from the chaos sweeps in
//! this crate's tests, from the failure-drill table in `geotp-experiments`,
//! and from the `failure_drills` bench smoke target — always through the
//! same [`run_scenario`] harness, so a preset that regresses fails everywhere
//! at once.

use std::rc::Rc;
use std::time::Duration;

use geotp_net::NodeId;

use crate::harness::{run_scenario, run_scenario_with, ChaosConfig, ChaosReport};
use crate::schedule::{FaultEvent, FaultSchedule, RandomFaultConfig};
use crate::workload::TpccChaosWorkload;

/// Which workload a failure drill drives. Every preset runs under both —
/// scenario diversity multiplies (presets × workloads × checkers) instead of
/// adding one-off scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrillWorkload {
    /// Balance transfers (conservation makes atomicity observable).
    Transfer,
    /// The TPC-C five-profile mix at drill scale (interactive multi-round
    /// transactions, inserts, read-only profiles, §3.3.2 consistency
    /// conditions).
    Tpcc,
}

impl DrillWorkload {
    /// Both drill workloads, in table order.
    pub fn all() -> [DrillWorkload; 2] {
        [DrillWorkload::Transfer, DrillWorkload::Tpcc]
    }

    /// Stable identifier used in tables and CI output.
    pub fn name(&self) -> &'static str {
        match self {
            DrillWorkload::Transfer => "transfer",
            DrillWorkload::Tpcc => "tpcc",
        }
    }
}

/// The named failure drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A data source crashes while branches are mid-prepare, restarts later;
    /// durable-prepared branches must survive via the WAL.
    PreparePhaseCrash,
    /// The middleware↔slowest-data-source link partitions across the commit
    /// window and heals; stalled decisions must complete, not corrupt.
    CommitPhasePartition,
    /// Asymmetric partition: a data source can hear the middleware but not
    /// answer (response direction blocked), then heals.
    AsymmetricPartition,
    /// Every data source crashes and restarts in sequence.
    RollingRestarts,
    /// A WAN brownout: heavy extra latency plus per-message jitter on every
    /// middleware link for a sustained window.
    WanBrownout,
    /// The coordinator crashes deterministically right after flushing a
    /// commit decision (§V-A); a successor replays the shared commit log.
    CoordinatorFailover,
    /// Prepare votes and rollback confirmations are randomly dropped and
    /// duplicated; the decision-wait timeout and the notify hub's idempotent
    /// vote handling must cope.
    LossyNotifications,
    /// One node's clock drifts hundreds of ppm (plus a partition blip); the
    /// commit protocol never reads node clocks, so invariants stay green.
    ClockSkewDrift,
    /// A data-source crash in the middle of a WAN brownout — compound
    /// failure, the recovery paths under degraded links.
    CrashDuringBrownout,
    /// A seeded-random schedule ([`FaultSchedule::random`]) — different for
    /// every seed, always healing before the horizon.
    RandomizedFaults,
    /// Interactive clients under chaos: transfers ship one statement round
    /// at a time through live sessions, clients *think* between rounds
    /// (locks span real client round trips), every 4th transaction of each
    /// client is **abandoned mid-transaction** (connection drop — the
    /// middleware's cleanup must roll the orphans back), and the coordinator
    /// crashes in the §V-A window with a scripted failover while all of that
    /// is in flight. The scenario the one-shot spec API structurally could
    /// not express.
    InteractiveClientChaos,
}

impl Scenario {
    /// Every preset, in a stable order.
    pub fn all() -> [Scenario; 11] {
        [
            Scenario::PreparePhaseCrash,
            Scenario::CommitPhasePartition,
            Scenario::AsymmetricPartition,
            Scenario::RollingRestarts,
            Scenario::WanBrownout,
            Scenario::CoordinatorFailover,
            Scenario::LossyNotifications,
            Scenario::ClockSkewDrift,
            Scenario::CrashDuringBrownout,
            Scenario::RandomizedFaults,
            Scenario::InteractiveClientChaos,
        ]
    }

    /// Stable identifier used in tables, trace files and CI output.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::PreparePhaseCrash => "prepare_phase_crash",
            Scenario::CommitPhasePartition => "commit_phase_partition",
            Scenario::AsymmetricPartition => "asymmetric_partition",
            Scenario::RollingRestarts => "rolling_restarts",
            Scenario::WanBrownout => "wan_brownout",
            Scenario::CoordinatorFailover => "coordinator_failover",
            Scenario::LossyNotifications => "lossy_notifications",
            Scenario::ClockSkewDrift => "clock_skew_drift",
            Scenario::CrashDuringBrownout => "crash_during_brownout",
            Scenario::RandomizedFaults => "randomized_faults",
            Scenario::InteractiveClientChaos => "interactive_client_chaos",
        }
    }

    /// The preset's configuration and schedule for a given seed.
    pub fn build(&self, seed: u64) -> (ChaosConfig, FaultSchedule) {
        let mut config = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        if matches!(self, Scenario::CoordinatorFailover) {
            // Every transfer distributed: the flush that trips the fail
            // point belongs to a 2PC transaction, so the §V-A window
            // (prepared branches + durable decision, nothing dispatched)
            // is actually exercised.
            config.distributed_ratio = 1.0;
        }
        if matches!(self, Scenario::InteractiveClientChaos) {
            // Live sessions: one operation per statement round, client think
            // time between rounds, and a deterministic mid-transaction client
            // crash every 4th transaction per client.
            config.interactive_transfers = true;
            config.think_time = Duration::from_millis(20);
            config.client_crash_every = Some(4);
            config.distributed_ratio = 0.8;
        }
        let dm = NodeId::middleware(0);
        let ds = NodeId::data_source;
        let s = Duration::from_secs;
        let ms = Duration::from_millis;
        let schedule = match self {
            Scenario::PreparePhaseCrash => FaultSchedule::new()
                .with(FaultEvent::CrashDataSource { at: s(3), ds: 1 })
                .with(FaultEvent::RestartDataSource { at: s(8), ds: 1 }),
            Scenario::CommitPhasePartition => FaultSchedule::new().with(FaultEvent::Partition {
                at: s(2),
                until: s(6),
                a: dm,
                b: ds(2),
            }),
            Scenario::AsymmetricPartition => {
                FaultSchedule::new().with(FaultEvent::PartitionOneWay {
                    at: s(2),
                    until: s(5),
                    from: ds(1),
                    to: dm,
                })
            }
            Scenario::RollingRestarts => FaultSchedule::new()
                .with(FaultEvent::CrashDataSource { at: s(2), ds: 0 })
                .with(FaultEvent::RestartDataSource { at: s(4), ds: 0 })
                .with(FaultEvent::CrashDataSource {
                    at: ms(4_500),
                    ds: 1,
                })
                .with(FaultEvent::RestartDataSource {
                    at: ms(6_500),
                    ds: 1,
                })
                .with(FaultEvent::CrashDataSource { at: s(7), ds: 2 })
                .with(FaultEvent::RestartDataSource { at: s(9), ds: 2 }),
            Scenario::WanBrownout => {
                let mut schedule = FaultSchedule::new();
                for i in 0..3 {
                    schedule = schedule.with(FaultEvent::LatencyStorm {
                        at: s(2),
                        until: s(8),
                        a: dm,
                        b: ds(i),
                        extra: ms(150),
                        jitter: ms(50),
                    });
                }
                schedule
            }
            Scenario::CoordinatorFailover => FaultSchedule::new()
                .with(FaultEvent::CrashMiddlewareAfterFlush { at: ms(2_500) })
                .with(FaultEvent::FailoverMiddleware { at: s(5) }),
            Scenario::LossyNotifications => {
                let mut schedule = FaultSchedule::new();
                for i in 0..3 {
                    schedule = schedule
                        .with(FaultEvent::DropNotifications {
                            at: s(1),
                            until: s(8),
                            from: ds(i),
                            to: dm,
                            probability: 0.3,
                        })
                        .with(FaultEvent::DuplicateNotifications {
                            at: s(1),
                            until: s(8),
                            from: ds(i),
                            to: dm,
                            probability: 0.3,
                        });
                }
                schedule
            }
            Scenario::ClockSkewDrift => FaultSchedule::new()
                .with(FaultEvent::ClockSkewRamp {
                    at: s(1),
                    node: ds(2),
                    drift_ppm: 500,
                })
                .with(FaultEvent::ClockSkewRamp {
                    at: s(6),
                    node: ds(0),
                    drift_ppm: -250,
                })
                .with(FaultEvent::Partition {
                    at: s(3),
                    until: s(4),
                    a: dm,
                    b: ds(2),
                }),
            Scenario::CrashDuringBrownout => {
                let mut schedule = FaultSchedule::new()
                    .with(FaultEvent::CrashDataSource { at: s(3), ds: 0 })
                    .with(FaultEvent::RestartDataSource { at: s(7), ds: 0 });
                for i in 0..3 {
                    schedule = schedule.with(FaultEvent::LatencyStorm {
                        at: s(1),
                        until: s(9),
                        a: dm,
                        b: ds(i),
                        extra: ms(100),
                        jitter: ms(30),
                    });
                }
                schedule
            }
            Scenario::RandomizedFaults => FaultSchedule::random(
                seed,
                &RandomFaultConfig {
                    data_sources: 3,
                    faults: 4,
                    horizon: s(60),
                },
            ),
            Scenario::InteractiveClientChaos => FaultSchedule::new()
                .with(FaultEvent::CrashMiddlewareAfterFlush { at: ms(2_500) })
                .with(FaultEvent::FailoverMiddleware { at: s(5) })
                .with(FaultEvent::Partition {
                    at: s(6),
                    until: ms(7_500),
                    a: dm,
                    b: ds(1),
                }),
        };
        (config, schedule)
    }

    /// Build and run this preset under `seed` with the transfer workload.
    pub fn run(&self, seed: u64) -> ChaosReport {
        self.run_with(seed, DrillWorkload::Transfer)
    }

    /// Build and run this preset under `seed`, driving the chosen workload
    /// on a simulator with an explicit worker-shard count (the
    /// scheduler-independence matrix; `run_with` honours `GEOTP_WORKERS`
    /// instead).
    pub fn run_with_workers(
        &self,
        seed: u64,
        workload: DrillWorkload,
        workers: usize,
    ) -> ChaosReport {
        let (mut config, schedule) = self.build(seed);
        config.workers = Some(workers);
        match workload {
            DrillWorkload::Transfer => run_scenario(config, schedule),
            DrillWorkload::Tpcc => {
                let tpcc = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
                run_scenario_with(config, schedule, tpcc)
            }
        }
    }

    /// Build and run this preset under `seed`, driving the chosen workload.
    pub fn run_with(&self, seed: u64, workload: DrillWorkload) -> ChaosReport {
        let (config, schedule) = self.build(seed);
        match workload {
            DrillWorkload::Transfer => run_scenario(config, schedule),
            DrillWorkload::Tpcc => {
                let tpcc = Rc::new(TpccChaosWorkload::drill_scale(config.nodes()));
                run_scenario_with(config, schedule, tpcc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_are_unique_and_stable() {
        let names: Vec<&str> = Scenario::all().iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.len() >= 8, "the issue asks for ~8 presets");
    }

    #[test]
    fn schedules_heal_before_the_horizon() {
        for preset in Scenario::all() {
            for seed in [1, 7] {
                let (config, schedule) = preset.build(seed);
                assert!(
                    schedule.last_fault_instant() + config.decision_wait_timeout * 2
                        < config.horizon,
                    "{}: faults must heal comfortably before the horizon",
                    preset.name()
                );
            }
        }
    }
}
