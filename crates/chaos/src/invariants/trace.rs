//! Trace oracle: protocol happens-before rules checked over the telemetry
//! span record of a chaos run.
//!
//! The four state-based checkers (atomicity, durability, liveness,
//! serializability) read *durable artifacts* — WALs, commit logs, record
//! stores. They are blind to ordering bugs that happen to leave correct
//! final state: a coordinator that dispatches a commit *before* its log
//! flush is durably indistinguishable from a correct one unless it crashes
//! in the gap. The trace oracle closes that hole by checking the recorded
//! spans themselves.
//!
//! Every rule is a [`TraceRule`] — a named predicate over a [`TraceContext`]
//! (the span record plus the durable/concluded gtrid sets). The built-in
//! rules ship in [`builtin_rules`] and always run; harnesses register extra
//! scenario-specific rules through `ChaosConfig::trace_rules`, which
//! [`apply_with`] evaluates after the built-ins. The built-ins:
//!
//! * **R1 flush-before-dispatch** — on each `(gtrid, middleware)` pair,
//!   every `CommitDispatch` span starts at or after some `LogFlush` span of
//!   the same pair has ended. The write-ahead rule of the commit point.
//! * **R2 vote-before-decision** — every `VoteWait` span closes before the
//!   first `CommitDispatch`/`RollbackDispatch` of the same pair starts:
//!   decisions never race their own vote collection.
//! * **R3 admission-before-body** — every `Admission` queue span closes
//!   before the transaction's root `Txn` span starts on the same
//!   coordinator: admitted work never begins while still queued.
//! * **R4 recovery-needs-evidence** — `Recovery` spans attach only to
//!   gtrids that left at least one durable branch record
//!   (`Prepare`/`Commit`/`Abort`) in some WAL; recovery of a transaction no
//!   engine ever heard of is a bookkeeping bug.
//! * **R5 well-formed span trees** — every parent reference resolves to a
//!   recorded span, and no *middleware* span of a concluded transaction
//!   (the client got a definite answer) is still open at run end.
//!
//! The oracle consumes no randomness and never sleeps — it runs after the
//! workload drains, over data structures telemetry already built — so
//! enabling it cannot perturb schedules and replay fingerprints stay
//! byte-identical. All rules are keyed per gtrid, which makes them safe
//! under the capped tracer's whole-gtrid eviction: an evicted transaction
//! simply contributes no spans, it never leaves a dangling half.

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{AbortReason, TxnOutcome};
use geotp_simrt::hash::{FxHashMap, FxHashSet};
use geotp_storage::wal::LogRecord;
use geotp_telemetry::{NodeClass, Span, SpanId, SpanKind, Telemetry, TraceNode};

use super::InvariantReport;

/// Everything a trace rule may inspect: the recorded spans, the spans still
/// open at run end, the gtrids with at least one durable branch record, and
/// the gtrids whose client got a definite answer.
pub struct TraceContext<'a> {
    /// Every recorded span, in deterministic program order.
    pub spans: &'a [Span],
    /// Spans still open when the run ended.
    pub open: &'a [SpanId],
    /// Gtrids with a durable `Prepare`/`Commit`/`Abort` in some WAL.
    pub durable_gtrids: &'a FxHashSet<u64>,
    /// Gtrids whose outcome the client saw (not coordinator-crash limbo).
    pub concluded_gtrids: &'a FxHashSet<u64>,
}

/// One named happens-before predicate over a run's span record.
///
/// Implementations must be pure over the [`TraceContext`] — no clock, no
/// randomness, no I/O — so that enabling a rule never perturbs schedules
/// and its verdict is deterministic. Violations are returned one line each,
/// in an order derived only from the context (span program order or sorted
/// key order).
pub trait TraceRule {
    /// Short stable identifier, used to label the rule's violations.
    fn name(&self) -> &'static str;
    /// Evaluate the rule; one line per violation, empty when it holds.
    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String>;
}

/// An ordered set of extra [`TraceRule`]s for a harness to evaluate after
/// the built-ins. `Default` is empty — the built-ins alone.
#[derive(Clone, Default)]
pub struct TraceRules(pub Vec<Rc<dyn TraceRule>>);

impl TraceRules {
    /// Register one more rule, builder-style.
    pub fn with(mut self, rule: Rc<dyn TraceRule>) -> Self {
        self.0.push(rule);
        self
    }
}

impl std::fmt::Debug for TraceRules {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.0.iter().map(|r| r.name()))
            .finish()
    }
}

/// Per-`(gtrid, node)` extrema accumulated in one pass over the spans.
#[derive(Default)]
struct Group {
    /// Earliest `LogFlush` end (micros). R1 needs "∃ flush ended ≤ dispatch
    /// start", which over a min is "flush_end_min ≤ dispatch start".
    flush_end_min: Option<u64>,
    /// Latest `VoteWait` end.
    vote_end_max: Option<u64>,
    /// Earliest `CommitDispatch`/`RollbackDispatch` start.
    dispatch_start_min: Option<u64>,
    /// Latest `Admission` end.
    admission_end_max: Option<u64>,
    /// Earliest root `Txn` start.
    txn_start_min: Option<u64>,
}

fn min_in(slot: &mut Option<u64>, v: u64) {
    *slot = Some(slot.map_or(v, |cur| cur.min(v)));
}

fn max_in(slot: &mut Option<u64>, v: u64) {
    *slot = Some(slot.map_or(v, |cur| cur.max(v)));
}

fn group_extrema(spans: &[Span]) -> FxHashMap<(u64, TraceNode), Group> {
    let mut groups: FxHashMap<(u64, TraceNode), Group> = FxHashMap::default();
    for s in spans {
        let g = groups.entry((s.id.gtrid, s.id.node)).or_default();
        let (start, end) = (s.start.as_micros(), s.end.as_micros());
        match s.kind {
            SpanKind::LogFlush => min_in(&mut g.flush_end_min, end),
            SpanKind::VoteWait => max_in(&mut g.vote_end_max, end),
            SpanKind::CommitDispatch | SpanKind::RollbackDispatch => {
                min_in(&mut g.dispatch_start_min, start)
            }
            SpanKind::Admission => max_in(&mut g.admission_end_max, end),
            SpanKind::Txn => min_in(&mut g.txn_start_min, start),
            _ => {}
        }
    }
    groups
}

/// Walk the per-group extrema in sorted key order.
fn each_group(
    groups: &FxHashMap<(u64, TraceNode), Group>,
    mut visit: impl FnMut(u64, TraceNode, &Group),
) {
    let mut keys: Vec<&(u64, TraceNode)> = groups.keys().collect();
    keys.sort_unstable();
    for key in keys {
        visit(key.0, key.1, &groups[key]);
    }
}

/// R1: per dispatch, so a late flush cannot excuse an early dispatch.
struct FlushBeforeDispatch;

impl TraceRule for FlushBeforeDispatch {
    fn name(&self) -> &'static str {
        "flush-before-dispatch"
    }

    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
        let groups = group_extrema(ctx.spans);
        let mut violations = Vec::new();
        for s in ctx.spans {
            if s.kind != SpanKind::CommitDispatch {
                continue;
            }
            let flushed = groups
                .get(&(s.id.gtrid, s.id.node))
                .and_then(|g| g.flush_end_min);
            match flushed {
                None => violations.push(format!(
                    "commit dispatch {} has no log flush on its node",
                    s.id
                )),
                Some(f) if f > s.start.as_micros() => violations.push(format!(
                    "commit dispatch {} starts at {}us before the earliest log flush ends at {f}us",
                    s.id,
                    s.start.as_micros()
                )),
                Some(_) => {}
            }
        }
        violations
    }
}

/// R2: decisions never race their own vote collection.
struct VoteBeforeDecision;

impl TraceRule for VoteBeforeDecision {
    fn name(&self) -> &'static str {
        "vote-before-decision"
    }

    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
        let mut violations = Vec::new();
        each_group(&group_extrema(ctx.spans), |gtrid, node, g| {
            if let (Some(vote), Some(dispatch)) = (g.vote_end_max, g.dispatch_start_min) {
                if vote > dispatch {
                    violations.push(format!(
                        "gtrid {gtrid}: vote wait on {node} still open at {vote}us when the \
                         decision dispatched at {dispatch}us"
                    ));
                }
            }
        });
        violations
    }
}

/// R3: admitted work never begins while still queued.
struct AdmissionBeforeBody;

impl TraceRule for AdmissionBeforeBody {
    fn name(&self) -> &'static str {
        "admission-before-body"
    }

    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
        let mut violations = Vec::new();
        each_group(&group_extrema(ctx.spans), |gtrid, node, g| {
            if let (Some(admission), Some(txn)) = (g.admission_end_max, g.txn_start_min) {
                if admission > txn {
                    violations.push(format!(
                        "gtrid {gtrid}: admission queue on {node} released at {admission}us \
                         after the txn body started at {txn}us"
                    ));
                }
            }
        });
        violations
    }
}

/// R4: recovery spans only attach to gtrids with durable evidence.
struct RecoveryNeedsEvidence;

impl TraceRule for RecoveryNeedsEvidence {
    fn name(&self) -> &'static str {
        "recovery-needs-evidence"
    }

    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
        let mut violations = Vec::new();
        for s in ctx.spans {
            if s.kind == SpanKind::Recovery && !ctx.durable_gtrids.contains(&s.id.gtrid) {
                violations.push(format!(
                    "recovery span {} attaches to gtrid {} with no durable branch record",
                    s.id, s.id.gtrid
                ));
            }
        }
        violations
    }
}

/// R5: parent references resolve, and no coordinator-side span of a
/// concluded transaction is left open. Indeterminate outcomes are exempt —
/// a crashed coordinator legitimately strands its open spans.
struct WellFormedSpanTrees;

impl TraceRule for WellFormedSpanTrees {
    fn name(&self) -> &'static str {
        "well-formed-span-trees"
    }

    fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
        let mut violations = Vec::new();
        let ids: FxHashSet<(u64, TraceNode, u32)> = ctx
            .spans
            .iter()
            .map(|s| (s.id.gtrid, s.id.node, s.id.seq))
            .collect();
        for s in ctx.spans {
            if let Some(p) = s.parent {
                if !ids.contains(&(p.gtrid, p.node, p.seq)) {
                    violations.push(format!("span {} has unresolved parent {p}", s.id));
                }
            }
        }
        for id in ctx.open {
            if id.node.class == NodeClass::Middleware && ctx.concluded_gtrids.contains(&id.gtrid) {
                violations.push(format!("span {id} still open after its txn concluded"));
            }
        }
        violations
    }
}

/// The five built-in happens-before rules, in evaluation order.
pub fn builtin_rules() -> Vec<Rc<dyn TraceRule>> {
    vec![
        Rc::new(FlushBeforeDispatch),
        Rc::new(VoteBeforeDecision),
        Rc::new(AdmissionBeforeBody),
        Rc::new(RecoveryNeedsEvidence),
        Rc::new(WellFormedSpanTrees),
    ]
}

/// Evaluate every built-in trace rule over a span record. Pure function
/// over the inputs; returns one line per violation, in deterministic order
/// (rule order, then each rule's own span/sorted-group order).
pub fn check_spans(
    spans: &[Span],
    open: &[SpanId],
    durable_gtrids: &FxHashSet<u64>,
    concluded_gtrids: &FxHashSet<u64>,
) -> Vec<String> {
    let ctx = TraceContext {
        spans,
        open,
        durable_gtrids,
        concluded_gtrids,
    };
    let mut violations = Vec::new();
    for rule in builtin_rules() {
        violations.extend(rule.check(&ctx));
    }
    violations
}

/// Run the trace oracle — built-ins only — over the installed run's
/// telemetry and fold the verdict into `report.trace_ok`.
pub fn apply(
    report: &mut InvariantReport,
    telemetry: &Telemetry,
    sources: &[Rc<DataSource>],
    ledger: &[TxnOutcome],
) {
    apply_with(report, telemetry, sources, ledger, &TraceRules::default());
}

/// Run the trace oracle — built-ins plus `extra` rules — over the installed
/// run's telemetry and fold the verdict into `report.trace_ok`. Harvests
/// the durable-gtrid set from the WALs and the concluded set from the
/// client ledger (outcomes with a definite answer — everything except
/// coordinator-crash indeterminates). Extra-rule violations carry the
/// rule's name so a conviction points at the predicate that fired.
pub fn apply_with(
    report: &mut InvariantReport,
    telemetry: &Telemetry,
    sources: &[Rc<DataSource>],
    ledger: &[TxnOutcome],
    extra: &TraceRules,
) {
    let mut durable: FxHashSet<u64> = FxHashSet::default();
    for ds in sources {
        for record in ds.engine().wal().all_records() {
            if let LogRecord::Prepare(xid) | LogRecord::Commit(xid) | LogRecord::Abort(xid) = record
            {
                durable.insert(xid.gtrid);
            }
        }
    }
    let concluded: FxHashSet<u64> = ledger
        .iter()
        .filter(|o| o.gtrid != 0 && o.abort_reason != Some(AbortReason::CoordinatorCrashed))
        .map(|o| o.gtrid)
        .collect();

    let open = telemetry.tracer.open_spans();
    let spans = telemetry.tracer.spans();
    let ctx = TraceContext {
        spans: &spans,
        open: &open,
        durable_gtrids: &durable,
        concluded_gtrids: &concluded,
    };
    let mut violations = Vec::new();
    for rule in builtin_rules() {
        violations.extend(rule.check(&ctx).into_iter().map(|v| format!("trace: {v}")));
    }
    for rule in &extra.0 {
        violations.extend(
            rule.check(&ctx)
                .into_iter()
                .map(|v| format!("trace[{}]: {v}", rule.name())),
        );
    }
    drop(spans);
    if !violations.is_empty() {
        report.trace_ok = false;
        report.violations.extend(violations);
    }
}

#[cfg(test)]
mod tests {
    use geotp_simrt::{Runtime, SimInstant};
    use geotp_telemetry::Tracer;

    use super::*;

    fn us(n: u64) -> SimInstant {
        SimInstant::from_micros(n)
    }

    fn sets(durable: &[u64], concluded: &[u64]) -> (FxHashSet<u64>, FxHashSet<u64>) {
        (
            durable.iter().copied().collect(),
            concluded.iter().copied().collect(),
        )
    }

    /// Build a bad span tree inside a runtime (the tracer reads the virtual
    /// clock) and return the oracle's violations.
    fn violations_of(
        build: impl FnOnce(&Tracer),
        durable: &[u64],
        concluded: &[u64],
    ) -> Vec<String> {
        let mut rt = Runtime::new();
        let (durable, concluded) = sets(durable, concluded);
        rt.block_on(async move {
            let t = Tracer::new();
            build(&t);
            let v = check_spans(&t.spans(), &t.open_spans(), &durable, &concluded);
            v
        })
    }

    #[test]
    fn r1_convicts_commit_dispatch_before_flush() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(7, dm, SpanKind::CommitDispatch, 2, us(10), us(20));
                t.leaf_window(7, dm, SpanKind::LogFlush, 0, us(30), us(40));
            },
            &[7],
            &[7],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("before the earliest log flush"), "{v:?}");
    }

    #[test]
    fn r1_convicts_commit_dispatch_with_no_flush_at_all() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(7, dm, SpanKind::CommitDispatch, 2, us(10), us(20));
            },
            &[7],
            &[7],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no log flush"), "{v:?}");
    }

    #[test]
    fn r2_convicts_vote_wait_open_past_the_decision() {
        let dm = TraceNode::middleware(1);
        let v = violations_of(
            |t| {
                t.leaf_window(9, dm, SpanKind::VoteWait, 0, us(0), us(50));
                t.leaf_window(9, dm, SpanKind::LogFlush, 0, us(10), us(20));
                t.leaf_window(9, dm, SpanKind::RollbackDispatch, 1, us(30), us(60));
            },
            &[9],
            &[9],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("vote wait"), "{v:?}");
    }

    #[test]
    fn r3_convicts_admission_overlapping_the_txn_body() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(4, dm, SpanKind::Admission, 0, us(0), us(100));
                let root = t.start_root_at(4, dm, SpanKind::Txn, 0, us(50));
                t.end(root);
            },
            &[4],
            &[4],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("admission queue"), "{v:?}");
    }

    #[test]
    fn r4_convicts_recovery_without_durable_evidence() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(11, dm, SpanKind::Recovery, 0, us(5), us(15));
            },
            &[], // no WAL record anywhere for gtrid 11
            &[],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no durable branch record"), "{v:?}");
    }

    #[test]
    fn r5_convicts_unresolved_parents_and_spans_left_open() {
        let dm = TraceNode::middleware(0);
        let foreign = TraceNode::data_source(2);
        let v = violations_of(
            |t| {
                // A parent triple recorded on another collector: the local
                // span set cannot resolve it.
                let other = Tracer::new();
                let remote = other.start_root(3, foreign, SpanKind::AgentExec, 0);
                t.start_scoped_under(3, dm, SpanKind::Round, 0, Some(remote));
                // And the Round span above is still open for a concluded txn.
            },
            &[3],
            &[3],
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("unresolved parent"), "{v:?}");
        assert!(v[1].contains("still open"), "{v:?}");
    }

    #[test]
    fn r5_exempts_open_spans_of_indeterminate_txns() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.start_root(6, dm, SpanKind::Txn, 0);
            },
            &[6],
            &[], // coordinator crashed: gtrid 6 never concluded
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn a_correct_commit_trace_is_clean() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(1, dm, SpanKind::Admission, 0, us(0), us(5));
                let root = t.start_root_at(1, dm, SpanKind::Txn, 0, us(10));
                t.leaf_window(1, dm, SpanKind::VoteWait, 0, us(20), us(30));
                t.leaf_window(1, dm, SpanKind::LogFlush, 0, us(30), us(40));
                t.leaf_window(1, dm, SpanKind::CommitDispatch, 2, us(40), us(60));
                t.end(root);
                t.leaf_window(1, dm, SpanKind::Recovery, 0, us(80), us(90));
            },
            &[1],
            &[1],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    /// A custom rule caps transaction span fan-out per gtrid.
    struct MaxSpansPerTxn(usize);

    impl TraceRule for MaxSpansPerTxn {
        fn name(&self) -> &'static str {
            "max-spans-per-txn"
        }

        fn check(&self, ctx: &TraceContext<'_>) -> Vec<String> {
            let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
            for s in ctx.spans {
                *counts.entry(s.id.gtrid).or_default() += 1;
            }
            let mut gtrids: Vec<u64> = counts
                .iter()
                .filter(|(_, &n)| n > self.0)
                .map(|(&g, _)| g)
                .collect();
            gtrids.sort_unstable();
            gtrids
                .into_iter()
                .map(|g| format!("gtrid {g} recorded more than {} spans", self.0))
                .collect()
        }
    }

    #[test]
    fn custom_rules_run_after_the_builtins() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let t = Tracer::new();
            let dm = TraceNode::middleware(0);
            t.leaf_window(1, dm, SpanKind::LogFlush, 0, us(0), us(10));
            t.leaf_window(1, dm, SpanKind::CommitDispatch, 1, us(10), us(20));

            let (durable, concluded) = sets(&[1], &[1]);
            let spans = t.spans();
            let open = t.open_spans();
            let ctx = TraceContext {
                spans: &spans,
                open: &open,
                durable_gtrids: &durable,
                concluded_gtrids: &concluded,
            };
            // Built-ins are clean; a tight custom rule convicts, a loose
            // one does not.
            for rule in builtin_rules() {
                assert!(rule.check(&ctx).is_empty(), "{}", rule.name());
            }
            let tight = MaxSpansPerTxn(1);
            let loose = MaxSpansPerTxn(10);
            assert_eq!(
                tight.check(&ctx),
                vec!["gtrid 1 recorded more than 1 spans".to_string()]
            );
            assert!(loose.check(&ctx).is_empty());

            let rules = TraceRules::default()
                .with(Rc::new(MaxSpansPerTxn(1)))
                .with(Rc::new(MaxSpansPerTxn(10)));
            assert_eq!(
                format!("{rules:?}"),
                "[\"max-spans-per-txn\", \"max-spans-per-txn\"]"
            );
        });
    }
}
