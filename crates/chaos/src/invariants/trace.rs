//! Trace oracle: protocol happens-before rules checked over the telemetry
//! span record of a chaos run.
//!
//! The four state-based checkers (atomicity, durability, liveness,
//! serializability) read *durable artifacts* — WALs, commit logs, record
//! stores. They are blind to ordering bugs that happen to leave correct
//! final state: a coordinator that dispatches a commit *before* its log
//! flush is durably indistinguishable from a correct one unless it crashes
//! in the gap. The trace oracle closes that hole by checking the recorded
//! spans themselves:
//!
//! * **R1 flush-before-dispatch** — on each `(gtrid, middleware)` pair,
//!   every `CommitDispatch` span starts at or after some `LogFlush` span of
//!   the same pair has ended. The write-ahead rule of the commit point.
//! * **R2 vote-before-decision** — every `VoteWait` span closes before the
//!   first `CommitDispatch`/`RollbackDispatch` of the same pair starts:
//!   decisions never race their own vote collection.
//! * **R3 admission-before-body** — every `Admission` queue span closes
//!   before the transaction's root `Txn` span starts on the same
//!   coordinator: admitted work never begins while still queued.
//! * **R4 recovery-needs-evidence** — `Recovery` spans attach only to
//!   gtrids that left at least one durable branch record
//!   (`Prepare`/`Commit`/`Abort`) in some WAL; recovery of a transaction no
//!   engine ever heard of is a bookkeeping bug.
//! * **R5 well-formed span trees** — every parent reference resolves to a
//!   recorded span, and no *middleware* span of a concluded transaction
//!   (the client got a definite answer) is still open at run end.
//!
//! The oracle consumes no randomness and never sleeps — it runs after the
//! workload drains, over data structures telemetry already built — so
//! enabling it cannot perturb schedules and replay fingerprints stay
//! byte-identical. All rules are keyed per gtrid, which makes them safe
//! under the capped tracer's whole-gtrid eviction: an evicted transaction
//! simply contributes no spans, it never leaves a dangling half.

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{AbortReason, TxnOutcome};
use geotp_simrt::hash::{FxHashMap, FxHashSet};
use geotp_storage::wal::LogRecord;
use geotp_telemetry::{NodeClass, Span, SpanId, SpanKind, Telemetry, TraceNode};

use super::InvariantReport;

/// Per-`(gtrid, node)` extrema accumulated in one pass over the spans.
#[derive(Default)]
struct Group {
    /// Earliest `LogFlush` end (micros). R1 needs "∃ flush ended ≤ dispatch
    /// start", which over a min is "flush_end_min ≤ dispatch start".
    flush_end_min: Option<u64>,
    /// Latest `VoteWait` end.
    vote_end_max: Option<u64>,
    /// Earliest `CommitDispatch`/`RollbackDispatch` start.
    dispatch_start_min: Option<u64>,
    /// Latest `Admission` end.
    admission_end_max: Option<u64>,
    /// Earliest root `Txn` start.
    txn_start_min: Option<u64>,
}

fn min_in(slot: &mut Option<u64>, v: u64) {
    *slot = Some(slot.map_or(v, |cur| cur.min(v)));
}

fn max_in(slot: &mut Option<u64>, v: u64) {
    *slot = Some(slot.map_or(v, |cur| cur.max(v)));
}

/// Evaluate every trace rule over a span record. Pure function over the
/// inputs; returns one line per violation, in deterministic order (span
/// program order, then sorted group order).
pub fn check_spans(
    spans: &[Span],
    open: &[SpanId],
    durable_gtrids: &FxHashSet<u64>,
    concluded_gtrids: &FxHashSet<u64>,
) -> Vec<String> {
    let mut violations = Vec::new();

    let ids: FxHashSet<(u64, TraceNode, u32)> = spans
        .iter()
        .map(|s| (s.id.gtrid, s.id.node, s.id.seq))
        .collect();

    // Single pass: R4 + R5a inline (span program order is deterministic),
    // extrema for the windowed rules.
    let mut groups: FxHashMap<(u64, TraceNode), Group> = FxHashMap::default();
    for s in spans {
        if let Some(p) = s.parent {
            if !ids.contains(&(p.gtrid, p.node, p.seq)) {
                violations.push(format!("span {} has unresolved parent {p}", s.id));
            }
        }
        if s.kind == SpanKind::Recovery && !durable_gtrids.contains(&s.id.gtrid) {
            violations.push(format!(
                "recovery span {} attaches to gtrid {} with no durable branch record",
                s.id, s.id.gtrid
            ));
        }
        let g = groups.entry((s.id.gtrid, s.id.node)).or_default();
        let (start, end) = (s.start.as_micros(), s.end.as_micros());
        match s.kind {
            SpanKind::LogFlush => min_in(&mut g.flush_end_min, end),
            SpanKind::VoteWait => max_in(&mut g.vote_end_max, end),
            SpanKind::CommitDispatch | SpanKind::RollbackDispatch => {
                min_in(&mut g.dispatch_start_min, start)
            }
            SpanKind::Admission => max_in(&mut g.admission_end_max, end),
            SpanKind::Txn => min_in(&mut g.txn_start_min, start),
            _ => {}
        }
    }

    // R1: per dispatch, so a late flush cannot excuse an early dispatch.
    for s in spans {
        if s.kind != SpanKind::CommitDispatch {
            continue;
        }
        let flushed = groups
            .get(&(s.id.gtrid, s.id.node))
            .and_then(|g| g.flush_end_min);
        match flushed {
            None => violations.push(format!(
                "commit dispatch {} has no log flush on its node",
                s.id
            )),
            Some(f) if f > s.start.as_micros() => violations.push(format!(
                "commit dispatch {} starts at {}us before the earliest log flush ends at {f}us",
                s.id,
                s.start.as_micros()
            )),
            Some(_) => {}
        }
    }

    // R2 + R3 over the per-group extrema, in sorted group order.
    let mut keys: Vec<&(u64, TraceNode)> = groups.keys().collect();
    keys.sort_unstable();
    for key in keys {
        let (gtrid, node) = *key;
        let g = &groups[key];
        if let (Some(vote), Some(dispatch)) = (g.vote_end_max, g.dispatch_start_min) {
            if vote > dispatch {
                violations.push(format!(
                    "gtrid {gtrid}: vote wait on {node} still open at {vote}us when the \
                     decision dispatched at {dispatch}us"
                ));
            }
        }
        if let (Some(admission), Some(txn)) = (g.admission_end_max, g.txn_start_min) {
            if admission > txn {
                violations.push(format!(
                    "gtrid {gtrid}: admission queue on {node} released at {admission}us \
                     after the txn body started at {txn}us"
                ));
            }
        }
    }

    // R5b: a concluded transaction (client got a definite answer) must have
    // closed every coordinator-side span. Indeterminate outcomes are exempt
    // — a crashed coordinator legitimately strands its open spans.
    for id in open {
        if id.node.class == NodeClass::Middleware && concluded_gtrids.contains(&id.gtrid) {
            violations.push(format!("span {id} still open after its txn concluded"));
        }
    }

    violations
}

/// Run the trace oracle over the installed run's telemetry and fold the
/// verdict into `report.trace_ok`. Harvests the durable-gtrid set from the
/// WALs and the concluded set from the client ledger (outcomes with a
/// definite answer — everything except coordinator-crash indeterminates).
pub fn apply(
    report: &mut InvariantReport,
    telemetry: &Telemetry,
    sources: &[Rc<DataSource>],
    ledger: &[TxnOutcome],
) {
    let mut durable: FxHashSet<u64> = FxHashSet::default();
    for ds in sources {
        for record in ds.engine().wal().all_records() {
            if let LogRecord::Prepare(xid) | LogRecord::Commit(xid) | LogRecord::Abort(xid) = record
            {
                durable.insert(xid.gtrid);
            }
        }
    }
    let concluded: FxHashSet<u64> = ledger
        .iter()
        .filter(|o| o.gtrid != 0 && o.abort_reason != Some(AbortReason::CoordinatorCrashed))
        .map(|o| o.gtrid)
        .collect();

    let open = telemetry.tracer.open_spans();
    let spans = telemetry.tracer.spans();
    let violations = check_spans(&spans, &open, &durable, &concluded);
    drop(spans);
    if !violations.is_empty() {
        report.trace_ok = false;
        report
            .violations
            .extend(violations.into_iter().map(|v| format!("trace: {v}")));
    }
}

#[cfg(test)]
mod tests {
    use geotp_simrt::{Runtime, SimInstant};
    use geotp_telemetry::Tracer;

    use super::*;

    fn us(n: u64) -> SimInstant {
        SimInstant::from_micros(n)
    }

    fn sets(durable: &[u64], concluded: &[u64]) -> (FxHashSet<u64>, FxHashSet<u64>) {
        (
            durable.iter().copied().collect(),
            concluded.iter().copied().collect(),
        )
    }

    /// Build a bad span tree inside a runtime (the tracer reads the virtual
    /// clock) and return the oracle's violations.
    fn violations_of(
        build: impl FnOnce(&Tracer),
        durable: &[u64],
        concluded: &[u64],
    ) -> Vec<String> {
        let mut rt = Runtime::new();
        let (durable, concluded) = sets(durable, concluded);
        rt.block_on(async move {
            let t = Tracer::new();
            build(&t);
            let v = check_spans(&t.spans(), &t.open_spans(), &durable, &concluded);
            v
        })
    }

    #[test]
    fn r1_convicts_commit_dispatch_before_flush() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(7, dm, SpanKind::CommitDispatch, 2, us(10), us(20));
                t.leaf_window(7, dm, SpanKind::LogFlush, 0, us(30), us(40));
            },
            &[7],
            &[7],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("before the earliest log flush"), "{v:?}");
    }

    #[test]
    fn r1_convicts_commit_dispatch_with_no_flush_at_all() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(7, dm, SpanKind::CommitDispatch, 2, us(10), us(20));
            },
            &[7],
            &[7],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no log flush"), "{v:?}");
    }

    #[test]
    fn r2_convicts_vote_wait_open_past_the_decision() {
        let dm = TraceNode::middleware(1);
        let v = violations_of(
            |t| {
                t.leaf_window(9, dm, SpanKind::VoteWait, 0, us(0), us(50));
                t.leaf_window(9, dm, SpanKind::LogFlush, 0, us(10), us(20));
                t.leaf_window(9, dm, SpanKind::RollbackDispatch, 1, us(30), us(60));
            },
            &[9],
            &[9],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("vote wait"), "{v:?}");
    }

    #[test]
    fn r3_convicts_admission_overlapping_the_txn_body() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(4, dm, SpanKind::Admission, 0, us(0), us(100));
                let root = t.start_root_at(4, dm, SpanKind::Txn, 0, us(50));
                t.end(root);
            },
            &[4],
            &[4],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("admission queue"), "{v:?}");
    }

    #[test]
    fn r4_convicts_recovery_without_durable_evidence() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(11, dm, SpanKind::Recovery, 0, us(5), us(15));
            },
            &[], // no WAL record anywhere for gtrid 11
            &[],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no durable branch record"), "{v:?}");
    }

    #[test]
    fn r5_convicts_unresolved_parents_and_spans_left_open() {
        let dm = TraceNode::middleware(0);
        let foreign = TraceNode::data_source(2);
        let v = violations_of(
            |t| {
                // A parent triple recorded on another collector: the local
                // span set cannot resolve it.
                let other = Tracer::new();
                let remote = other.start_root(3, foreign, SpanKind::AgentExec, 0);
                t.start_scoped_under(3, dm, SpanKind::Round, 0, Some(remote));
                // And the Round span above is still open for a concluded txn.
            },
            &[3],
            &[3],
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("unresolved parent"), "{v:?}");
        assert!(v[1].contains("still open"), "{v:?}");
    }

    #[test]
    fn r5_exempts_open_spans_of_indeterminate_txns() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.start_root(6, dm, SpanKind::Txn, 0);
            },
            &[6],
            &[], // coordinator crashed: gtrid 6 never concluded
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn a_correct_commit_trace_is_clean() {
        let dm = TraceNode::middleware(0);
        let v = violations_of(
            |t| {
                t.leaf_window(1, dm, SpanKind::Admission, 0, us(0), us(5));
                let root = t.start_root_at(1, dm, SpanKind::Txn, 0, us(10));
                t.leaf_window(1, dm, SpanKind::VoteWait, 0, us(20), us(30));
                t.leaf_window(1, dm, SpanKind::LogFlush, 0, us(30), us(40));
                t.leaf_window(1, dm, SpanKind::CommitDispatch, 2, us(40), us(60));
                t.end(root);
                t.leaf_window(1, dm, SpanKind::Recovery, 0, us(80), us(90));
            },
            &[1],
            &[1],
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
