//! Elle-lite serializability checking over engine-recorded histories.
//!
//! The storage engines (with `record_history` on) hand us, for every
//! *committed* branch, the versioned reads it performed and the versions its
//! writes installed (see `geotp_storage::history`). Because each key's
//! committed versions form a known total order (0 = bulk load, then +1 per
//! committing writer), the full Adya dependency graph is derivable without
//! any inference step — the hard part of Elle's general construction — and
//! serializability reduces to two checks:
//!
//! 1. **Observation integrity** — every read's recorded value fingerprint
//!    must equal the committed fingerprint of the version it claims to have
//!    observed. A mismatch means the reader saw data that was never a
//!    committed version of the key: a dirty or corrupted read, convicting
//!    isolation directly with no graph search needed.
//! 2. **Acyclicity** — the union of `WW` (installer of version *v* →
//!    installer of *v+1*), `WR` (installer of *v* → every reader of *v*) and
//!    `RW` anti-dependency edges (reader of *v* → installer of *v+1*) must
//!    be acyclic. Any cycle is a serializability violation (G0/G1c/G2);
//!    a topological order of the graph *is* a valid serial order.
//!
//! Transactions are graph nodes by gtrid: branches of the same global
//! transaction on different data sources merge into one node, so cross-node
//! anomalies (one branch serialized before, the other after a sibling) close
//! cycles exactly like single-node ones.

use geotp_simrt::hash::{FxHashMap, FxHashSet};
use geotp_storage::{BranchHistory, Key};

/// The serializability checker's verdict.
#[derive(Debug, Clone, Default)]
pub struct SerializabilityReport {
    /// Whether the history is serializable (and every read observed a real
    /// committed version).
    pub ok: bool,
    /// One line per violation, sorted for deterministic traces.
    pub violations: Vec<String>,
    /// Committed global transactions in the history.
    pub txns: usize,
    /// Distinct dependency edges in the graph.
    pub edges: usize,
}

#[derive(Default)]
struct KeyAccesses {
    /// `(installed version, gtrid, installed fingerprint)`.
    writers: Vec<(u64, u64, u64)>,
    /// `(observed version, gtrid, observed fingerprint)`.
    readers: Vec<(u64, u64, u64)>,
}

/// Check the merged history of every engine. `base_fingerprints` maps keys to
/// the fingerprint of their bulk-loaded version-0 value (union over engines;
/// keys are partitioned, so the maps never conflict).
pub fn check(
    histories: &[BranchHistory],
    base_fingerprints: &FxHashMap<Key, u64>,
) -> SerializabilityReport {
    let mut violations = Vec::new();

    // ---------------- per-key access tables ----------------
    let mut keys: FxHashMap<Key, KeyAccesses> = FxHashMap::default();
    let mut txns: FxHashSet<u64> = FxHashSet::default();
    for branch in histories {
        let gtrid = branch.xid.gtrid;
        txns.insert(gtrid);
        for read in &branch.reads {
            keys.entry(read.key).or_default().readers.push((
                read.observed.version,
                gtrid,
                read.observed.fingerprint,
            ));
        }
        for write in &branch.writes {
            keys.entry(write.key).or_default().writers.push((
                write.installed.version,
                gtrid,
                write.installed.fingerprint,
            ));
        }
    }

    // ---------------- edges + observation integrity ----------------
    let mut adjacency: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    let mut edge_set: FxHashSet<(u64, u64)> = FxHashSet::default();
    let mut add_edge = |from: u64, to: u64, adjacency: &mut FxHashMap<u64, Vec<u64>>| {
        if from != to && edge_set.insert((from, to)) {
            adjacency.entry(from).or_default().push(to);
        }
    };

    let mut sorted_keys: Vec<Key> = keys.keys().copied().collect();
    sorted_keys.sort();
    for key in sorted_keys {
        let accesses = &keys[&key];
        let mut writers = accesses.writers.clone();
        writers.sort();

        // Version integrity: distinct committed writers install distinct,
        // gapless versions starting at 1. (Guaranteed by the engine; a
        // violation here means the history itself is corrupt.)
        for pair in writers.windows(2) {
            if pair[0].0 == pair[1].0 {
                violations.push(format!(
                    "serializability: key {key} version {} installed by two \
                     committed writers (gtrid {} and {})",
                    pair[0].0, pair[0].1, pair[1].1
                ));
            }
        }
        for (i, (version, gtrid, _)) in writers.iter().enumerate() {
            let expected = i as u64 + 1;
            if *version != expected && !writers.iter().take(i).any(|w| w.0 == *version) {
                violations.push(format!(
                    "serializability: key {key} has a version gap — gtrid {gtrid} \
                     installed v{version}, expected v{expected}"
                ));
            }
        }

        // WW: installer of v precedes installer of v+1.
        for pair in writers.windows(2) {
            add_edge(pair[0].1, pair[1].1, &mut adjacency);
        }

        let writer_of = |version: u64| writers.iter().find(|w| w.0 == version);
        for (version, reader, fingerprint) in &accesses.readers {
            // Observation integrity: the read's fingerprint must match the
            // committed value of the version it claims.
            let expected = if *version == 0 {
                base_fingerprints.get(&key).copied()
            } else {
                writer_of(*version).map(|w| w.2)
            };
            match expected {
                None => violations.push(format!(
                    "serializability: gtrid {reader} read {key}@v{version} but no \
                     committed writer (or load) installed that version"
                )),
                Some(expected) if expected != *fingerprint => violations.push(format!(
                    "serializability: dirty read — gtrid {reader} read {key}@v{version} \
                     with fingerprint {fingerprint:016x}, but the committed value of \
                     v{version} fingerprints {expected:016x}"
                )),
                Some(_) => {}
            }
            // WR: the version's installer precedes its readers.
            if let Some((_, writer, _)) = writer_of(*version) {
                add_edge(*writer, *reader, &mut adjacency);
            }
            // RW anti-dependency: a reader of v precedes the installer of v+1.
            if let Some((_, next_writer, _)) = writer_of(version + 1) {
                add_edge(*reader, *next_writer, &mut adjacency);
            }
        }
    }

    // ---------------- cycle detection (iterative 3-color DFS) ----------------
    for neighbours in adjacency.values_mut() {
        neighbours.sort_unstable();
    }
    let mut nodes: Vec<u64> = txns.iter().copied().collect();
    nodes.sort_unstable();
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color: FxHashMap<u64, u8> = FxHashMap::default();
    let empty: Vec<u64> = Vec::new();
    'roots: for root in &nodes {
        if color.get(root).copied().unwrap_or(WHITE) != WHITE {
            continue;
        }
        // Stack of (node, next-neighbour index); grey nodes on the stack form
        // the current path, so a grey target reconstructs the cycle directly.
        let mut stack: Vec<(u64, usize)> = vec![(*root, 0)];
        color.insert(*root, GREY);
        while let Some((node, idx)) = stack.last().copied() {
            let neighbours = adjacency.get(&node).unwrap_or(&empty);
            if idx >= neighbours.len() {
                color.insert(node, BLACK);
                stack.pop();
                continue;
            }
            stack.last_mut().expect("non-empty").1 += 1;
            let target = neighbours[idx];
            match color.get(&target).copied().unwrap_or(WHITE) {
                WHITE => {
                    color.insert(target, GREY);
                    stack.push((target, 0));
                }
                GREY => {
                    let from = stack
                        .iter()
                        .position(|(n, _)| *n == target)
                        .expect("grey node is on the stack");
                    let cycle: Vec<String> = stack[from..]
                        .iter()
                        .map(|(n, _)| n.to_string())
                        .chain(std::iter::once(target.to_string()))
                        .collect();
                    violations.push(format!(
                        "serializability: dependency cycle {} (no serial order exists)",
                        cycle.join(" -> ")
                    ));
                    break 'roots;
                }
                _ => {}
            }
        }
    }

    violations.sort();
    violations.dedup();
    SerializabilityReport {
        ok: violations.is_empty(),
        violations,
        txns: txns.len(),
        edges: edge_set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_storage::{ReadAccess, TableId, VersionedValue, WriteAccess, Xid};

    fn key(row: u64) -> Key {
        Key::new(TableId(0), row)
    }

    fn read(key: Key, version: u64, fingerprint: u64) -> ReadAccess {
        ReadAccess {
            key,
            observed: {
                VersionedValue {
                    version,
                    fingerprint,
                }
            },
        }
    }

    fn write(key: Key, version: u64, fingerprint: u64) -> WriteAccess {
        WriteAccess {
            key,
            installed: VersionedValue {
                version,
                fingerprint,
            },
        }
    }

    fn branch(gtrid: u64, reads: Vec<ReadAccess>, writes: Vec<WriteAccess>) -> BranchHistory {
        BranchHistory {
            xid: Xid::new(gtrid, 0),
            reads,
            writes,
        }
    }

    fn base(entries: &[(Key, u64)]) -> FxHashMap<Key, u64> {
        entries.iter().copied().collect()
    }

    #[test]
    fn clean_serial_history_is_ok() {
        let x = key(1);
        let histories = vec![
            branch(1, vec![read(x, 0, 10)], vec![write(x, 1, 11)]),
            branch(2, vec![read(x, 1, 11)], vec![write(x, 2, 12)]),
        ];
        let report = check(&histories, &base(&[(x, 10)]));
        assert!(report.ok, "{:?}", report.violations);
        assert_eq!(report.txns, 2);
        // WR(1->2 via x@1) and WW(1->2) collapse into distinct edges.
        assert_eq!(report.edges, 1);
    }

    #[test]
    fn write_skew_cycle_is_caught() {
        // Classic G2: T1 reads y then writes x; T2 reads x then writes y —
        // each anti-depends on the other, no serial order exists. (Strict 2PL
        // cannot produce this, which is exactly why the checker must be able
        // to see it if locking is broken.)
        let (x, y) = (key(1), key(2));
        let histories = vec![
            branch(1, vec![read(y, 0, 20)], vec![write(x, 1, 11)]),
            branch(2, vec![read(x, 0, 10)], vec![write(y, 1, 21)]),
        ];
        let report = check(&histories, &base(&[(x, 10), (y, 20)]));
        assert!(!report.ok);
        assert!(
            report.violations.iter().any(|v| v.contains("cycle")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn dirty_read_fingerprint_mismatch_is_caught() {
        let x = key(1);
        // T2 claims to have read x@v0, but its fingerprint matches neither
        // the base value nor any committed version: it saw uncommitted data.
        let histories = vec![
            branch(1, vec![], vec![write(x, 1, 11)]),
            branch(2, vec![read(x, 0, 99)], vec![]),
        ];
        let report = check(&histories, &base(&[(x, 10)]));
        assert!(!report.ok);
        assert!(
            report.violations.iter().any(|v| v.contains("dirty read")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn read_of_unknown_version_is_caught() {
        let x = key(1);
        let histories = vec![branch(1, vec![read(x, 3, 13)], vec![])];
        let report = check(&histories, &base(&[(x, 10)]));
        assert!(!report.ok);
        assert!(report.violations.iter().any(|v| v.contains("no committed")));
    }

    #[test]
    fn cross_branch_merge_closes_cycles() {
        // T1 and T2 each have two branches (different data sources). On key x
        // T1 precedes T2; on key y (another source) T2 precedes T1. Each
        // branch alone is fine; merged by gtrid it is a WW cycle.
        let (x, y) = (key(1), key(2));
        let histories = vec![
            BranchHistory {
                xid: Xid::new(1, 0),
                reads: vec![],
                writes: vec![write(x, 1, 11)],
            },
            BranchHistory {
                xid: Xid::new(2, 0),
                reads: vec![],
                writes: vec![write(x, 2, 12)],
            },
            BranchHistory {
                xid: Xid::new(2, 1),
                reads: vec![],
                writes: vec![write(y, 1, 21)],
            },
            BranchHistory {
                xid: Xid::new(1, 1),
                reads: vec![],
                writes: vec![write(y, 2, 22)],
            },
        ];
        let report = check(&histories, &FxHashMap::default());
        assert!(!report.ok);
        assert!(report.violations.iter().any(|v| v.contains("cycle")));
    }

    #[test]
    fn empty_history_is_trivially_serializable() {
        let report = check(&[], &FxHashMap::default());
        assert!(report.ok);
        assert_eq!(report.txns, 0);
        assert_eq!(report.edges, 0);
    }
}
