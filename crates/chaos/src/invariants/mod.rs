//! Transaction-invariant checkers run over the post-chaos cluster.
//!
//! Four invariants, matching what the paper's protocol promises:
//!
//! * **Atomicity** — no global transaction ends with one branch committed
//!   and another aborted. Checked two ways: structurally, by scanning every
//!   engine's WAL for cross-branch `Commit`/`Abort` disagreement, and
//!   observationally, through the workload's own consistency conditions
//!   (balance conservation for transfers; warehouse/district/order/stock
//!   agreement for TPC-C — every committed transaction preserves them, so
//!   drift convicts a partial commit).
//! * **Durability** — every transaction whose commit is decided (the client
//!   saw `committed`, or the durable commit log says `Commit` for an
//!   outcome the coordinator crash made indeterminate) has a `Commit`
//!   record in the WAL of *every* branch that participated, after all
//!   crashes, restarts and recoveries. And the client is never told
//!   `committed` unless the decision really is durable.
//! * **Liveness** — the workload drained within the virtual-clock horizon,
//!   and after the final heal + recovery pass no branch is left prepared
//!   -but-undecided anywhere.
//! * **Serializability** — the committed transactions admit a serial order:
//!   the engines' versioned read/write histories produce an acyclic
//!   dependency graph and every read observed a real committed version
//!   (Elle-lite; see [`serializability`]).
//!
//! The checkers read only durable artifacts (WALs, the commit log, the
//! record stores) plus the engines' observer-side histories — not
//! coordinator in-memory state — so they hold across arbitrary failover
//! histories.
//!
//! A fifth, *trace-based* oracle lives in [`trace`]: when a run is traced,
//! it checks the protocol's happens-before rules (log flush before commit
//! dispatch, vote collection before decision, admission before txn body,
//! recovery only with durable evidence, well-formed span trees) over the
//! telemetry span record, catching ordering bugs that leave durably
//! correct state.

pub mod serializability;
pub mod trace;

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{Decision, TxnOutcome};
use geotp_simrt::hash::FxHashMap;
use geotp_storage::wal::LogRecord;
use geotp_storage::{BranchHistory, Key};

pub use serializability::SerializabilityReport;

/// Verdict of the four checkers, with human-readable violations.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// No transaction with both a committed and an aborted branch; the
    /// workload's consistency conditions hold over final state.
    pub atomicity_ok: bool,
    /// Decided-committed state survived every crash and is durable on every
    /// participating branch.
    pub durability_ok: bool,
    /// Nothing stuck: workload drained inside the horizon and no in-doubt
    /// branch remains after the final recovery.
    pub liveness_ok: bool,
    /// The committed transactions admit a serial order and every read
    /// observed a committed version.
    pub serializability_ok: bool,
    /// The telemetry span record obeys the protocol's happens-before rules
    /// (see [`trace`]). Vacuously `true` on untraced runs — [`check`] sets
    /// it and [`trace::apply`] can only lower it.
    pub trace_ok: bool,
    /// One line per violation (empty when everything holds).
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Whether every invariant held.
    pub fn all_hold(&self) -> bool {
        self.atomicity_ok
            && self.durability_ok
            && self.liveness_ok
            && self.serializability_ok
            && self.trace_ok
    }
}

/// Per-gtrid branch decisions harvested from the WALs.
#[derive(Default)]
struct BranchDecisions {
    commits: Vec<u32>,
    aborts: Vec<u32>,
    /// Branches with a durable `Prepare` record (distinguishes real 2PC
    /// in-doubt state from one-phase commits, which never prepare).
    prepares: Vec<u32>,
}

/// Run every checker.
///
/// * `workload_violations` — lazily computes the workload's own state-level
///   consistency verdict (see `ChaosWorkload::consistency_violations`);
///   folded into atomicity. Lazy because on an undrained run the final
///   state is noise and the (potentially table-scanning) check is skipped
///   wholesale.
/// * `decision_of` — the durable decision for a gtrid. A single-coordinator
///   harness passes its one commit log's lookup; a cluster harness resolves
///   the gtrid's *owner* first and reads that coordinator's log, so the
///   durability check holds across the whole tier.
/// * `workload_drained` — the harness's horizon verdict; when `false` the
///   cluster may still have transactions in flight, so the state-based
///   checks are skipped (they could only report noise) and liveness is the
///   reported failure.
pub fn check(
    sources: &[Rc<DataSource>],
    workload_violations: impl FnOnce() -> Vec<String>,
    ledger: &[TxnOutcome],
    decision_of: impl Fn(u64) -> Option<Decision>,
    workload_drained: bool,
) -> InvariantReport {
    let mut report = InvariantReport {
        atomicity_ok: true,
        durability_ok: true,
        liveness_ok: true,
        serializability_ok: true,
        trace_ok: true,
        violations: Vec::new(),
    };

    if !workload_drained {
        report.liveness_ok = false;
        report
            .violations
            .push("liveness: workload did not drain within the horizon".into());
        return report;
    }

    // ---------------- liveness: no in-doubt or abandoned branch anywhere ----------------
    for ds in sources {
        let prepared = ds.engine().prepared_xids();
        if !prepared.is_empty() {
            report.liveness_ok = false;
            report.violations.push(format!(
                "liveness: ds{} still has prepared-but-undecided branches after recovery: {prepared:?}",
                ds.index()
            ));
        }
        // ACTIVE/ENDED leftovers are worse than prepared ones: they are
        // invisible to `XA RECOVER`, so nothing will ever finish them — an
        // abandoned branch holds its locks and uncommitted writes forever.
        let unfinished = ds.engine().unfinished_xids();
        if !unfinished.is_empty() {
            report.liveness_ok = false;
            report.violations.push(format!(
                "liveness: ds{} has abandoned (never-prepared, never-finished) branches: {unfinished:?}",
                ds.index()
            ));
        }
    }

    // ---------------- harvest per-branch decisions from the WALs ----------------
    let mut decisions: FxHashMap<u64, BranchDecisions> = FxHashMap::default();
    for ds in sources {
        for record in ds.engine().wal().all_records() {
            match record {
                LogRecord::Commit(xid) => decisions
                    .entry(xid.gtrid)
                    .or_default()
                    .commits
                    .push(ds.index()),
                LogRecord::Abort(xid) => decisions
                    .entry(xid.gtrid)
                    .or_default()
                    .aborts
                    .push(ds.index()),
                LogRecord::Prepare(xid) => decisions
                    .entry(xid.gtrid)
                    .or_default()
                    .prepares
                    .push(ds.index()),
                _ => {}
            }
        }
    }

    // ---------------- atomicity: no mixed Commit/Abort branches ----------------
    for (gtrid, d) in &decisions {
        if !d.commits.is_empty() && !d.aborts.is_empty() {
            report.atomicity_ok = false;
            report.violations.push(format!(
                "atomicity: gtrid {gtrid} committed on ds{:?} but aborted on ds{:?}",
                d.commits, d.aborts
            ));
        }
    }

    // ---------------- atomicity: the workload's consistency conditions ----------------
    for violation in workload_violations() {
        report.atomicity_ok = false;
        report.violations.push(format!("atomicity: {violation}"));
    }

    // ---------------- durability ----------------
    // Everything that *must* be durably committed: outcomes the client saw
    // commit, plus indeterminate outcomes whose durable decision is Commit.
    for outcome in ledger {
        if outcome.gtrid == 0 {
            continue;
        }
        let logged = decision_of(outcome.gtrid);
        // A read-only commit writes nothing, so there is no decision to make
        // durable: the coordinator never flushes one and the branches never
        // prepare. Losing it on a crash is indistinguishable from it never
        // having run.
        if outcome.committed && outcome.read_only {
            continue;
        }
        if outcome.committed && logged != Some(Decision::Commit) {
            report.durability_ok = false;
            report.violations.push(format!(
                "durability: client saw gtrid {} commit but the durable decision is {logged:?}",
                outcome.gtrid
            ));
            continue;
        }
        // A logged `Commit` only *binds* when the client saw the commit, or
        // when at least one branch durably prepared (2PC in-doubt state that
        // recovery promises to finish). A one-phase commit whose coordinator
        // crashed between flushing the optimistic decision and dispatching it
        // legitimately rolls back: nothing was prepared, nothing was
        // promised, the client got no answer.
        let bound_by_log = logged == Some(Decision::Commit)
            && decisions
                .get(&outcome.gtrid)
                .is_some_and(|d| !d.prepares.is_empty());
        let must_commit = outcome.committed || bound_by_log;
        if !must_commit {
            continue;
        }
        match decisions.get(&outcome.gtrid) {
            None => {
                report.durability_ok = false;
                report.violations.push(format!(
                    "durability: gtrid {} is decided-commit but no branch has any decision record",
                    outcome.gtrid
                ));
            }
            Some(d) => {
                if d.commits.is_empty() {
                    report.durability_ok = false;
                    report.violations.push(format!(
                        "durability: gtrid {} is decided-commit but no branch logged a Commit",
                        outcome.gtrid
                    ));
                }
                // Mixed branches are already an atomicity violation; for
                // durability it is enough that every branch that produced
                // records reached Commit (aborts on a decided-commit
                // transaction are caught above).
                if !d.aborts.is_empty() {
                    report.durability_ok = false;
                    report.violations.push(format!(
                        "durability: gtrid {} is decided-commit but ds{:?} aborted the branch",
                        outcome.gtrid, d.aborts
                    ));
                }
            }
        }
    }

    // ---------------- serializability (Elle-lite over engine histories) ----------------
    let mut histories: Vec<BranchHistory> = Vec::new();
    let mut base_fingerprints: FxHashMap<Key, u64> = FxHashMap::default();
    for ds in sources {
        histories.extend(ds.engine().committed_history());
        // Keys are partitioned, so the per-engine maps never conflict.
        base_fingerprints.extend(ds.engine().base_fingerprints());
    }
    let serializability = serializability::check(&histories, &base_fingerprints);
    if !serializability.ok {
        report.serializability_ok = false;
        report.violations.extend(serializability.violations);
    }

    // ---------------- declared vs observed write sets ----------------
    // The client-side outcome declares the transaction's write keys
    // (`TxnOutcome::history`, populated because the harness sets
    // `MiddlewareConfig::record_history`); the engines recorded what was
    // actually installed. For a committed transaction the two must match
    // exactly: a declared write the engines never saw is a lost write, an
    // observed write the client never declared is a phantom.
    let mut observed_writes: FxHashMap<u64, Vec<Key>> = FxHashMap::default();
    for branch in &histories {
        observed_writes
            .entry(branch.xid.gtrid)
            .or_default()
            .extend(branch.writes.iter().map(|w| w.key));
    }
    for outcome in ledger.iter().filter(|o| o.committed) {
        let mut declared: Vec<Key> = outcome
            .history
            .writes
            .iter()
            .map(|k| k.storage_key())
            .collect();
        declared.sort();
        let mut observed = observed_writes.remove(&outcome.gtrid).unwrap_or_default();
        observed.sort();
        if declared != observed {
            report.serializability_ok = false;
            report.violations.push(format!(
                "write-set: gtrid {} declared writes {declared:?} but the engines \
                 recorded {observed:?}",
                outcome.gtrid
            ));
        }
    }

    report
}
