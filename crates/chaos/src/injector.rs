//! Compiling a [`FaultSchedule`] into the network's fault plane.
//!
//! Link-level events become per-link window lists consulted on every message;
//! probabilistic fates (drop/duplicate, storm jitter) are drawn from a seeded
//! RNG owned by the injector, so the message-fate stream is a pure function
//! of `(seed, schedule, traffic order)` — and traffic order is deterministic
//! on the simulated runtime, which is what makes whole runs replayable.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use geotp_net::{FaultInjector, NodeId};
use geotp_simrt::hash::FxHashMap;
use geotp_simrt::SimInstant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schedule::{FaultEvent, FaultSchedule};
use crate::trace::EventTrace;

/// A half-open activation window `[start, end)` in microseconds.
#[derive(Debug, Clone, Copy)]
struct Window {
    start: u64,
    end: u64,
}

impl Window {
    fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }
}

#[derive(Debug, Clone, Copy)]
struct StormWindow {
    window: Window,
    extra_micros: u64,
    jitter_micros: u64,
}

#[derive(Debug, Clone, Copy)]
struct LossWindow {
    window: Window,
    probability: f64,
}

/// Per-directional-link fault state.
#[derive(Debug, Default)]
struct LinkFaults {
    blocked: Vec<Window>,
    storms: Vec<StormWindow>,
    drops: Vec<LossWindow>,
    duplicates: Vec<LossWindow>,
}

/// The compiled fault plane: plug into
/// [`Network::set_fault_injector`](geotp_net::Network::set_fault_injector).
pub struct ScheduleInjector {
    links: FxHashMap<(NodeId, NodeId), LinkFaults>,
    rng: RefCell<StdRng>,
    trace: Rc<EventTrace>,
}

impl ScheduleInjector {
    /// Compile `schedule`'s link-level events. Probabilistic fates draw from
    /// a stream seeded by `seed`; drops and duplicates are recorded in
    /// `trace`.
    pub fn compile(schedule: &FaultSchedule, seed: u64, trace: Rc<EventTrace>) -> Rc<Self> {
        let mut links: FxHashMap<(NodeId, NodeId), LinkFaults> = FxHashMap::default();
        fn on(
            links: &mut FxHashMap<(NodeId, NodeId), LinkFaults>,
            from: NodeId,
            to: NodeId,
        ) -> &mut LinkFaults {
            links.entry((from, to)).or_default()
        }
        for event in &schedule.events {
            match event {
                FaultEvent::Partition { at, until, a, b } => {
                    let w = window(*at, *until);
                    on(&mut links, *a, *b).blocked.push(w);
                    on(&mut links, *b, *a).blocked.push(w);
                }
                FaultEvent::PartitionOneWay {
                    at,
                    until,
                    from,
                    to,
                } => {
                    on(&mut links, *from, *to).blocked.push(window(*at, *until));
                }
                FaultEvent::LatencyStorm {
                    at,
                    until,
                    a,
                    b,
                    extra,
                    jitter,
                } => {
                    let w = StormWindow {
                        window: window(*at, *until),
                        extra_micros: extra.as_micros() as u64,
                        jitter_micros: jitter.as_micros() as u64,
                    };
                    on(&mut links, *a, *b).storms.push(w);
                    on(&mut links, *b, *a).storms.push(w);
                }
                FaultEvent::DropNotifications {
                    at,
                    until,
                    from,
                    to,
                    probability,
                } => {
                    on(&mut links, *from, *to).drops.push(LossWindow {
                        window: window(*at, *until),
                        probability: *probability,
                    });
                }
                FaultEvent::DuplicateNotifications {
                    at,
                    until,
                    from,
                    to,
                    probability,
                } => {
                    on(&mut links, *from, *to).duplicates.push(LossWindow {
                        window: window(*at, *until),
                        probability: *probability,
                    });
                }
                // Node-level events are the controller's business.
                FaultEvent::CrashDataSource { .. }
                | FaultEvent::RestartDataSource { .. }
                | FaultEvent::CrashMiddleware { .. }
                | FaultEvent::CrashMiddlewareAfterFlush { .. }
                | FaultEvent::FailoverMiddleware { .. }
                | FaultEvent::CrashCoordinator { .. }
                | FaultEvent::CrashCoordinatorAfterFlush { .. }
                | FaultEvent::RestartCoordinator { .. }
                | FaultEvent::ClockSkewRamp { .. } => {}
            }
        }
        Rc::new(Self {
            links,
            rng: RefCell::new(StdRng::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f)),
            trace,
        })
    }

    fn faults(&self, from: NodeId, to: NodeId) -> Option<&LinkFaults> {
        self.links.get(&(from, to))
    }
}

fn window(at: Duration, until: Duration) -> Window {
    Window {
        start: at.as_micros() as u64,
        end: until.as_micros() as u64,
    }
}

impl FaultInjector for ScheduleInjector {
    fn blocked_until(&self, from: NodeId, to: NodeId, now: SimInstant) -> Option<SimInstant> {
        let faults = self.faults(from, to)?;
        let t = now.as_micros();
        faults
            .blocked
            .iter()
            .filter(|w| w.contains(t))
            .map(|w| w.end)
            .max()
            .map(SimInstant::from_micros)
    }

    fn extra_delay(&self, from: NodeId, to: NodeId, now: SimInstant) -> Duration {
        let Some(faults) = self.faults(from, to) else {
            return Duration::ZERO;
        };
        let t = now.as_micros();
        let mut extra = 0u64;
        for storm in faults.storms.iter().filter(|s| s.window.contains(t)) {
            extra += storm.extra_micros;
            if storm.jitter_micros > 0 {
                extra += self.rng.borrow_mut().gen_range(0..=storm.jitter_micros);
            }
        }
        Duration::from_micros(extra)
    }

    fn unreliable_copies(&self, from: NodeId, to: NodeId, now: SimInstant) -> u32 {
        let Some(faults) = self.faults(from, to) else {
            return 1;
        };
        let t = now.as_micros();
        for drop in faults.drops.iter().filter(|d| d.window.contains(t)) {
            if self.rng.borrow_mut().gen::<f64>() < drop.probability {
                self.trace
                    .record(&format!("drop notification {from} -> {to}"));
                return 0;
            }
        }
        for dup in faults.duplicates.iter().filter(|d| d.window.contains(t)) {
            if self.rng.borrow_mut().gen::<f64>() < dup.probability {
                self.trace
                    .record(&format!("duplicate notification {from} -> {to}"));
                return 2;
            }
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::Runtime;

    fn dm() -> NodeId {
        NodeId::middleware(0)
    }
    fn ds(i: u32) -> NodeId {
        NodeId::data_source(i)
    }

    #[test]
    fn partition_blocks_both_directions_one_way_only_one() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let schedule = FaultSchedule::new()
                .with(FaultEvent::Partition {
                    at: Duration::from_secs(1),
                    until: Duration::from_secs(2),
                    a: dm(),
                    b: ds(0),
                })
                .with(FaultEvent::PartitionOneWay {
                    at: Duration::from_secs(1),
                    until: Duration::from_secs(3),
                    from: ds(1),
                    to: dm(),
                });
            let inj = ScheduleInjector::compile(&schedule, 1, EventTrace::new());
            let at = |secs: u64| SimInstant::from_micros(secs * 1_000_000);
            // Symmetric window.
            assert_eq!(inj.blocked_until(dm(), ds(0), at(1)), Some(at(2)));
            assert_eq!(inj.blocked_until(ds(0), dm(), at(1)), Some(at(2)));
            assert_eq!(inj.blocked_until(dm(), ds(0), at(2)), None, "half-open");
            assert_eq!(inj.blocked_until(dm(), ds(0), at(0)), None);
            // Asymmetric: only ds1 -> dm is blocked.
            assert_eq!(inj.blocked_until(ds(1), dm(), at(2)), Some(at(3)));
            assert_eq!(inj.blocked_until(dm(), ds(1), at(2)), None);
        });
    }

    #[test]
    fn storms_and_losses_are_windowed_and_deterministic() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let schedule = FaultSchedule::new()
                .with(FaultEvent::LatencyStorm {
                    at: Duration::ZERO,
                    until: Duration::from_secs(1),
                    a: dm(),
                    b: ds(0),
                    extra: Duration::from_millis(40),
                    jitter: Duration::ZERO,
                })
                .with(FaultEvent::DropNotifications {
                    at: Duration::ZERO,
                    until: Duration::from_secs(1),
                    from: ds(0),
                    to: dm(),
                    probability: 1.0,
                });
            let t0 = SimInstant::ZERO;
            let late = SimInstant::from_micros(5_000_000);
            let run = |seed: u64| {
                let trace = EventTrace::new();
                let inj = ScheduleInjector::compile(&schedule, seed, Rc::clone(&trace));
                assert_eq!(inj.extra_delay(dm(), ds(0), t0), Duration::from_millis(40));
                assert_eq!(inj.extra_delay(ds(0), dm(), t0), Duration::from_millis(40));
                assert_eq!(inj.extra_delay(dm(), ds(0), late), Duration::ZERO);
                assert_eq!(inj.unreliable_copies(ds(0), dm(), t0), 0, "p=1 drop");
                assert_eq!(inj.unreliable_copies(ds(0), dm(), late), 1);
                assert_eq!(inj.unreliable_copies(dm(), ds(0), t0), 1, "directional");
                trace.fingerprint()
            };
            assert_eq!(run(7), run(7), "same seed, same fate stream");
        });
    }
}
