//! Transaction-invariant checkers run over the post-chaos cluster.
//!
//! Three invariants, matching what the paper's protocol promises:
//!
//! * **Atomicity** — no global transaction ends with one branch committed
//!   and another aborted. Checked two ways: structurally, by scanning every
//!   engine's WAL for cross-branch `Commit`/`Abort` disagreement, and
//!   observationally, by conservation of the total balance (the workload is
//!   all transfers, so any partial commit changes the sum).
//! * **Durability** — every transaction whose commit is decided (the client
//!   saw `committed`, or the durable commit log says `Commit` for an
//!   outcome the coordinator crash made indeterminate) has a `Commit`
//!   record in the WAL of *every* branch that participated, after all
//!   crashes, restarts and recoveries. And the client is never told
//!   `committed` unless the decision really is durable.
//! * **Liveness** — the workload drained within the virtual-clock horizon,
//!   and after the final heal + recovery pass no branch is left prepared
//!   -but-undecided anywhere.
//!
//! The checkers read only durable artifacts (WALs, the commit log, the
//! record stores) — not coordinator in-memory state — so they hold across
//! arbitrary failover histories.

use std::rc::Rc;

use geotp_datasource::DataSource;
use geotp_middleware::{CommitLog, Decision, GlobalKey, Partitioner, TxnOutcome};
use geotp_simrt::hash::FxHashMap;
use geotp_storage::wal::LogRecord;

use crate::harness::CHAOS_TABLE;

/// Verdict of the three checkers, with human-readable violations.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// No transaction with both a committed and an aborted branch; total
    /// balance conserved.
    pub atomicity_ok: bool,
    /// Decided-committed state survived every crash and is durable on every
    /// participating branch.
    pub durability_ok: bool,
    /// Nothing stuck: workload drained inside the horizon and no in-doubt
    /// branch remains after the final recovery.
    pub liveness_ok: bool,
    /// One line per violation (empty when everything holds).
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Whether every invariant held.
    pub fn all_hold(&self) -> bool {
        self.atomicity_ok && self.durability_ok && self.liveness_ok
    }
}

/// Per-gtrid branch decisions harvested from the WALs.
#[derive(Default)]
struct BranchDecisions {
    commits: Vec<u32>,
    aborts: Vec<u32>,
    /// Branches with a durable `Prepare` record (distinguishes real 2PC
    /// in-doubt state from one-phase commits, which never prepare).
    prepares: Vec<u32>,
}

/// Run every checker. `workload_drained` is the harness's horizon verdict;
/// when it is `false` the cluster may still have transactions in flight, so
/// the state-based checks are skipped (they could only report noise) and
/// liveness is the reported failure.
#[allow(clippy::too_many_arguments)]
pub fn check(
    sources: &[Rc<DataSource>],
    partitioner: Partitioner,
    total_rows: u64,
    initial_balance: i64,
    ledger: &[TxnOutcome],
    commit_log: &Rc<CommitLog>,
    workload_drained: bool,
) -> InvariantReport {
    let mut report = InvariantReport {
        atomicity_ok: true,
        durability_ok: true,
        liveness_ok: true,
        violations: Vec::new(),
    };

    if !workload_drained {
        report.liveness_ok = false;
        report
            .violations
            .push("liveness: workload did not drain within the horizon".into());
        return report;
    }

    // ---------------- liveness: no in-doubt branch anywhere ----------------
    for ds in sources {
        let prepared = ds.engine().prepared_xids();
        if !prepared.is_empty() {
            report.liveness_ok = false;
            report.violations.push(format!(
                "liveness: ds{} still has prepared-but-undecided branches after recovery: {prepared:?}",
                ds.index()
            ));
        }
    }

    // ---------------- harvest per-branch decisions from the WALs ----------------
    let mut decisions: FxHashMap<u64, BranchDecisions> = FxHashMap::default();
    for ds in sources {
        for record in ds.engine().wal().all_records() {
            match record {
                LogRecord::Commit(xid) => decisions
                    .entry(xid.gtrid)
                    .or_default()
                    .commits
                    .push(ds.index()),
                LogRecord::Abort(xid) => decisions
                    .entry(xid.gtrid)
                    .or_default()
                    .aborts
                    .push(ds.index()),
                LogRecord::Prepare(xid) => decisions
                    .entry(xid.gtrid)
                    .or_default()
                    .prepares
                    .push(ds.index()),
                _ => {}
            }
        }
    }

    // ---------------- atomicity: no mixed Commit/Abort branches ----------------
    for (gtrid, d) in &decisions {
        if !d.commits.is_empty() && !d.aborts.is_empty() {
            report.atomicity_ok = false;
            report.violations.push(format!(
                "atomicity: gtrid {gtrid} committed on ds{:?} but aborted on ds{:?}",
                d.commits, d.aborts
            ));
        }
    }

    // ---------------- atomicity: conservation of the total balance ----------------
    let expected_total = total_rows as i64 * initial_balance;
    let mut actual_total = 0i64;
    let mut missing_rows = 0u64;
    for row in 0..total_rows {
        let key = GlobalKey::new(CHAOS_TABLE, row);
        let ds = partitioner.route(key) as usize;
        match sources[ds].engine().peek(key.storage_key()) {
            Some(r) => actual_total += r.int_value().unwrap_or(0),
            None => missing_rows += 1,
        }
    }
    if missing_rows > 0 {
        report.atomicity_ok = false;
        report.violations.push(format!(
            "atomicity: {missing_rows} row(s) vanished from the record stores"
        ));
    }
    if actual_total != expected_total {
        report.atomicity_ok = false;
        report.violations.push(format!(
            "atomicity: total balance {actual_total} != initial {expected_total} (transfers conserve it)"
        ));
    }

    // ---------------- durability ----------------
    // Everything that *must* be durably committed: outcomes the client saw
    // commit, plus indeterminate outcomes whose durable decision is Commit.
    for outcome in ledger {
        if outcome.gtrid == 0 {
            continue;
        }
        let logged = commit_log.decision(outcome.gtrid);
        if outcome.committed && logged != Some(Decision::Commit) {
            report.durability_ok = false;
            report.violations.push(format!(
                "durability: client saw gtrid {} commit but the durable decision is {logged:?}",
                outcome.gtrid
            ));
            continue;
        }
        // A logged `Commit` only *binds* when the client saw the commit, or
        // when at least one branch durably prepared (2PC in-doubt state that
        // recovery promises to finish). A one-phase commit whose coordinator
        // crashed between flushing the optimistic decision and dispatching it
        // legitimately rolls back: nothing was prepared, nothing was
        // promised, the client got no answer.
        let bound_by_log = logged == Some(Decision::Commit)
            && decisions
                .get(&outcome.gtrid)
                .is_some_and(|d| !d.prepares.is_empty());
        let must_commit = outcome.committed || bound_by_log;
        if !must_commit {
            continue;
        }
        match decisions.get(&outcome.gtrid) {
            None => {
                report.durability_ok = false;
                report.violations.push(format!(
                    "durability: gtrid {} is decided-commit but no branch has any decision record",
                    outcome.gtrid
                ));
            }
            Some(d) => {
                if d.commits.is_empty() {
                    report.durability_ok = false;
                    report.violations.push(format!(
                        "durability: gtrid {} is decided-commit but no branch logged a Commit",
                        outcome.gtrid
                    ));
                }
                // Mixed branches are already an atomicity violation; for
                // durability it is enough that every branch that produced
                // records reached Commit (aborts on a decided-commit
                // transaction are caught above).
                if !d.aborts.is_empty() {
                    report.durability_ok = false;
                    report.violations.push(format!(
                        "durability: gtrid {} is decided-commit but ds{:?} aborted the branch",
                        outcome.gtrid, d.aborts
                    ));
                }
            }
        }
    }

    report
}
