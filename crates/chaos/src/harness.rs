//! The chaos harness: build a cluster, drive a workload under a fault
//! schedule, check invariants, emit a replayable trace.
//!
//! [`run_scenario_with`] owns the whole lifecycle:
//!
//! 1. assemble a simulated deployment (network, data sources + geo-agents,
//!    coordinator) exactly like the facade's `ClusterBuilder` does, with
//!    engine-side history recording switched on for the serializability
//!    checker;
//! 2. compile the [`FaultSchedule`] into the network fault plane and spawn a
//!    *controller task* that applies node-level events (crashes, restarts,
//!    coordinator failover with commit-log replay, clock-skew ramps) at
//!    their scheduled instants;
//! 3. drive any [`ChaosWorkload`] — balance transfers or the TPC-C mix —
//!    where clients retry transactions refused by a crashed coordinator;
//! 4. once the clients drain (bounded by the liveness horizon): heal
//!    everything, restart any still-crashed data source, run one final
//!    commit-log replay over the in-doubt branches, and hand the cluster to
//!    the [`crate::invariants`] checkers (atomicity, durability, liveness,
//!    serializability).
//!
//! [`run_scenario`] is the transfer-workload shorthand the original presets
//! use.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::{DataSource, DataSourceConfig, Dialect};
use geotp_middleware::{
    AbortReason, CommitLog, Middleware, MiddlewareConfig, Partitioner, Protocol, TxnOutcome,
};
use geotp_net::{NetworkBuilder, NodeId};
use geotp_simrt::hash::FxHashMap;
use geotp_simrt::{now, sleep, sleep_until, spawn, SimInstant};
use geotp_storage::{CostModel, EngineConfig, IsolationLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::injector::ScheduleInjector;
use crate::invariants::{self, InvariantReport};
use crate::schedule::{FaultEvent, FaultSchedule};
use crate::trace::EventTrace;
use crate::workload::{ChaosWorkload, TransferWorkload};

pub use crate::workload::CHAOS_TABLE;

/// Parameters of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for everything randomized: workload key choice, injector fates,
    /// network jitter, scheduler lotteries. Same seed + same schedule ⇒
    /// bit-identical trace.
    pub seed: u64,
    /// Middleware↔data-source RTTs in milliseconds (one entry per data
    /// source; inter-source RTT is the max of the endpoints', as in the
    /// facade's builder).
    pub ds_rtts_ms: Vec<u64>,
    /// Rows per data source (transfer workload).
    pub records_per_node: u64,
    /// Initial integer balance of every row (transfer workload).
    pub initial_balance: i64,
    /// Concurrent client loops.
    pub clients: usize,
    /// Transactions each client performs.
    pub txns_per_client: usize,
    /// Fraction of transfers that cross data sources (transfer workload).
    pub distributed_ratio: f64,
    /// Storage lock-wait timeout (short, so induced deadlocks resolve fast).
    pub lock_wait_timeout: Duration,
    /// Coordinator decision-wait timeout (bounds vote/rollback waits when a
    /// participant dies).
    pub decision_wait_timeout: Duration,
    /// Liveness horizon: the workload must drain within this much virtual
    /// time or the liveness invariant is declared violated.
    pub horizon: Duration,
    /// Commit protocol under test.
    pub protocol: Protocol,
    /// Checker-validation fail point: every n-th read on every engine skips
    /// its shared lock, deliberately permitting dirty reads. `None` (the
    /// default) leaves isolation intact; tests set `Some(n)` to prove the
    /// serializability checker catches a real isolation bug and to give the
    /// schedule shrinker a genuine failure to minimize.
    pub isolation_bug_read_stride: Option<u64>,
    /// Checker-validation fail point: the coordinator dispatches voted-2PC
    /// commits *before* flushing the decision to its commit log. The durable
    /// end state stays correct (the flush still happens), so the four
    /// state-based checkers stay green — only the trace oracle's
    /// flush-before-dispatch rule convicts it. Tests set this to prove the
    /// fifth checker has teeth and to give the shrinker a trace-level
    /// failure to minimize.
    pub commit_before_flush_bug: bool,
    /// Client think time between the statement rounds of one transaction
    /// (interactive terminals; needs multi-round specs to have any effect).
    pub think_time: Duration,
    /// Every n-th transaction of each client is *abandoned* mid-transaction:
    /// the client executes the first round, thinks, and vanishes without
    /// commit or rollback — the middleware's connection-loss handling must
    /// roll the orphaned branches back. `None` disables client crashes.
    pub client_crash_every: Option<u64>,
    /// Issue transfers interactively (one operation per statement round, see
    /// [`crate::workload::InteractiveTransferWorkload`]) instead of as a
    /// single batched round.
    pub interactive_transfers: bool,
    /// Client retry policy for transient non-starts (refused connections,
    /// overload sheds, reaped sessions). The default reproduces the original
    /// hard-coded loop exactly — 40 attempts, flat 250 ms pauses, no RNG
    /// consumed — so preset traces stay bit-identical.
    pub retry: geotp_middleware::session::RetryPolicy,
    /// Worker shards for the simulator runtime. `None` (the default) honours
    /// the `GEOTP_WORKERS` environment variable, falling back to 1. The
    /// chaos deployment shares one `Rc` object graph, so it is pinned to
    /// shard 0 regardless — traces and fingerprints are bit-identical at
    /// every worker count (the CI worker matrix asserts exactly this).
    pub workers: Option<usize>,
    /// Storage isolation level on every engine. The default
    /// (`Serializable2pl`) is the legacy strict-2PL path and replays every
    /// existing preset byte-identically; `SnapshotRead` serves plain reads
    /// from MVCC snapshots without locks; `ReadCommitted` deliberately
    /// weakens snapshots so the serializability checker has something to
    /// convict.
    pub isolation: IsolationLevel,
    /// Group-commit window on every engine's WAL. `Duration::ZERO` (the
    /// default) flushes each commit solo — the legacy path; a nonzero
    /// window parks committers so one flush amortizes across the batch.
    pub group_commit_window: Duration,
    /// Let the coordinator commit unannotated read-only transactions via
    /// the snapshot-read fast path (no prepare, no WAL flush, no locks
    /// under `SnapshotRead` isolation). Off by default.
    pub snapshot_reads: bool,
    /// Extra trace-oracle rules evaluated after the built-ins on traced
    /// runs (see [`crate::invariants::trace::TraceRule`]). Empty by
    /// default.
    pub trace_rules: crate::invariants::trace::TraceRules,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            ds_rtts_ms: vec![10, 60, 120],
            records_per_node: 200,
            initial_balance: 1_000,
            clients: 4,
            txns_per_client: 25,
            distributed_ratio: 0.5,
            lock_wait_timeout: Duration::from_secs(2),
            decision_wait_timeout: Duration::from_secs(2),
            horizon: Duration::from_secs(300),
            protocol: Protocol::geotp(),
            isolation_bug_read_stride: None,
            commit_before_flush_bug: false,
            think_time: Duration::ZERO,
            client_crash_every: None,
            interactive_transfers: false,
            retry: geotp_middleware::session::RetryPolicy::fixed(40, Duration::from_millis(250)),
            workers: None,
            isolation: IsolationLevel::Serializable2pl,
            group_commit_window: Duration::ZERO,
            snapshot_reads: false,
            trace_rules: crate::invariants::trace::TraceRules::default(),
        }
    }
}

impl ChaosConfig {
    /// Number of data sources.
    pub fn nodes(&self) -> u32 {
        self.ds_rtts_ms.len() as u32
    }
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Client-observed committed transactions.
    pub committed: u64,
    /// Client-observed aborted transactions (a definite no).
    pub aborted: u64,
    /// Outcomes lost to a coordinator crash (no answer reached the client;
    /// the durable commit log decides the truth).
    pub indeterminate: u64,
    /// The invariant checkers' verdict.
    pub invariants: InvariantReport,
    /// The full replayable event trace.
    pub trace: Vec<String>,
    /// FNV-1a fingerprint of the trace (bit-identical-replay check).
    pub fingerprint: u64,
}

/// Per-node clock skew bookkeeping (chaos-local: the commit protocol never
/// reads node clocks — which is exactly what the clock-skew scenario
/// demonstrates by staying green).
#[derive(Default)]
struct NodeClocks {
    skews: FxHashMap<NodeId, Skew>,
}

struct Skew {
    since_micros: u64,
    offset_micros: i64,
    drift_ppm: i64,
}

impl NodeClocks {
    fn ramp(&mut self, node: NodeId, drift_ppm: i64) {
        let t = now().as_micros();
        let offset = self.offset_at(node, t);
        self.skews.insert(
            node,
            Skew {
                since_micros: t,
                offset_micros: offset,
                drift_ppm,
            },
        );
    }

    fn offset_at(&self, node: NodeId, t: u64) -> i64 {
        match self.skews.get(&node) {
            Some(s) => {
                s.offset_micros
                    + (t.saturating_sub(s.since_micros) as i64 * s.drift_ppm) / 1_000_000
            }
            None => 0,
        }
    }

    /// The node's local clock reading, in microseconds.
    fn node_now_micros(&self, node: NodeId) -> i64 {
        let t = now().as_micros();
        t as i64 + self.offset_at(node, t)
    }
}

/// Everything the controller task and the final heal pass share.
struct Deployment {
    config: ChaosConfig,
    partitioner: Partitioner,
    net: Rc<geotp_net::Network>,
    sources: Vec<Rc<DataSource>>,
    /// The currently-serving coordinator (replaced on failover).
    active_mw: RefCell<Rc<Middleware>>,
    /// The durable commit log, shared across coordinator generations.
    commit_log: Rc<CommitLog>,
    trace: Rc<EventTrace>,
    clocks: RefCell<NodeClocks>,
}

impl Deployment {
    fn middleware_config(
        config: &ChaosConfig,
        partitioner: Partitioner,
        first_txn_seq: u64,
    ) -> MiddlewareConfig {
        let mut cfg = MiddlewareConfig::new(NodeId::middleware(0), config.protocol, partitioner);
        cfg.analysis_cost = Duration::from_micros(200);
        cfg.log_flush_cost = Duration::from_micros(200);
        cfg.decision_wait_timeout = config.decision_wait_timeout;
        cfg.record_history = true;
        cfg.scheduler.seed = config.seed;
        cfg.first_txn_seq = first_txn_seq;
        cfg.snapshot_reads = config.snapshot_reads;
        cfg
    }

    fn build(
        config: ChaosConfig,
        trace: Rc<EventTrace>,
        schedule: &FaultSchedule,
        workload: &dyn ChaosWorkload,
    ) -> Rc<Self> {
        let dm = NodeId::middleware(0);
        let mut net_builder =
            NetworkBuilder::new(config.seed).default_lan_rtt(Duration::from_micros(500));
        for (i, rtt) in config.ds_rtts_ms.iter().enumerate() {
            net_builder = net_builder.static_link(
                dm,
                NodeId::data_source(i as u32),
                Duration::from_millis(*rtt),
            );
        }
        for i in 0..config.ds_rtts_ms.len() {
            for j in (i + 1)..config.ds_rtts_ms.len() {
                let rtt = config.ds_rtts_ms[i].max(config.ds_rtts_ms[j]);
                net_builder = net_builder.static_link(
                    NodeId::data_source(i as u32),
                    NodeId::data_source(j as u32),
                    Duration::from_millis(rtt),
                );
            }
        }
        let net = net_builder.build();
        net.set_fault_injector(ScheduleInjector::compile(
            schedule,
            config.seed,
            Rc::clone(&trace),
        ));

        let mut sources = Vec::new();
        for i in 0..config.nodes() {
            let mut ds_cfg = DataSourceConfig::new(NodeId::data_source(i));
            ds_cfg.dialect = Dialect::MySql;
            ds_cfg.engine = EngineConfig {
                lock_wait_timeout: config.lock_wait_timeout,
                cost: CostModel::default(),
                // The serializability checker needs the versioned histories.
                record_history: true,
                isolation: config.isolation,
                group_commit_window: config.group_commit_window,
            };
            ds_cfg.agent_lan_rtt = Duration::from_micros(500);
            sources.push(DataSource::new(ds_cfg, Rc::clone(&net)));
        }
        for a in &sources {
            for b in &sources {
                if a.index() != b.index() {
                    a.register_peer(b);
                }
            }
        }
        if let Some(stride) = config.isolation_bug_read_stride {
            for ds in &sources {
                ds.engine().fail_point_bypass_read_locks(stride);
            }
            trace.record(&format!(
                "fail point armed: every {stride}-th read skips its shared lock"
            ));
        }

        let partitioner = workload.partitioner();
        let mw = Middleware::connect(
            Self::middleware_config(&config, partitioner, 1),
            Rc::clone(&net),
            &sources,
            None,
        );
        if config.commit_before_flush_bug {
            mw.fail_point_dispatch_before_flush();
            trace.record("fail point armed: commit dispatch precedes its log flush");
        }
        let commit_log = Rc::clone(mw.commit_log());

        workload.load(&sources);

        Rc::new(Self {
            config,
            partitioner,
            net,
            sources,
            active_mw: RefCell::new(mw),
            commit_log,
            trace,
            clocks: RefCell::new(NodeClocks::default()),
        })
    }

    /// Replace the crashed coordinator: data sources run their disconnect
    /// handling, a successor shares the durable commit log, replays it over
    /// the in-doubt branches and becomes the active instance.
    async fn failover(&self) {
        let old = self.active_mw.borrow().clone();
        if !old.is_crashed() {
            old.crash();
            self.trace
                .record("controller: crash middleware dm0 (implicit before failover)");
        }
        for ds in &self.sources {
            if ds.is_crashed() {
                continue;
            }
            let aborted = ds.coordinator_disconnected().await;
            if !aborted.is_empty() {
                self.trace.record(&format!(
                    "ds{} disconnect handling aborted {} unprepared branch(es)",
                    ds.index(),
                    aborted.len()
                ));
            }
        }
        let successor = Middleware::connect(
            Self::middleware_config(&self.config, self.partitioner, old.next_txn_seq()),
            Rc::clone(&self.net),
            &self.sources,
            Some(Rc::clone(&self.commit_log)),
        );
        let (committed, aborted) = successor.recover().await;
        self.trace.record(&format!(
            "failover: successor dm0 recovered {committed} committed / {aborted} aborted branch(es)"
        ));
        *self.active_mw.borrow_mut() = successor;
    }

    /// Apply one node-level event.
    async fn apply(&self, event: &FaultEvent) {
        match event {
            FaultEvent::CrashDataSource { ds, .. } => {
                let node = NodeId::data_source(*ds);
                let clock = self.clocks.borrow().node_now_micros(node);
                self.sources[*ds as usize].crash();
                self.trace
                    .record(&format!("crash ds{ds} (node clock {clock}us)"));
            }
            FaultEvent::RestartDataSource { ds, .. } => {
                let recovered = self.sources[*ds as usize].restart().await;
                self.trace.record(&format!(
                    "restart ds{ds}: {} prepared branch(es) recovered from the WAL",
                    recovered.len()
                ));
            }
            FaultEvent::CrashMiddleware { .. } => {
                self.active_mw.borrow().crash();
                self.trace.record("crash middleware dm0");
            }
            FaultEvent::CrashMiddlewareAfterFlush { .. } => {
                self.active_mw.borrow().crash_after_next_flush();
                self.trace
                    .record("arm fail point: crash middleware dm0 after next commit-log flush");
            }
            FaultEvent::FailoverMiddleware { .. } => {
                self.failover().await;
            }
            FaultEvent::ClockSkewRamp {
                node, drift_ppm, ..
            } => {
                self.clocks.borrow_mut().ramp(*node, *drift_ppm);
                self.trace.record(&format!(
                    "clock skew ramp on {node}: {drift_ppm:+} ppm (node clock {}us)",
                    self.clocks.borrow().node_now_micros(*node)
                ));
            }
            // Cluster-tier events have no meaning in the single-coordinator
            // harness: record the skip so a replayed cluster timeline is
            // visibly (not silently) incomplete here.
            FaultEvent::CrashCoordinator { .. }
            | FaultEvent::CrashCoordinatorAfterFlush { .. }
            | FaultEvent::RestartCoordinator { .. } => {
                self.trace.record(&format!(
                    "single-coordinator harness: ignoring cluster event {event:?} \
                     (replay it through run_cluster_scenario)"
                ));
            }
            // Link-level events live in the injector.
            _ => {}
        }
    }
}

/// Run `schedule` against a fresh cluster driving the balance-transfer
/// workload described by `config` (the original drill shape; with
/// [`ChaosConfig::interactive_transfers`] the transfers ship one operation
/// per statement round instead).
pub fn run_scenario(config: ChaosConfig, schedule: FaultSchedule) -> ChaosReport {
    let base = TransferWorkload::from_config(&config);
    if config.interactive_transfers {
        run_scenario_with(
            config,
            schedule,
            Rc::new(crate::workload::InteractiveTransferWorkload(base)),
        )
    } else {
        run_scenario_with(config, schedule, Rc::new(base))
    }
}

/// Drive one client transaction through the session front door, honouring
/// the interactive knobs. `crash_client` makes this the *mid-transaction
/// client crash*: begin, execute the first statement round, think, vanish.
/// Returns `None` when the client crashed mid-transaction (no client-side
/// outcome exists — the middleware's connection-loss handling owns the
/// cleanup) and `Some(outcome)` otherwise.
pub(crate) async fn drive_client_txn(
    session: &mut geotp_middleware::Session,
    spec: &geotp_middleware::TransactionSpec,
    think_time: Duration,
    crash_client: bool,
) -> Option<TxnOutcome> {
    if !crash_client {
        return Some(session.run_spec_thinking(spec, think_time).await);
    }
    let mut txn = match session.begin().await {
        Ok(txn) => txn,
        Err(refused) => return Some(refused.outcome),
    };
    let Some(first_round) = spec.rounds.first() else {
        txn.abandon();
        return None;
    };
    if let Err(error) = txn.execute(first_round).await {
        return Some(error.outcome);
    }
    if !think_time.is_zero() {
        txn.think(think_time).await;
    }
    txn.abandon();
    None
}

/// The per-client workload RNG stream. One derivation, used by the seeded
/// client loops of *both* harnesses and by [`client_scripts`]: the workload
/// shrinker's "exact scripts a seeded run would generate" contract depends
/// on these never diverging.
pub fn client_rng(seed: u64, client: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x5151_7c7c + client as u64 * 0x9e37))
}

/// Materialize the exact per-client transaction scripts a seeded run of
/// `workload` under `config` would generate: one list per client, drawn from
/// the same per-client RNG streams the harness uses. The workload shrinker
/// starts from these and drops clients/transactions while the failure
/// reproduces (see [`crate::shrink_workload`]).
pub fn client_scripts(
    config: &ChaosConfig,
    workload: &dyn ChaosWorkload,
) -> Vec<Vec<geotp_middleware::TransactionSpec>> {
    (0..config.clients)
        .map(|client| {
            let mut rng = client_rng(config.seed, client);
            (0..config.txns_per_client)
                .map(|_| workload.next_spec(&mut rng))
                .collect()
        })
        .collect()
}

/// Run `schedule` with an *explicit* per-client workload instead of seeded
/// generation: client `i` executes exactly `scripts[i]`, in order (retries
/// after a refused connection re-submit the same spec, as always). `workload`
/// still supplies the partitioner, the initial load and the consistency
/// conditions. This is the replay vehicle for minimized workloads.
pub fn run_scenario_scripted(
    config: ChaosConfig,
    schedule: FaultSchedule,
    workload: Rc<dyn ChaosWorkload>,
    scripts: Vec<Vec<geotp_middleware::TransactionSpec>>,
) -> ChaosReport {
    run_scenario_impl(config, schedule, workload, Some(scripts))
}

/// Run `schedule` against a fresh cluster described by `config`, driving
/// `workload`, and return the invariant-checked, replayable report.
pub fn run_scenario_with(
    config: ChaosConfig,
    schedule: FaultSchedule,
    workload: Rc<dyn ChaosWorkload>,
) -> ChaosReport {
    run_scenario_impl(config, schedule, workload, None)
}

/// Build the simulator runtime for a chaos run: the middleware and data
/// sources are declared as topology nodes (links carry the configured WAN
/// RTTs) but pinned to shard 0, because the deployment is one `Rc`-shared
/// object graph. Extra worker shards idle at the barrier, which is exactly
/// the scheduler-independence property the worker-matrix tests pin down.
fn chaos_runtime(config: &ChaosConfig) -> geotp_simrt::Runtime {
    let mut builder = geotp_simrt::RuntimeBuilder::from_env()
        .seed(config.seed)
        .node("mw0")
        .assign("mw0", 0);
    for (i, rtt_ms) in config.ds_rtts_ms.iter().enumerate() {
        let ds = format!("ds{i}");
        builder = builder
            .link("mw0", &ds, Duration::from_millis(*rtt_ms))
            .assign(&ds, 0);
    }
    if let Some(workers) = config.workers {
        builder = builder.workers(workers);
    }
    builder.build()
}

fn run_scenario_impl(
    config: ChaosConfig,
    schedule: FaultSchedule,
    workload: Rc<dyn ChaosWorkload>,
    scripts: Option<Vec<Vec<geotp_middleware::TransactionSpec>>>,
) -> ChaosReport {
    let mut rt = chaos_runtime(&config);
    rt.block_on(async move {
        let trace = EventTrace::new();
        trace.record(&format!(
            "scenario start: workload={} seed={} nodes={} clients={}x{} protocol={}",
            workload.name(),
            config.seed,
            config.nodes(),
            config.clients,
            config.txns_per_client,
            config.protocol.name()
        ));
        let deployment =
            Deployment::build(config.clone(), Rc::clone(&trace), &schedule, &*workload);

        // ---------------- controller task ----------------
        let controller = {
            let deployment = Rc::clone(&deployment);
            let events = schedule.node_events();
            spawn(async move {
                for event in events {
                    sleep_until(SimInstant::ZERO + event.at()).await;
                    deployment.apply(&event).await;
                }
            })
        };

        // ---------------- workload ----------------
        let ledger: Rc<RefCell<Vec<TxnOutcome>>> = Rc::new(RefCell::new(Vec::new()));
        let refused_connections = Rc::new(std::cell::Cell::new(0u64));
        let scripts = scripts.map(Rc::new);
        let client_count = scripts.as_ref().map(|s| s.len()).unwrap_or(config.clients);
        let mut clients = Vec::new();
        for client in 0..client_count {
            let deployment = Rc::clone(&deployment);
            let ledger = Rc::clone(&ledger);
            let refused_connections = Rc::clone(&refused_connections);
            let workload = Rc::clone(&workload);
            let scripts = scripts.clone();
            let config = config.clone();
            clients.push(spawn(async move {
                let mut rng = client_rng(config.seed, client);
                let txns = scripts
                    .as_ref()
                    .map(|s| s[client].len())
                    .unwrap_or(config.txns_per_client);
                for txn in 0..txns {
                    let spec = match &scripts {
                        Some(scripts) => scripts[client][txn].clone(),
                        None => workload.next_spec(&mut rng),
                    };
                    let crash_client = config
                        .client_crash_every
                        .is_some_and(|n| n > 0 && (txn as u64 + 1).is_multiple_of(n));
                    // A crashed coordinator refuses the connection; real
                    // clients reconnect and retry (re-`connect`ing their
                    // session against whatever instance is serving) under
                    // the config's retry policy. Refusals and other transient
                    // non-starts never started a transaction (gtrid 0), so
                    // they are counted separately and kept out of the
                    // per-transaction ledger. Bounded so a schedule without
                    // failover still drains.
                    let retry = config.retry;
                    let mut attempts = 0;
                    loop {
                        let mw = deployment.active_mw.borrow().clone();
                        let mut session =
                            geotp_middleware::SessionService::connect(&mw, client as u64);
                        attempts += 1;
                        let Some(outcome) =
                            drive_client_txn(&mut session, &spec, config.think_time, crash_client)
                                .await
                        else {
                            // The client crashed mid-transaction: nobody is
                            // waiting for an outcome; move on.
                            break;
                        };
                        let transient = outcome.is_refusal()
                            || outcome.is_overloaded()
                            || outcome.abort_reason == Some(AbortReason::SessionExpired);
                        if !transient {
                            ledger.borrow_mut().push(outcome);
                            break;
                        }
                        refused_connections.set(refused_connections.get() + 1);
                        if attempts >= retry.max_attempts {
                            break;
                        }
                        let mut pause = retry.backoff(attempts - 1, &mut rng);
                        if let Some(hint) = outcome.retry_after {
                            pause = pause.max(hint);
                        }
                        sleep(pause).await;
                    }
                }
            }));
        }

        // ---------------- drain, bounded by the liveness horizon ----------------
        let drained = geotp_simrt::timeout(config.horizon, async {
            for client in clients {
                client.await;
            }
            controller.await;
            // Let in-flight notifications / deferred decisions settle.
            sleep(config.decision_wait_timeout * 2 + Duration::from_secs(1)).await;
        })
        .await;
        let workload_drained = drained.is_ok();
        trace.record(&format!(
            "workload drained within horizon: {workload_drained}"
        ));

        // ---------------- heal everything, resolve in-doubt state ----------------
        deployment.net.clear_fault_injector();
        for ds in &deployment.sources {
            if ds.is_crashed() {
                let recovered = ds.restart().await;
                trace.record(&format!(
                    "final heal: restart ds{} ({} prepared branch(es) recovered)",
                    ds.index(),
                    recovered.len()
                ));
            }
        }
        if deployment.active_mw.borrow().is_crashed() {
            deployment.failover().await;
        }
        let final_mw = deployment.active_mw.borrow().clone();
        let (rec_committed, rec_aborted) = final_mw.recover().await;
        trace.record(&format!(
            "final recovery pass: {rec_committed} committed / {rec_aborted} aborted branch(es)"
        ));

        // ---------------- tally + invariants ----------------
        let ledger = ledger.borrow();
        let committed = ledger.iter().filter(|o| o.committed).count() as u64;
        // Indeterminate = transactions that actually started (gtrid
        // assigned) and then lost their coordinator mid-flight; connection
        // refusals were never transactions and are reported separately.
        let indeterminate = ledger
            .iter()
            .filter(|o| o.gtrid != 0 && o.abort_reason == Some(AbortReason::CoordinatorCrashed))
            .count() as u64;
        let aborted = ledger.len() as u64 - committed - indeterminate;
        if refused_connections.get() > 0 {
            trace.record(&format!(
                "coordinator refused {} connection attempt(s) while crashed",
                refused_connections.get()
            ));
        }

        let mut invariants = invariants::check(
            &deployment.sources,
            || workload.consistency_violations(&deployment.sources),
            &ledger,
            |gtrid| deployment.commit_log.decision(gtrid),
            workload_drained,
        );
        // Traced runs also get the trace oracle (fifth checker). Its verdict
        // is deliberately kept out of the event trace: fingerprints must stay
        // byte-identical between traced and untraced replays of one seed.
        if let Some(telemetry) = geotp_telemetry::installed() {
            invariants::trace::apply_with(
                &mut invariants,
                &telemetry,
                &deployment.sources,
                &ledger,
                &deployment.config.trace_rules,
            );
        }
        trace.record(&format!(
            "summary: committed={committed} aborted={aborted} indeterminate={indeterminate}"
        ));
        trace.record(&format!(
            "invariants: atomicity={} durability={} liveness={} serializability={}",
            invariants.atomicity_ok,
            invariants.durability_ok,
            invariants.liveness_ok,
            invariants.serializability_ok
        ));

        ChaosReport {
            committed,
            aborted,
            indeterminate,
            invariants,
            fingerprint: trace.fingerprint(),
            trace: trace.lines(),
        }
    })
}
