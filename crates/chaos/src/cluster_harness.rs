//! The multi-coordinator chaos harness: drive a workload against a
//! [`CoordinatorCluster`] under a fault schedule and check the same four
//! invariants as the single-coordinator harness.
//!
//! Differences from [`crate::harness`]:
//!
//! * the deployment is a *tier* — N coordinators over the shared data
//!   sources, each with its own commit log and gtrid space, fronted by the
//!   consistent-hash session router;
//! * nobody scripts a failover: the cluster's own lease heartbeats (over the
//!   simulated network, so partitions starve them), supervisor, fencing and
//!   peer takeover react to the schedule's crashes and partitions;
//! * clients are *sessions*: each client keeps its session id for the whole
//!   run, so failover is visible as the router re-homing the session;
//! * the durability checker resolves each gtrid against its owning
//!   coordinator's commit log, and the serializability checker consumes the
//!   engine histories exactly as before — engine-side history is coordinator
//!   -agnostic, so cross-coordinator anomalies close cycles the same way.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use geotp_cluster::{
    build_tier, AdmissionPolicy, ClusterConfig, CoordinatorCluster, MembershipConfig,
    SessionReaperConfig, TierLayout,
};
use geotp_middleware::session::RetryPolicy;
use geotp_middleware::{AbortReason, Protocol, TxnOutcome};
use geotp_simrt::{sleep, sleep_until, spawn, SimInstant};
use geotp_storage::{CostModel, EngineConfig};
use geotp_workloads::ZipfianGenerator;

use crate::harness::{ChaosConfig, ChaosReport};
use crate::injector::ScheduleInjector;
use crate::invariants;
use crate::schedule::{FaultEvent, FaultSchedule};
use crate::trace::EventTrace;
use crate::workload::{ChaosWorkload, TransferWorkload};

/// Parameters of a multi-coordinator chaos run. Wraps the single-coordinator
/// [`ChaosConfig`] (workload shape, RTTs, timeouts, horizon) and adds the
/// tier dimensions.
#[derive(Debug, Clone)]
pub struct ClusterChaosConfig {
    /// The workload/deployment knobs shared with the single-coordinator runs.
    pub base: ChaosConfig,
    /// Number of coordinator slots.
    pub coordinators: usize,
    /// Lease/heartbeat parameters (the failure-detection clock of the tier).
    pub membership: MembershipConfig,
    /// Supervisor scan cadence.
    pub supervisor_interval: Duration,
    /// Coordinator↔control-node RTT in milliseconds.
    pub control_rtt_ms: u64,
    /// Per-coordinator worker capacity (`0` = unbounded, the legacy shape).
    pub max_inflight: usize,
    /// Admission policy at each coordinator's capacity gate.
    pub admission: AdmissionPolicy,
    /// Idle-session reaper schedule (`None` = never reap).
    pub session_reaper: Option<SessionReaperConfig>,
    /// Client retry policy for transient non-starts (refused connections,
    /// overload sheds, reaped sessions). The default reproduces the legacy
    /// loop exactly — 40 attempts, flat 250 ms pauses, no RNG consumed — so
    /// existing preset traces stay bit-identical.
    pub retry: RetryPolicy,
    /// When set, the run drives a flash crowd (idle-session registration +
    /// zipfian arrival spike) instead of/alongside the per-client loops.
    pub flash_crowd: Option<FlashCrowdConfig>,
}

impl Default for ClusterChaosConfig {
    fn default() -> Self {
        Self {
            base: ChaosConfig::default(),
            coordinators: 2,
            membership: MembershipConfig {
                lease: Duration::from_millis(1_500),
                heartbeat_interval: Duration::from_millis(500),
            },
            supervisor_interval: Duration::from_millis(500),
            control_rtt_ms: 2,
            max_inflight: 0,
            admission: AdmissionPolicy::default(),
            session_reaper: None,
            retry: RetryPolicy::fixed(40, Duration::from_millis(250)),
            flash_crowd: None,
        }
    }
}

/// The flash-crowd drive: a large mostly-idle session population is
/// registered up front (router affinity + registry entries on every
/// coordinator), then a sudden open-loop arrival spike hits a zipfian hot
/// set of those sessions — typically with a coordinator failover armed
/// mid-spike and bounded admission shedding the overflow.
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdConfig {
    /// Sessions registered before the spike (the mostly-idle crowd).
    pub idle_sessions: u64,
    /// When the arrival spike starts.
    pub spike_at: Duration,
    /// How long the spike lasts.
    pub spike_duration: Duration,
    /// Spike arrival rate (open loop: arrivals do not wait for completions).
    pub spike_arrivals_per_sec: u64,
    /// Zipfian skew of the spike's session choice (item 0 hottest).
    pub zipf_theta: f64,
    /// Retry policy of each spike arrival (exponential backoff with seeded
    /// jitter — the schedule is a pure function of the run's seed).
    pub retry: RetryPolicy,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        Self {
            idle_sessions: 200_000,
            spike_at: Duration::from_secs(2),
            spike_duration: Duration::from_millis(1_500),
            spike_arrivals_per_sec: 400,
            zipf_theta: 0.9,
            retry: RetryPolicy {
                max_attempts: 6,
                base_backoff: Duration::from_millis(25),
                max_backoff: Duration::from_secs(1),
                jitter: 0.5,
            },
        }
    }
}

/// Build the simulator runtime for a cluster chaos run: coordinators,
/// control node and data sources become topology nodes, all pinned to
/// shard 0 (the tier is one `Rc`-shared object graph). `base.workers`
/// (default: the `GEOTP_WORKERS` environment variable) sets the shard
/// count; extra shards idle at the barrier without perturbing the trace.
fn cluster_runtime(config: &ClusterChaosConfig) -> geotp_simrt::Runtime {
    let mut builder = geotp_simrt::RuntimeBuilder::from_env()
        .seed(config.base.seed)
        .node("control0")
        .assign("control0", 0);
    for c in 0..config.coordinators {
        let mw = format!("mw{c}");
        builder = builder
            .link(
                "control0",
                &mw,
                Duration::from_millis(config.control_rtt_ms),
            )
            .assign(&mw, 0);
        for (i, rtt_ms) in config.base.ds_rtts_ms.iter().enumerate() {
            let ds = format!("ds{i}");
            builder = builder
                .link(&mw, &ds, Duration::from_millis(*rtt_ms))
                .assign(&ds, 0);
        }
    }
    if let Some(workers) = config.base.workers {
        builder = builder.workers(workers);
    }
    builder.build()
}

/// Run `schedule` against a fresh coordinator tier driving the balance
/// transfer workload, and return the invariant-checked, replayable report.
pub fn run_cluster_scenario(config: ClusterChaosConfig, schedule: FaultSchedule) -> ChaosReport {
    let workload = Rc::new(TransferWorkload::from_config(&config.base));
    run_cluster_scenario_with(config, schedule, workload)
}

/// Run `schedule` against a fresh coordinator tier driving an arbitrary
/// [`ChaosWorkload`] (the TPC-C mix, interactive transfers, ...): the
/// workload supplies the partitioner, the initial load, the per-client
/// transaction stream and the consistency conditions, exactly as in the
/// single-coordinator [`crate::run_scenario_with`].
pub fn run_cluster_scenario_with(
    config: ClusterChaosConfig,
    schedule: FaultSchedule,
    workload: Rc<dyn ChaosWorkload>,
) -> ChaosReport {
    let mut rt = cluster_runtime(&config);
    rt.block_on(async move {
        let trace = EventTrace::new();
        trace.record(&format!(
            "cluster scenario start: workload={} seed={} coordinators={} nodes={} clients={}x{} protocol={}",
            workload.name(),
            config.base.seed,
            config.coordinators,
            config.base.nodes(),
            config.base.clients,
            config.base.txns_per_client,
            config.base.protocol.name()
        ));

        // ---------------- deployment ----------------
        let (net, sources) = build_tier(&TierLayout {
            seed: config.base.seed,
            coordinators: config.coordinators,
            ds_rtts_ms: config.base.ds_rtts_ms.clone(),
            control_rtt_ms: config.control_rtt_ms,
            engine: EngineConfig {
                lock_wait_timeout: config.base.lock_wait_timeout,
                cost: CostModel::default(),
                // The serializability checker needs the versioned histories.
                record_history: true,
                isolation: config.base.isolation,
                group_commit_window: config.base.group_commit_window,
            },
            agent_lan_rtt: Duration::from_micros(500),
        });
        net.set_fault_injector(ScheduleInjector::compile(
            &schedule,
            config.base.seed,
            Rc::clone(&trace),
        ));
        workload.load(&sources);

        let mut tier_cfg = ClusterConfig::new(
            config.coordinators,
            config.base.protocol,
            workload.partitioner(),
        );
        tier_cfg.membership = config.membership;
        tier_cfg.supervisor_interval = config.supervisor_interval;
        tier_cfg.decision_wait_timeout = config.base.decision_wait_timeout;
        tier_cfg.record_history = true;
        tier_cfg.snapshot_reads = config.base.snapshot_reads;
        tier_cfg.seed = config.base.seed;
        tier_cfg.max_inflight = config.max_inflight;
        tier_cfg.admission = config.admission;
        tier_cfg.session_reaper = config.session_reaper;
        let cluster = CoordinatorCluster::build(tier_cfg, Rc::clone(&net), &sources);
        cluster.start();

        // ---------------- controller task ----------------
        let controller = {
            let cluster = Rc::clone(&cluster);
            let sources = sources.clone();
            let trace = Rc::clone(&trace);
            let events = schedule.node_events();
            spawn(async move {
                for event in events {
                    sleep_until(SimInstant::ZERO + event.at()).await;
                    match &event {
                        FaultEvent::CrashDataSource { ds, .. } => {
                            sources[*ds as usize].crash();
                            trace.record(&format!("crash ds{ds}"));
                        }
                        FaultEvent::RestartDataSource { ds, .. } => {
                            let recovered = sources[*ds as usize].restart().await;
                            trace.record(&format!(
                                "restart ds{ds}: {} prepared branch(es) recovered from the WAL",
                                recovered.len()
                            ));
                        }
                        FaultEvent::CrashCoordinator { dm, .. } => {
                            cluster.crash(*dm);
                            trace.record(&format!("crash coordinator dm{dm}"));
                        }
                        FaultEvent::CrashCoordinatorAfterFlush { dm, .. } => {
                            cluster.crash_after_next_flush(*dm);
                            trace.record(&format!(
                                "arm fail point: crash coordinator dm{dm} after next commit-log flush"
                            ));
                        }
                        FaultEvent::RestartCoordinator { dm, .. } => {
                            let epoch = cluster.restart(*dm).await;
                            trace.record(&format!(
                                "restart coordinator dm{dm}: successor registered at epoch {epoch}"
                            ));
                        }
                        other => {
                            trace.record(&format!(
                                "cluster harness: ignoring single-coordinator event {other:?}"
                            ));
                        }
                    }
                }
            })
        };

        // ---------------- workload (one session per client) ----------------
        let ledger: Rc<RefCell<Vec<TxnOutcome>>> = Rc::new(RefCell::new(Vec::new()));
        let refused_connections = Rc::new(std::cell::Cell::new(0u64));
        let degraded_retries = Rc::new(std::cell::Cell::new(0u64));
        let mut clients = Vec::new();
        for client in 0..config.base.clients {
            let cluster = Rc::clone(&cluster);
            let ledger = Rc::clone(&ledger);
            let refused_connections = Rc::clone(&refused_connections);
            let degraded_retries = Rc::clone(&degraded_retries);
            let workload: Rc<dyn ChaosWorkload> = Rc::clone(&workload) as _;
            let base = config.base.clone();
            let retry = config.retry;
            clients.push(spawn(async move {
                let mut rng = crate::harness::client_rng(base.seed, client);
                // One durable session per client: the router pins it to a
                // coordinator (affinity), re-homes it on takeover, and moves
                // it back when its home slot re-registers.
                let mut session = cluster.connect(client as u64);
                for txn in 0..base.txns_per_client {
                    let spec = workload.next_spec(&mut rng);
                    let crash_client = base
                        .client_crash_every
                        .is_some_and(|n| n > 0 && (txn as u64 + 1).is_multiple_of(n));
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        let Some(outcome) = crate::harness::drive_client_txn(
                            &mut session,
                            &spec,
                            base.think_time,
                            crash_client,
                        )
                        .await
                        else {
                            break; // client crashed mid-transaction on purpose
                        };
                        // Transient non-starts (gtrid 0: refused connection,
                        // overload shed, reaped session) are retried under
                        // the budget; everything that actually ran lands in
                        // the ledger.
                        let transient = outcome.is_refusal()
                            || outcome.is_overloaded()
                            || outcome.abort_reason == Some(AbortReason::SessionExpired);
                        if !transient {
                            ledger.borrow_mut().push(outcome);
                            break;
                        }
                        if outcome.is_refusal() {
                            refused_connections.set(refused_connections.get() + 1);
                        } else {
                            degraded_retries.set(degraded_retries.get() + 1);
                        }
                        if attempts >= retry.max_attempts {
                            break;
                        }
                        let mut pause = retry.backoff(attempts - 1, &mut rng);
                        if let Some(hint) = outcome.retry_after {
                            pause = pause.max(hint);
                        }
                        sleep(pause).await;
                    }
                }
            }));
        }

        // ---------------- flash crowd (idle sessions + arrival spike) ----------------
        if let Some(fc) = config.flash_crowd {
            // Register the mostly-idle crowd up front: every session pins its
            // router affinity and lands a registry entry on its coordinator —
            // the state the reaper must keep lean.
            let mut registered = 0u64;
            for session in 0..fc.idle_sessions {
                if let Some(coord) = cluster.router().route(session) {
                    cluster.middleware(coord).register_session(session);
                    registered += 1;
                }
            }
            trace.record(&format!(
                "flash crowd: {registered} idle session(s) registered, spike {}/s for {:?} at {:?}",
                fc.spike_arrivals_per_sec, fc.spike_duration, fc.spike_at
            ));
            let arrivals = (fc.spike_duration.as_micros() as u64 * fc.spike_arrivals_per_sec
                / 1_000_000)
                .max(1);
            let interval_micros =
                (fc.spike_duration.as_micros() as u64 / arrivals).max(1);
            let zipf = Rc::new(ZipfianGenerator::new(fc.idle_sessions, fc.zipf_theta));
            for arrival in 0..arrivals {
                let cluster = Rc::clone(&cluster);
                let ledger = Rc::clone(&ledger);
                let refused_connections = Rc::clone(&refused_connections);
                let degraded_retries = Rc::clone(&degraded_retries);
                let workload: Rc<dyn ChaosWorkload> = Rc::clone(&workload) as _;
                let zipf = Rc::clone(&zipf);
                let seed = config.base.seed;
                clients.push(spawn(async move {
                    let at = SimInstant::ZERO
                        + fc.spike_at
                        + Duration::from_micros(arrival * interval_micros);
                    sleep_until(at).await;
                    // Each arrival gets its own derived RNG stream: the whole
                    // spike (session choice, spec, backoff jitter) is a pure
                    // function of the run's seed.
                    let mut rng =
                        crate::harness::client_rng(seed, 0x0f1a_5000 + arrival as usize);
                    let session_id = zipf.next(&mut rng);
                    let spec = workload.next_spec(&mut rng);
                    let mut session = cluster.connect(session_id);
                    let retried = session
                        .run_spec_with_retries(&spec, Duration::ZERO, fc.retry, &mut rng)
                        .await;
                    let outcome = retried.outcome;
                    let transient = outcome.is_refusal()
                        || outcome.is_overloaded()
                        || outcome.abort_reason == Some(AbortReason::SessionExpired);
                    if transient {
                        // Budget exhausted without ever starting a
                        // transaction: shed load, not an abort.
                        if outcome.is_refusal() {
                            refused_connections.set(refused_connections.get() + 1);
                        } else {
                            degraded_retries.set(degraded_retries.get() + 1);
                        }
                    } else {
                        ledger.borrow_mut().push(outcome);
                    }
                }));
            }
        }

        // ---------------- drain, bounded by the liveness horizon ----------------
        let drained = geotp_simrt::timeout(config.base.horizon, async {
            for client in clients {
                client.await;
            }
            controller.await;
            // Let lease expiry, takeover and deferred decisions settle: the
            // tier needs a lease + a supervisor scan to notice a death, plus
            // the decision-wait tail of in-flight transactions.
            sleep(
                config.membership.lease
                    + config.supervisor_interval * 2
                    + config.base.decision_wait_timeout * 2
                    + Duration::from_secs(1),
            )
            .await;
        })
        .await;
        let workload_drained = drained.is_ok();
        trace.record(&format!("workload drained within horizon: {workload_drained}"));

        // ---------------- heal everything, resolve in-doubt state ----------------
        cluster.stop();
        net.clear_fault_injector();
        for ds in &sources {
            if ds.is_crashed() {
                let recovered = ds.restart().await;
                trace.record(&format!(
                    "final heal: restart ds{} ({} prepared branch(es) recovered)",
                    ds.index(),
                    recovered.len()
                ));
            }
        }
        let (rec_committed, rec_aborted) = cluster.recover_all().await;
        trace.record(&format!(
            "final recovery pass: {rec_committed} committed / {rec_aborted} aborted branch(es); \
             takeovers so far: {}",
            cluster.takeover_count()
        ));

        // ---------------- tally + invariants ----------------
        let ledger = ledger.borrow();
        let committed = ledger.iter().filter(|o| o.committed).count() as u64;
        let indeterminate = ledger
            .iter()
            .filter(|o| o.gtrid != 0 && o.abort_reason == Some(AbortReason::CoordinatorCrashed))
            .count() as u64;
        let aborted = ledger.len() as u64 - committed - indeterminate;
        if refused_connections.get() > 0 {
            trace.record(&format!(
                "router/coordinators refused {} connection attempt(s)",
                refused_connections.get()
            ));
        }
        if degraded_retries.get() > 0 || cluster.shed_count() > 0 || cluster.reaped_sessions() > 0 {
            trace.record(&format!(
                "degradation: {} transient non-start(s) (shed/expired) seen by clients, \
                 {} begin(s) shed by admission, {} idle session(s) reaped",
                degraded_retries.get(),
                cluster.shed_count(),
                cluster.reaped_sessions()
            ));
        }

        let mut invariants = invariants::check(
            &sources,
            || workload.consistency_violations(&sources),
            &ledger,
            |gtrid| cluster.decision(gtrid),
            workload_drained,
        );
        // Traced runs also get the trace oracle (fifth checker); its verdict
        // stays out of the event trace so fingerprints remain byte-identical
        // between traced and untraced replays.
        if let Some(telemetry) = geotp_telemetry::installed() {
            invariants::trace::apply_with(
                &mut invariants,
                &telemetry,
                &sources,
                &ledger,
                &config.base.trace_rules,
            );
        }
        trace.record(&format!(
            "summary: committed={committed} aborted={aborted} indeterminate={indeterminate} \
             takeovers={}",
            cluster.takeover_count()
        ));
        trace.record(&format!(
            "invariants: atomicity={} durability={} liveness={} serializability={}",
            invariants.atomicity_ok,
            invariants.durability_ok,
            invariants.liveness_ok,
            invariants.serializability_ok
        ));

        ChaosReport {
            committed,
            aborted,
            indeterminate,
            invariants,
            fingerprint: trace.fingerprint(),
            trace: trace.lines(),
        }
    })
}

/// Named multi-coordinator failure presets — the drills the single
/// -coordinator catalog could not express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterScenario {
    /// A coordinator crashes mid-traffic (half of it inside the §V-A window:
    /// decision durable, never dispatched). The supervisor must detect the
    /// death, fence the epoch and have a peer adopt every in-doubt branch
    /// while the dead coordinator's sessions fail over.
    CoordinatorCrashTakeover,
    /// Split brain: a coordinator is partitioned from the membership service
    /// (but not from the data sources!), its lease lapses, the cluster
    /// declares it dead and fences it — while the process keeps serving its
    /// sessions. Every decision it issues from the stale epoch must be
    /// rejected by the sealed commit log and by every data source.
    CoordinatorPartition,
    /// A coordinator loses a subset of the data sources across the commit
    /// window (its lease stays healthy): transactions stall, decision-wait
    /// timeouts fire, and everything must drain once the partition heals —
    /// with the other coordinator's traffic unaffected throughout.
    CoordinatorSourcePartition,
    /// *Both* coordinators die mid-traffic (one inside the §V-A window) and
    /// the tier must recover **from cold**: while everyone is down nobody can
    /// adopt anybody, clients see only refusals, and in-doubt branches wait.
    /// Staggered restarts then bring successors up at fresh epochs over the
    /// shared commit logs — the first one back recovers its own gtrid space
    /// and (via the supervisor's retry of never-adopted dead slots) fences
    /// and adopts its still-dead peer; the router re-homes sessions both
    /// ways. Everything must drain and the four invariants must hold.
    DualCoordinatorCrash,
    /// Flash crowd: 200k mostly-idle registered sessions, then a sudden
    /// open-loop arrival spike on a zipfian hot set of them — with bounded
    /// admission (queue 64, 250 ms queue deadline) shedding the overflow,
    /// session-level retry budgets backing the arrivals off, the idle-session
    /// reaper keeping the registries lean, and a coordinator crash-after-
    /// flush armed *mid-spike* so takeover happens under overload.
    FlashCrowd,
}

impl ClusterScenario {
    /// Every cluster preset, in a stable order.
    pub fn all() -> [ClusterScenario; 5] {
        [
            ClusterScenario::CoordinatorCrashTakeover,
            ClusterScenario::CoordinatorPartition,
            ClusterScenario::CoordinatorSourcePartition,
            ClusterScenario::DualCoordinatorCrash,
            ClusterScenario::FlashCrowd,
        ]
    }

    /// Stable identifier used in tables, trace files and CI output.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterScenario::CoordinatorCrashTakeover => "coordinator_crash_takeover",
            ClusterScenario::CoordinatorPartition => "coordinator_partition",
            ClusterScenario::CoordinatorSourcePartition => "coordinator_source_partition",
            ClusterScenario::DualCoordinatorCrash => "dual_coordinator_cold_restart",
            ClusterScenario::FlashCrowd => "flash_crowd",
        }
    }

    /// The preset's configuration and schedule for a given seed: a
    /// 2-coordinator tier over the default 3 data sources.
    pub fn build(&self, seed: u64) -> (ClusterChaosConfig, FaultSchedule) {
        let mut config = ClusterChaosConfig {
            base: ChaosConfig {
                seed,
                // Distributed transfers everywhere: cross-coordinator fencing
                // and adoption only bite on 2PC transactions.
                distributed_ratio: 1.0,
                // Enough sessions that the consistent-hash ring puts real
                // traffic on every coordinator (sessions = clients, and the
                // ring is seed-independent).
                clients: 8,
                txns_per_client: 15,
                protocol: Protocol::geotp(),
                ..ChaosConfig::default()
            },
            ..ClusterChaosConfig::default()
        };
        let s = Duration::from_secs;
        let ms = Duration::from_millis;
        let schedule = match self {
            ClusterScenario::CoordinatorCrashTakeover => {
                FaultSchedule::new().with(FaultEvent::CrashCoordinatorAfterFlush {
                    at: ms(2_500),
                    dm: 1,
                })
            }
            ClusterScenario::CoordinatorPartition => FaultSchedule::new().with(
                // dm1 can still reach every data source — only the control
                // plane is gone. The lease (1.5 s) lapses inside the window.
                FaultEvent::Partition {
                    at: s(2),
                    until: s(8),
                    a: geotp_net::NodeId::middleware(1),
                    b: geotp_net::NodeId::control(0),
                },
            ),
            ClusterScenario::CoordinatorSourcePartition => {
                FaultSchedule::new().with(FaultEvent::Partition {
                    at: s(2),
                    until: s(6),
                    a: geotp_net::NodeId::middleware(1),
                    b: geotp_net::NodeId::data_source(2),
                })
            }
            ClusterScenario::DualCoordinatorCrash => FaultSchedule::new()
                .with(FaultEvent::CrashCoordinatorAfterFlush {
                    at: ms(2_000),
                    dm: 0,
                })
                .with(FaultEvent::CrashCoordinator {
                    at: ms(2_400),
                    dm: 1,
                })
                .with(FaultEvent::RestartCoordinator { at: s(6), dm: 0 })
                .with(FaultEvent::RestartCoordinator { at: s(9), dm: 1 }),
            ClusterScenario::FlashCrowd => {
                // No per-client loops: the spike *is* the workload. Bounded
                // admission per coordinator, reaper keeping the 200k-session
                // registries lean, takeover armed mid-spike (spike runs
                // 2.0 s – 3.5 s; the crash lands ~2.6 s, inside it).
                config.base.clients = 0;
                config.base.txns_per_client = 0;
                config.max_inflight = 32;
                config.admission = AdmissionPolicy::bounded(64, ms(250));
                config.session_reaper = Some(SessionReaperConfig {
                    interval: ms(500),
                    idle_for: s(5),
                });
                config.flash_crowd = Some(FlashCrowdConfig::default());
                FaultSchedule::new().with(FaultEvent::CrashCoordinatorAfterFlush {
                    at: ms(2_600),
                    dm: 1,
                })
            }
        };
        (config, schedule)
    }

    /// Build and run this preset under `seed`.
    pub fn run(&self, seed: u64) -> ChaosReport {
        let (config, schedule) = self.build(seed);
        run_cluster_scenario(config, schedule)
    }

    /// Build and run this preset's *deployment and schedule* under `seed`,
    /// but drive `workload` instead of the default balance transfers — e.g.
    /// the TPC-C mix at drill scale with a takeover mid-`NewOrder`.
    pub fn run_with(&self, seed: u64, workload: Rc<dyn ChaosWorkload>) -> ChaosReport {
        let (config, schedule) = self.build(seed);
        run_cluster_scenario_with(config, schedule, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_preset_names_are_unique_and_stable() {
        let names: Vec<&str> = ClusterScenario::all().iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn cluster_schedules_heal_before_the_horizon() {
        for preset in ClusterScenario::all() {
            let (config, schedule) = preset.build(1);
            assert!(
                schedule.last_fault_instant()
                    + config.membership.lease
                    + config.base.decision_wait_timeout * 2
                    < config.base.horizon,
                "{}: faults must heal comfortably before the horizon",
                preset.name()
            );
        }
    }
}
