//! The fault-schedule DSL.
//!
//! A [`FaultSchedule`] is a declarative timeline of faults, written either
//! explicitly (every preset in [`crate::scenarios`] is one) or generated from
//! a seed with [`FaultSchedule::random`]. Link-level events (partitions,
//! latency storms, notification loss) compile into the
//! [`crate::ScheduleInjector`] consulted by the network on every message;
//! node-level events (crashes, restarts, failover, clock skew) are applied by
//! the harness's controller task at their scheduled instants.
//!
//! All instants are virtual-time offsets from the start of the run, and every
//! windowed fault carries its own heal time — the whole failure history is
//! known up front, which is what makes runs replayable and lets the injector
//! answer "when does this partition heal?" without hidden state.

use std::time::Duration;

use geotp_net::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Data source `ds` crashes at `at`: volatile state is lost, blocked
    /// lock waiters are kicked out, requests fail until restart.
    CrashDataSource {
        /// When the crash happens.
        at: Duration,
        /// Index of the data source.
        ds: u32,
    },
    /// Data source `ds` restarts at `at`: durable-prepared branches survive
    /// (recovered from the WAL via the XA state machine), everything else is
    /// rolled back.
    RestartDataSource {
        /// When the restart happens.
        at: Duration,
        /// Index of the data source.
        ds: u32,
    },
    /// The coordinator process dies at `at`. In-flight transactions get no
    /// outcome; branches stay in doubt until failover.
    CrashMiddleware {
        /// When the crash happens.
        at: Duration,
    },
    /// Arm the one-shot fail point at `at`: the coordinator crashes right
    /// after its *next* commit-log flush — decision durable, never
    /// dispatched (the paper's §V-A recovery window).
    CrashMiddlewareAfterFlush {
        /// When the fail point is armed.
        at: Duration,
    },
    /// A successor coordinator takes over at `at`: data sources abort their
    /// unprepared branches (disconnect handling), the successor shares the
    /// durable commit log, replays it over the in-doubt branches and starts
    /// serving new transactions.
    FailoverMiddleware {
        /// When the failover completes.
        at: Duration,
    },
    /// Both directions between `a` and `b` are blocked during `[at, until)`.
    Partition {
        /// Partition start.
        at: Duration,
        /// Heal instant (exclusive end of the window).
        until: Duration,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Only the `from → to` direction is blocked during `[at, until)` —
    /// an asymmetric partition (replies still flow).
    PartitionOneWay {
        /// Partition start.
        at: Duration,
        /// Heal instant.
        until: Duration,
        /// Blocked sender.
        from: NodeId,
        /// Unreachable receiver.
        to: NodeId,
    },
    /// Every message between `a` and `b` pays `extra` (plus up to `jitter`,
    /// drawn per message — which reorders messages relative to each other)
    /// during `[at, until)`.
    LatencyStorm {
        /// Storm start.
        at: Duration,
        /// Storm end.
        until: Duration,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Deterministic extra one-way delay.
        extra: Duration,
        /// Upper bound of the per-message uniform jitter.
        jitter: Duration,
    },
    /// Each fire-and-forget notification on `from → to` is dropped with
    /// `probability` during `[at, until)`.
    DropNotifications {
        /// Window start.
        at: Duration,
        /// Window end.
        until: Duration,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Each fire-and-forget notification on `from → to` is delivered twice
    /// with `probability` during `[at, until)`.
    DuplicateNotifications {
        /// Window start.
        at: Duration,
        /// Window end.
        until: Duration,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Per-message duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// From `at` on, `node`'s local clock drifts by `drift_ppm` parts per
    /// million relative to true (virtual) time. Purely observational: the
    /// commit protocol never reads node-local clocks, and the scenario's
    /// green invariants demonstrate exactly that; the trace records
    /// node-local timestamps so the skew is visible.
    ClockSkewRamp {
        /// When the drift starts.
        at: Duration,
        /// The drifting node.
        node: NodeId,
        /// Drift rate in parts per million (positive = fast clock).
        drift_ppm: i64,
    },
}

impl FaultEvent {
    /// The instant this event first takes effect.
    pub fn at(&self) -> Duration {
        match self {
            FaultEvent::CrashDataSource { at, .. }
            | FaultEvent::RestartDataSource { at, .. }
            | FaultEvent::CrashMiddleware { at }
            | FaultEvent::CrashMiddlewareAfterFlush { at }
            | FaultEvent::FailoverMiddleware { at }
            | FaultEvent::Partition { at, .. }
            | FaultEvent::PartitionOneWay { at, .. }
            | FaultEvent::LatencyStorm { at, .. }
            | FaultEvent::DropNotifications { at, .. }
            | FaultEvent::DuplicateNotifications { at, .. }
            | FaultEvent::ClockSkewRamp { at, .. } => *at,
        }
    }

    /// Whether the harness controller (rather than the network injector)
    /// applies this event.
    pub fn is_node_event(&self) -> bool {
        matches!(
            self,
            FaultEvent::CrashDataSource { .. }
                | FaultEvent::RestartDataSource { .. }
                | FaultEvent::CrashMiddleware { .. }
                | FaultEvent::CrashMiddlewareAfterFlush { .. }
                | FaultEvent::FailoverMiddleware { .. }
                | FaultEvent::ClockSkewRamp { .. }
        )
    }
}

/// A declarative fault timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled events, in no particular order (consumers sort by
    /// [`FaultEvent::at`]).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (a plain, fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style push.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The node-level events, sorted by activation time (ties keep push
    /// order, so schedules are unambiguous).
    pub fn node_events(&self) -> Vec<FaultEvent> {
        let mut events: Vec<FaultEvent> = self
            .events
            .iter()
            .filter(|e| e.is_node_event())
            .cloned()
            .collect();
        events.sort_by_key(|e| e.at());
        events
    }

    /// The latest instant at which any fault is still active — the "all
    /// faults healed" horizon the liveness checker builds on.
    pub fn last_fault_instant(&self) -> Duration {
        self.events
            .iter()
            .map(|e| match e {
                FaultEvent::Partition { until, .. }
                | FaultEvent::PartitionOneWay { until, .. }
                | FaultEvent::LatencyStorm { until, .. }
                | FaultEvent::DropNotifications { until, .. }
                | FaultEvent::DuplicateNotifications { until, .. } => *until,
                other => other.at(),
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Generate a random — but fully deterministic for a given `seed` —
    /// schedule: every windowed fault heals and every crashed node restarts
    /// before `cfg.horizon`, so liveness is checkable.
    ///
    /// Horizons below 4 s are treated as 4 s: fault windows need room for a
    /// ≥0.5 s start offset and a ≥0.5 s duration, so there is a floor under
    /// which no meaningful schedule exists.
    pub fn random(seed: u64, cfg: &RandomFaultConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut events = Vec::new();
        let dm = NodeId::middleware(0);
        let horizon_ms = (cfg.horizon.as_millis() as u64).max(4_000);
        // Keep a tail of the run fault-free so in-flight work can drain.
        let active_ms = horizon_ms.saturating_mul(6) / 10;
        let rand_window = |rng: &mut StdRng| {
            let start = rng.gen_range(500..active_ms / 2);
            let len = rng.gen_range(500..=active_ms / 4);
            (
                Duration::from_millis(start),
                Duration::from_millis((start + len).min(active_ms)),
            )
        };
        for _ in 0..cfg.faults {
            let ds = rng.gen_range(0..cfg.data_sources);
            let node = NodeId::data_source(ds);
            match rng.gen_range(0..5u32) {
                0 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::CrashDataSource { at, ds });
                    events.push(FaultEvent::RestartDataSource { at: until, ds });
                }
                1 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::Partition {
                        at,
                        until,
                        a: dm,
                        b: node,
                    });
                }
                2 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::LatencyStorm {
                        at,
                        until,
                        a: dm,
                        b: node,
                        extra: Duration::from_millis(rng.gen_range(20..200)),
                        jitter: Duration::from_millis(rng.gen_range(0..50)),
                    });
                }
                3 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::DropNotifications {
                        at,
                        until,
                        from: node,
                        to: dm,
                        probability: rng.gen_range(0.05..0.4),
                    });
                }
                _ => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::PartitionOneWay {
                        at,
                        until,
                        from: node,
                        to: dm,
                    });
                }
            }
        }
        Self { events }
    }
}

/// Parameters for [`FaultSchedule::random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFaultConfig {
    /// Number of data sources faults may target.
    pub data_sources: u32,
    /// How many faults to draw.
    pub faults: u32,
    /// Run horizon: every fault heals comfortably before it. Values below
    /// 4 s are clamped up to 4 s (see [`FaultSchedule::random`]).
    pub horizon: Duration,
}

impl Default for RandomFaultConfig {
    fn default() -> Self {
        Self {
            data_sources: 3,
            faults: 4,
            horizon: Duration::from_secs(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_events_sort_by_time() {
        let s = FaultSchedule::new()
            .with(FaultEvent::RestartDataSource {
                at: Duration::from_secs(8),
                ds: 1,
            })
            .with(FaultEvent::CrashDataSource {
                at: Duration::from_secs(3),
                ds: 1,
            })
            .with(FaultEvent::Partition {
                at: Duration::from_secs(1),
                until: Duration::from_secs(2),
                a: NodeId::middleware(0),
                b: NodeId::data_source(0),
            });
        let node = s.node_events();
        assert_eq!(node.len(), 2);
        assert_eq!(node[0].at(), Duration::from_secs(3));
        assert_eq!(node[1].at(), Duration::from_secs(8));
        assert_eq!(s.last_fault_instant(), Duration::from_secs(8));
    }

    #[test]
    fn random_schedule_tolerates_tiny_horizons() {
        // Regression: horizons below ~3.4s used to make the window sampler
        // panic on an empty range; they are clamped to 4s instead.
        for horizon_secs in [0, 1, 2, 3] {
            let schedule = FaultSchedule::random(
                5,
                &RandomFaultConfig {
                    data_sources: 3,
                    faults: 2,
                    horizon: Duration::from_secs(horizon_secs),
                },
            );
            assert!(!schedule.events.is_empty());
            assert!(schedule.last_fault_instant() <= Duration::from_secs(4));
        }
    }

    #[test]
    fn random_schedules_are_deterministic_and_heal() {
        let cfg = RandomFaultConfig::default();
        let a = FaultSchedule::random(11, &cfg);
        let b = FaultSchedule::random(11, &cfg);
        let c = FaultSchedule::random(12, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(!a.events.is_empty());
        assert!(a.last_fault_instant() < cfg.horizon);
        // Every crash has a matching restart.
        let crashes = a
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::CrashDataSource { .. }))
            .count();
        let restarts = a
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::RestartDataSource { .. }))
            .count();
        assert_eq!(crashes, restarts);
    }
}
