//! The fault-schedule DSL.
//!
//! A [`FaultSchedule`] is a declarative timeline of faults, written either
//! explicitly (every preset in [`crate::scenarios`] is one) or generated from
//! a seed with [`FaultSchedule::random`]. Link-level events (partitions,
//! latency storms, notification loss) compile into the
//! [`crate::ScheduleInjector`] consulted by the network on every message;
//! node-level events (crashes, restarts, failover, clock skew) are applied by
//! the harness's controller task at their scheduled instants.
//!
//! All instants are virtual-time offsets from the start of the run, and every
//! windowed fault carries its own heal time — the whole failure history is
//! known up front, which is what makes runs replayable and lets the injector
//! answer "when does this partition heal?" without hidden state.

use std::time::Duration;

use geotp_net::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Data source `ds` crashes at `at`: volatile state is lost, blocked
    /// lock waiters are kicked out, requests fail until restart.
    CrashDataSource {
        /// When the crash happens.
        at: Duration,
        /// Index of the data source.
        ds: u32,
    },
    /// Data source `ds` restarts at `at`: durable-prepared branches survive
    /// (recovered from the WAL via the XA state machine), everything else is
    /// rolled back.
    RestartDataSource {
        /// When the restart happens.
        at: Duration,
        /// Index of the data source.
        ds: u32,
    },
    /// The coordinator process dies at `at`. In-flight transactions get no
    /// outcome; branches stay in doubt until failover.
    CrashMiddleware {
        /// When the crash happens.
        at: Duration,
    },
    /// Arm the one-shot fail point at `at`: the coordinator crashes right
    /// after its *next* commit-log flush — decision durable, never
    /// dispatched (the paper's §V-A recovery window).
    CrashMiddlewareAfterFlush {
        /// When the fail point is armed.
        at: Duration,
    },
    /// A successor coordinator takes over at `at`: data sources abort their
    /// unprepared branches (disconnect handling), the successor shares the
    /// durable commit log, replays it over the in-doubt branches and starts
    /// serving new transactions.
    FailoverMiddleware {
        /// When the failover completes.
        at: Duration,
    },
    /// Multi-coordinator tier: coordinator `dm` crashes at `at`. Its lease
    /// lapses (or the crash is observed directly), the cluster supervisor
    /// fences its epoch and a surviving peer adopts its in-doubt branches —
    /// no scripted failover event needed.
    CrashCoordinator {
        /// When the crash happens.
        at: Duration,
        /// Index of the coordinator slot.
        dm: u32,
    },
    /// Multi-coordinator tier: arm the §V-A fail point on coordinator `dm`
    /// at `at` — it crashes right after its *next* commit-log flush, leaving
    /// a durable decision for the adopting peer to discover.
    CrashCoordinatorAfterFlush {
        /// When the fail point is armed.
        at: Duration,
        /// Index of the coordinator slot.
        dm: u32,
    },
    /// Multi-coordinator tier: a successor process restarts slot `dm` at
    /// `at` — it re-registers for a fresh epoch (above any fence), shares the
    /// slot's durable commit log, recovers its own in-doubt branches and
    /// resumes serving (the router re-homes the slot's sessions). With every
    /// coordinator dead this is the tier's *cold* recovery entry point.
    RestartCoordinator {
        /// When the restart happens.
        at: Duration,
        /// Index of the coordinator slot.
        dm: u32,
    },
    /// Both directions between `a` and `b` are blocked during `[at, until)`.
    Partition {
        /// Partition start.
        at: Duration,
        /// Heal instant (exclusive end of the window).
        until: Duration,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Only the `from → to` direction is blocked during `[at, until)` —
    /// an asymmetric partition (replies still flow).
    PartitionOneWay {
        /// Partition start.
        at: Duration,
        /// Heal instant.
        until: Duration,
        /// Blocked sender.
        from: NodeId,
        /// Unreachable receiver.
        to: NodeId,
    },
    /// Every message between `a` and `b` pays `extra` (plus up to `jitter`,
    /// drawn per message — which reorders messages relative to each other)
    /// during `[at, until)`.
    LatencyStorm {
        /// Storm start.
        at: Duration,
        /// Storm end.
        until: Duration,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Deterministic extra one-way delay.
        extra: Duration,
        /// Upper bound of the per-message uniform jitter.
        jitter: Duration,
    },
    /// Each fire-and-forget notification on `from → to` is dropped with
    /// `probability` during `[at, until)`.
    DropNotifications {
        /// Window start.
        at: Duration,
        /// Window end.
        until: Duration,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Each fire-and-forget notification on `from → to` is delivered twice
    /// with `probability` during `[at, until)`.
    DuplicateNotifications {
        /// Window start.
        at: Duration,
        /// Window end.
        until: Duration,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Per-message duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// From `at` on, `node`'s local clock drifts by `drift_ppm` parts per
    /// million relative to true (virtual) time. Purely observational: the
    /// commit protocol never reads node-local clocks, and the scenario's
    /// green invariants demonstrate exactly that; the trace records
    /// node-local timestamps so the skew is visible.
    ClockSkewRamp {
        /// When the drift starts.
        at: Duration,
        /// The drifting node.
        node: NodeId,
        /// Drift rate in parts per million (positive = fast clock).
        drift_ppm: i64,
    },
}

impl FaultEvent {
    /// The instant this event first takes effect.
    pub fn at(&self) -> Duration {
        match self {
            FaultEvent::CrashDataSource { at, .. }
            | FaultEvent::RestartDataSource { at, .. }
            | FaultEvent::CrashMiddleware { at }
            | FaultEvent::CrashMiddlewareAfterFlush { at }
            | FaultEvent::FailoverMiddleware { at }
            | FaultEvent::CrashCoordinator { at, .. }
            | FaultEvent::CrashCoordinatorAfterFlush { at, .. }
            | FaultEvent::RestartCoordinator { at, .. }
            | FaultEvent::Partition { at, .. }
            | FaultEvent::PartitionOneWay { at, .. }
            | FaultEvent::LatencyStorm { at, .. }
            | FaultEvent::DropNotifications { at, .. }
            | FaultEvent::DuplicateNotifications { at, .. }
            | FaultEvent::ClockSkewRamp { at, .. } => *at,
        }
    }

    /// Whether the harness controller (rather than the network injector)
    /// applies this event.
    pub fn is_node_event(&self) -> bool {
        matches!(
            self,
            FaultEvent::CrashDataSource { .. }
                | FaultEvent::RestartDataSource { .. }
                | FaultEvent::CrashMiddleware { .. }
                | FaultEvent::CrashMiddlewareAfterFlush { .. }
                | FaultEvent::FailoverMiddleware { .. }
                | FaultEvent::CrashCoordinator { .. }
                | FaultEvent::CrashCoordinatorAfterFlush { .. }
                | FaultEvent::RestartCoordinator { .. }
                | FaultEvent::ClockSkewRamp { .. }
        )
    }
}

/// A declarative fault timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled events, in no particular order (consumers sort by
    /// [`FaultEvent::at`]).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (a plain, fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style push.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The node-level events, sorted by activation time (ties keep push
    /// order, so schedules are unambiguous).
    pub fn node_events(&self) -> Vec<FaultEvent> {
        let mut events: Vec<FaultEvent> = self
            .events
            .iter()
            .filter(|e| e.is_node_event())
            .cloned()
            .collect();
        events.sort_by_key(|e| e.at());
        events
    }

    /// The latest instant at which any fault is still active — the "all
    /// faults healed" horizon the liveness checker builds on.
    pub fn last_fault_instant(&self) -> Duration {
        self.events
            .iter()
            .map(|e| match e {
                FaultEvent::Partition { until, .. }
                | FaultEvent::PartitionOneWay { until, .. }
                | FaultEvent::LatencyStorm { until, .. }
                | FaultEvent::DropNotifications { until, .. }
                | FaultEvent::DuplicateNotifications { until, .. } => *until,
                other => other.at(),
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Render the schedule as an explicit, replayable timeline: one line per
    /// event, microsecond-precision, round-tripping losslessly through
    /// [`FaultSchedule::parse_timeline`]. This is the artifact the schedule
    /// shrinker emits — a minimized repro anyone can re-run without the
    /// original seed.
    pub fn to_timeline(&self) -> String {
        let mut out = String::from("# geotp-chaos fault timeline v1\n");
        let us = |d: &Duration| d.as_micros();
        for event in &self.events {
            let line = match event {
                FaultEvent::CrashDataSource { at, ds } => {
                    format!("crash_ds at_us={} ds={ds}", us(at))
                }
                FaultEvent::RestartDataSource { at, ds } => {
                    format!("restart_ds at_us={} ds={ds}", us(at))
                }
                FaultEvent::CrashMiddleware { at } => {
                    format!("crash_middleware at_us={}", us(at))
                }
                FaultEvent::CrashMiddlewareAfterFlush { at } => {
                    format!("crash_middleware_after_flush at_us={}", us(at))
                }
                FaultEvent::FailoverMiddleware { at } => {
                    format!("failover_middleware at_us={}", us(at))
                }
                FaultEvent::CrashCoordinator { at, dm } => {
                    format!("crash_coordinator at_us={} dm={dm}", us(at))
                }
                FaultEvent::CrashCoordinatorAfterFlush { at, dm } => {
                    format!("crash_coordinator_after_flush at_us={} dm={dm}", us(at))
                }
                FaultEvent::RestartCoordinator { at, dm } => {
                    format!("restart_coordinator at_us={} dm={dm}", us(at))
                }
                FaultEvent::Partition { at, until, a, b } => {
                    format!("partition at_us={} until_us={} a={a} b={b}", us(at), us(until))
                }
                FaultEvent::PartitionOneWay {
                    at,
                    until,
                    from,
                    to,
                } => format!(
                    "partition_oneway at_us={} until_us={} from={from} to={to}",
                    us(at),
                    us(until)
                ),
                FaultEvent::LatencyStorm {
                    at,
                    until,
                    a,
                    b,
                    extra,
                    jitter,
                } => format!(
                    "latency_storm at_us={} until_us={} a={a} b={b} extra_us={} jitter_us={}",
                    us(at),
                    us(until),
                    us(extra),
                    us(jitter)
                ),
                FaultEvent::DropNotifications {
                    at,
                    until,
                    from,
                    to,
                    probability,
                } => format!(
                    "drop_notifications at_us={} until_us={} from={from} to={to} p={probability}",
                    us(at),
                    us(until)
                ),
                FaultEvent::DuplicateNotifications {
                    at,
                    until,
                    from,
                    to,
                    probability,
                } => format!(
                    "duplicate_notifications at_us={} until_us={} from={from} to={to} p={probability}",
                    us(at),
                    us(until)
                ),
                FaultEvent::ClockSkewRamp { at, node, drift_ppm } => format!(
                    "clock_skew at_us={} node={node} drift_ppm={drift_ppm}",
                    us(at)
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parse a timeline produced by [`FaultSchedule::to_timeline`] (blank
    /// lines and `#` comments ignored). Errors name the offending line.
    pub fn parse_timeline(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (number, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            events.push(
                parse_timeline_event(line)
                    .map_err(|e| format!("timeline line {}: {e} ({line:?})", number + 1))?,
            );
        }
        Ok(Self { events })
    }

    /// Generate a random — but fully deterministic for a given `seed` —
    /// schedule: every windowed fault heals and every crashed node restarts
    /// before `cfg.horizon`, so liveness is checkable.
    ///
    /// Horizons below 4 s are treated as 4 s: fault windows need room for a
    /// ≥0.5 s start offset and a ≥0.5 s duration, so there is a floor under
    /// which no meaningful schedule exists.
    pub fn random(seed: u64, cfg: &RandomFaultConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut events = Vec::new();
        let dm = NodeId::middleware(0);
        let horizon_ms = (cfg.horizon.as_millis() as u64).max(4_000);
        // Keep a tail of the run fault-free so in-flight work can drain.
        let active_ms = horizon_ms.saturating_mul(6) / 10;
        let rand_window = |rng: &mut StdRng| {
            let start = rng.gen_range(500..active_ms / 2);
            let len = rng.gen_range(500..=active_ms / 4);
            (
                Duration::from_millis(start),
                Duration::from_millis((start + len).min(active_ms)),
            )
        };
        for _ in 0..cfg.faults {
            let ds = rng.gen_range(0..cfg.data_sources);
            let node = NodeId::data_source(ds);
            match rng.gen_range(0..5u32) {
                0 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::CrashDataSource { at, ds });
                    events.push(FaultEvent::RestartDataSource { at: until, ds });
                }
                1 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::Partition {
                        at,
                        until,
                        a: dm,
                        b: node,
                    });
                }
                2 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::LatencyStorm {
                        at,
                        until,
                        a: dm,
                        b: node,
                        extra: Duration::from_millis(rng.gen_range(20..200)),
                        jitter: Duration::from_millis(rng.gen_range(0..50)),
                    });
                }
                3 => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::DropNotifications {
                        at,
                        until,
                        from: node,
                        to: dm,
                        probability: rng.gen_range(0.05..0.4),
                    });
                }
                _ => {
                    let (at, until) = rand_window(&mut rng);
                    events.push(FaultEvent::PartitionOneWay {
                        at,
                        until,
                        from: node,
                        to: dm,
                    });
                }
            }
        }
        Self { events }
    }
}

/// One `key=value` field extractor for [`FaultSchedule::parse_timeline`].
fn timeline_field<'a>(fields: &'a [&str], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find_map(|f| f.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
        .ok_or_else(|| format!("missing field {key}"))
}

fn parse_us(fields: &[&str], key: &str) -> Result<Duration, String> {
    let value = timeline_field(fields, key)?;
    value
        .parse::<u64>()
        .map(Duration::from_micros)
        .map_err(|_| format!("field {key} is not a microsecond count"))
}

fn parse_num<T: std::str::FromStr>(fields: &[&str], key: &str) -> Result<T, String> {
    timeline_field(fields, key)?
        .parse::<T>()
        .map_err(|_| format!("field {key} has an invalid value"))
}

fn parse_node(fields: &[&str], key: &str) -> Result<NodeId, String> {
    let value = timeline_field(fields, key)?;
    let (ctor, index): (fn(u32) -> NodeId, &str) = if let Some(i) = value.strip_prefix("dm") {
        (NodeId::middleware, i)
    } else if let Some(i) = value.strip_prefix("ds") {
        (NodeId::data_source, i)
    } else if let Some(i) = value.strip_prefix("ctl") {
        (NodeId::control, i)
    } else if let Some(i) = value.strip_prefix("client") {
        (NodeId::client, i)
    } else {
        return Err(format!(
            "field {key} is not a node id (dm<N>/ds<N>/ctl<N>/client<N>)"
        ));
    };
    index
        .parse::<u32>()
        .map(ctor)
        .map_err(|_| format!("field {key} has a non-numeric node index"))
}

fn parse_timeline_event(line: &str) -> Result<FaultEvent, String> {
    let mut parts = line.split_whitespace();
    let kind = parts.next().ok_or("empty event")?;
    let fields: Vec<&str> = parts.collect();
    let event = match kind {
        "crash_ds" => FaultEvent::CrashDataSource {
            at: parse_us(&fields, "at_us")?,
            ds: parse_num(&fields, "ds")?,
        },
        "restart_ds" => FaultEvent::RestartDataSource {
            at: parse_us(&fields, "at_us")?,
            ds: parse_num(&fields, "ds")?,
        },
        "crash_middleware" => FaultEvent::CrashMiddleware {
            at: parse_us(&fields, "at_us")?,
        },
        "crash_middleware_after_flush" => FaultEvent::CrashMiddlewareAfterFlush {
            at: parse_us(&fields, "at_us")?,
        },
        "failover_middleware" => FaultEvent::FailoverMiddleware {
            at: parse_us(&fields, "at_us")?,
        },
        "crash_coordinator" => FaultEvent::CrashCoordinator {
            at: parse_us(&fields, "at_us")?,
            dm: parse_num(&fields, "dm")?,
        },
        "crash_coordinator_after_flush" => FaultEvent::CrashCoordinatorAfterFlush {
            at: parse_us(&fields, "at_us")?,
            dm: parse_num(&fields, "dm")?,
        },
        "restart_coordinator" => FaultEvent::RestartCoordinator {
            at: parse_us(&fields, "at_us")?,
            dm: parse_num(&fields, "dm")?,
        },
        "partition" => FaultEvent::Partition {
            at: parse_us(&fields, "at_us")?,
            until: parse_us(&fields, "until_us")?,
            a: parse_node(&fields, "a")?,
            b: parse_node(&fields, "b")?,
        },
        "partition_oneway" => FaultEvent::PartitionOneWay {
            at: parse_us(&fields, "at_us")?,
            until: parse_us(&fields, "until_us")?,
            from: parse_node(&fields, "from")?,
            to: parse_node(&fields, "to")?,
        },
        "latency_storm" => FaultEvent::LatencyStorm {
            at: parse_us(&fields, "at_us")?,
            until: parse_us(&fields, "until_us")?,
            a: parse_node(&fields, "a")?,
            b: parse_node(&fields, "b")?,
            extra: parse_us(&fields, "extra_us")?,
            jitter: parse_us(&fields, "jitter_us")?,
        },
        "drop_notifications" => FaultEvent::DropNotifications {
            at: parse_us(&fields, "at_us")?,
            until: parse_us(&fields, "until_us")?,
            from: parse_node(&fields, "from")?,
            to: parse_node(&fields, "to")?,
            probability: parse_num(&fields, "p")?,
        },
        "duplicate_notifications" => FaultEvent::DuplicateNotifications {
            at: parse_us(&fields, "at_us")?,
            until: parse_us(&fields, "until_us")?,
            from: parse_node(&fields, "from")?,
            to: parse_node(&fields, "to")?,
            probability: parse_num(&fields, "p")?,
        },
        "clock_skew" => FaultEvent::ClockSkewRamp {
            at: parse_us(&fields, "at_us")?,
            node: parse_node(&fields, "node")?,
            drift_ppm: parse_num(&fields, "drift_ppm")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(event)
}

/// Parameters for [`FaultSchedule::random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFaultConfig {
    /// Number of data sources faults may target.
    pub data_sources: u32,
    /// How many faults to draw.
    pub faults: u32,
    /// Run horizon: every fault heals comfortably before it. Values below
    /// 4 s are clamped up to 4 s (see [`FaultSchedule::random`]).
    pub horizon: Duration,
}

impl Default for RandomFaultConfig {
    fn default() -> Self {
        Self {
            data_sources: 3,
            faults: 4,
            horizon: Duration::from_secs(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_events_sort_by_time() {
        let s = FaultSchedule::new()
            .with(FaultEvent::RestartDataSource {
                at: Duration::from_secs(8),
                ds: 1,
            })
            .with(FaultEvent::CrashDataSource {
                at: Duration::from_secs(3),
                ds: 1,
            })
            .with(FaultEvent::Partition {
                at: Duration::from_secs(1),
                until: Duration::from_secs(2),
                a: NodeId::middleware(0),
                b: NodeId::data_source(0),
            });
        let node = s.node_events();
        assert_eq!(node.len(), 2);
        assert_eq!(node[0].at(), Duration::from_secs(3));
        assert_eq!(node[1].at(), Duration::from_secs(8));
        assert_eq!(s.last_fault_instant(), Duration::from_secs(8));
    }

    #[test]
    fn random_schedule_tolerates_tiny_horizons() {
        // Regression: horizons below ~3.4s used to make the window sampler
        // panic on an empty range; they are clamped to 4s instead.
        for horizon_secs in [0, 1, 2, 3] {
            let schedule = FaultSchedule::random(
                5,
                &RandomFaultConfig {
                    data_sources: 3,
                    faults: 2,
                    horizon: Duration::from_secs(horizon_secs),
                },
            );
            assert!(!schedule.events.is_empty());
            assert!(schedule.last_fault_instant() <= Duration::from_secs(4));
        }
    }

    #[test]
    fn timeline_round_trips_every_event_kind() {
        let dm = NodeId::middleware(0);
        let ds = NodeId::data_source;
        let ms = Duration::from_millis;
        let schedule = FaultSchedule::new()
            .with(FaultEvent::CrashDataSource {
                at: ms(3000),
                ds: 1,
            })
            .with(FaultEvent::RestartDataSource {
                at: ms(8000),
                ds: 1,
            })
            .with(FaultEvent::CrashMiddleware { at: ms(100) })
            .with(FaultEvent::CrashMiddlewareAfterFlush { at: ms(2500) })
            .with(FaultEvent::FailoverMiddleware { at: ms(5000) })
            .with(FaultEvent::CrashCoordinator {
                at: ms(2000),
                dm: 1,
            })
            .with(FaultEvent::CrashCoordinatorAfterFlush {
                at: ms(2250),
                dm: 0,
            })
            .with(FaultEvent::RestartCoordinator {
                at: ms(6000),
                dm: 1,
            })
            .with(FaultEvent::Partition {
                at: ms(1000),
                until: ms(7000),
                a: NodeId::middleware(1),
                b: NodeId::control(0),
            })
            .with(FaultEvent::Partition {
                at: ms(2000),
                until: ms(6000),
                a: dm,
                b: ds(2),
            })
            .with(FaultEvent::PartitionOneWay {
                at: ms(2000),
                until: ms(5000),
                from: ds(1),
                to: dm,
            })
            .with(FaultEvent::LatencyStorm {
                at: ms(1000),
                until: ms(9000),
                a: dm,
                b: ds(0),
                extra: ms(150),
                jitter: ms(50),
            })
            .with(FaultEvent::DropNotifications {
                at: ms(1000),
                until: ms(8000),
                from: ds(0),
                to: dm,
                probability: 0.325,
            })
            .with(FaultEvent::DuplicateNotifications {
                at: ms(1000),
                until: ms(8000),
                from: ds(2),
                to: dm,
                probability: 0.5,
            })
            .with(FaultEvent::ClockSkewRamp {
                at: ms(1000),
                node: ds(2),
                drift_ppm: -250,
            });
        let timeline = schedule.to_timeline();
        let parsed = FaultSchedule::parse_timeline(&timeline).expect("round trip");
        assert_eq!(parsed, schedule);
        // A random seeded schedule round-trips too (the shrinker's input).
        let random = FaultSchedule::random(9, &RandomFaultConfig::default());
        let parsed = FaultSchedule::parse_timeline(&random.to_timeline()).unwrap();
        assert_eq!(parsed, random);
    }

    #[test]
    fn timeline_parse_reports_bad_lines() {
        assert!(FaultSchedule::parse_timeline("warp_core_breach at_us=1").is_err());
        assert!(
            FaultSchedule::parse_timeline("crash_ds ds=1").is_err(),
            "missing at_us"
        );
        assert!(
            FaultSchedule::parse_timeline("partition at_us=1 until_us=2 a=dm0 b=mars3").is_err()
        );
        // Comments and blank lines are fine.
        let ok = FaultSchedule::parse_timeline("# comment\n\ncrash_ds at_us=5 ds=0\n").unwrap();
        assert_eq!(ok.events.len(), 1);
    }

    #[test]
    fn random_schedules_are_deterministic_and_heal() {
        let cfg = RandomFaultConfig::default();
        let a = FaultSchedule::random(11, &cfg);
        let b = FaultSchedule::random(11, &cfg);
        let c = FaultSchedule::random(12, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(!a.events.is_empty());
        assert!(a.last_fault_instant() < cfg.horizon);
        // Every crash has a matching restart.
        let crashes = a
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::CrashDataSource { .. }))
            .count();
        let restarts = a
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::RestartDataSource { .. }))
            .count();
        assert_eq!(crashes, restarts);
    }
}
