//! MVCC and group-commit failure drills.
//!
//! These presets exercise the storage tier's versioned read path and the
//! WAL's group-commit window under the same five checkers as the classic
//! drills. They are deliberately *not* part of [`crate::Scenario::all`]:
//! the legacy presets pin the default strict-2PL engine byte-identically,
//! while everything here opts into the new `EngineConfig` knobs
//! (`isolation`, `group_commit_window`) and the coordinator's
//! snapshot-read fast path.
//!
//! * [`MvccScenario::LongReadersSnapshot`] — long multi-round read-only
//!   scans (unannotated, so the coordinator commits them via the
//!   snapshot-read fast path) against an OLTP write stream on disjoint
//!   keys, under `SnapshotRead`. Readers acquire **zero** locks: the run's
//!   `storage.lock_wait` histogram stays empty, which the sweep asserts.
//! * [`MvccScenario::LongReaders2pl`] — the same workload under the legacy
//!   `Serializable2pl` engine, as the contrast run: the same scans *do*
//!   contend there, so the lock-wait histogram is non-empty.
//! * [`MvccScenario::WriteSkewSnapshot`] / [`MvccScenario::WriteSkewReadCommitted`]
//!   — a write-skew-prone hot-pair workload under the deliberately weak
//!   isolation modes; the serializability checker must convict at least
//!   one seed (the adversarial leg of the checker suite).
//! * [`MvccScenario::GroupCommitCrashWindow`] — balance transfers with a
//!   10 ms group-commit window and a data source crashing mid-traffic, so
//!   crashes land *between a commit's WAL append and the deferred group
//!   flush* (§V-A at the storage tier). Unacknowledged commits must roll
//!   back on recovery; all five checkers stay green.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use geotp_datasource::DataSource;
use geotp_middleware::{ClientOp, GlobalKey, Partitioner, TransactionSpec};
use geotp_storage::{IsolationLevel, Row};
use rand::rngs::StdRng;
use rand::Rng;

use crate::harness::{run_scenario_with, ChaosConfig, ChaosReport};
use crate::schedule::{FaultEvent, FaultSchedule};
use crate::workload::{ChaosWorkload, TransferWorkload, CHAOS_TABLE};

/// Long read-only scans interleaved with an OLTP write stream that never
/// contends with itself.
///
/// Every `reader_every`-th transaction is a *reader*: an unannotated,
/// multi-round, read-only scan of the first `scan_window` rows (all on
/// ds0), holding its snapshot — or, under 2PL, its shared locks — across a
/// client round trip plus think time. Every other transaction is a
/// *writer*: `+1` then `−1` on one key from a monotonically advancing
/// cursor, so concurrent writers always touch distinct keys and the only
/// possible lock contention is reader-vs-writer. Every row therefore stays
/// at its initial balance, which the consistency condition checks.
#[derive(Debug)]
pub struct LongReaderOltpWorkload {
    /// Data sources in the deployment.
    pub nodes: u32,
    /// Rows per data source.
    pub records_per_node: u64,
    /// Initial integer balance of every row.
    pub initial_balance: i64,
    /// Rows 0..scan_window (on ds0) that each reader scans.
    pub scan_window: u64,
    /// Every n-th transaction is a reader.
    pub reader_every: u64,
    txn_counter: Cell<u64>,
    writer_cursor: Cell<u64>,
}

impl LongReaderOltpWorkload {
    /// The drill-scale mix: 3 sources × 64 rows, a 32-row scan window,
    /// every 3rd transaction a reader.
    pub fn drill_scale(nodes: u32) -> Self {
        Self {
            nodes,
            records_per_node: 64,
            initial_balance: 100,
            scan_window: 32,
            reader_every: 3,
            txn_counter: Cell::new(0),
            writer_cursor: Cell::new(0),
        }
    }
}

impl ChaosWorkload for LongReaderOltpWorkload {
    fn name(&self) -> &'static str {
        "long_reader_oltp"
    }

    fn partitioner(&self) -> Partitioner {
        Partitioner::Range {
            rows_per_node: self.records_per_node,
            nodes: self.nodes,
        }
    }

    fn load(&self, sources: &[Rc<DataSource>]) {
        let partitioner = self.partitioner();
        for row in 0..self.records_per_node * self.nodes as u64 {
            let key = GlobalKey::new(CHAOS_TABLE, row);
            let ds = partitioner.route(key) as usize;
            sources[ds].load(key.storage_key(), Row::int(self.initial_balance));
        }
    }

    fn next_spec(&self, _rng: &mut StdRng) -> TransactionSpec {
        let n = self.txn_counter.get();
        self.txn_counter.set(n + 1);
        if n.is_multiple_of(self.reader_every) {
            // A long reader: two statement rounds covering the scan window,
            // unannotated so the coordinator's snapshot-read fast path (when
            // enabled) commits it without prepare or WAL flush.
            let half = self.scan_window / 2;
            let read = |row| ClientOp::Read(GlobalKey::new(CHAOS_TABLE, row));
            TransactionSpec::multi_round(vec![
                (0..half).map(read).collect(),
                (half..self.scan_window).map(read).collect(),
            ])
            .without_annotation()
        } else {
            // A writer on the next cursor key: concurrent writers always
            // hold distinct keys, so writer-writer lock waits are impossible
            // and any lock contention is reader-vs-writer by construction.
            let total = self.records_per_node * self.nodes as u64;
            let key = GlobalKey::new(CHAOS_TABLE, self.writer_cursor.get() % total);
            self.writer_cursor.set(self.writer_cursor.get() + 1);
            TransactionSpec::single_round(vec![ClientOp::add(key, 1), ClientOp::add(key, -1)])
        }
    }

    fn consistency_violations(&self, sources: &[Rc<DataSource>]) -> Vec<String> {
        let mut violations = Vec::new();
        let partitioner = self.partitioner();
        for row in 0..self.records_per_node * self.nodes as u64 {
            let key = GlobalKey::new(CHAOS_TABLE, row);
            let ds = partitioner.route(key) as usize;
            let balance = sources[ds]
                .engine()
                .peek(key.storage_key())
                .and_then(|r| r.int_value());
            if balance != Some(self.initial_balance) {
                violations.push(format!(
                    "long_reader_oltp: row {row} is {balance:?}, expected {} \
                     (every writer nets zero)",
                    self.initial_balance
                ));
            }
        }
        violations
    }
}

/// A write-skew-prone workload: every transaction plain-reads a hot pair of
/// rows and then increments exactly one of them. Two overlapping
/// transactions that write *different* halves of the pair form an
/// rw-antidependency cycle under snapshot or read-committed reads — the
/// textbook anomaly strict 2PL forbids — so the serializability checker
/// must convict runs under the weak isolation modes.
#[derive(Debug)]
pub struct WriteSkewWorkload {
    /// Data sources in the deployment (the hot pair lives on ds0).
    pub nodes: u32,
    /// Rows per data source.
    pub records_per_node: u64,
}

impl WriteSkewWorkload {
    /// Hot pair = rows 0 and 1 on ds0.
    pub fn drill_scale(nodes: u32) -> Self {
        Self {
            nodes,
            records_per_node: 64,
        }
    }
}

impl ChaosWorkload for WriteSkewWorkload {
    fn name(&self) -> &'static str {
        "write_skew"
    }

    fn partitioner(&self) -> Partitioner {
        Partitioner::Range {
            rows_per_node: self.records_per_node,
            nodes: self.nodes,
        }
    }

    fn load(&self, sources: &[Rc<DataSource>]) {
        let partitioner = self.partitioner();
        for row in 0..self.records_per_node * self.nodes as u64 {
            let key = GlobalKey::new(CHAOS_TABLE, row);
            let ds = partitioner.route(key) as usize;
            sources[ds].load(key.storage_key(), Row::int(0));
        }
    }

    fn next_spec(&self, rng: &mut StdRng) -> TransactionSpec {
        let a = GlobalKey::new(CHAOS_TABLE, 0);
        let b = GlobalKey::new(CHAOS_TABLE, 1);
        let target = if rng.gen::<bool>() { a } else { b };
        TransactionSpec::single_round(vec![
            ClientOp::Read(a),
            ClientOp::Read(b),
            ClientOp::add(target, 1),
        ])
    }

    fn consistency_violations(&self, _sources: &[Rc<DataSource>]) -> Vec<String> {
        // Write skew leaves no single-row state violation — that is the
        // point: only the serializability checker's dependency graph sees
        // the anomaly.
        Vec::new()
    }
}

/// The MVCC / group-commit failure drills. Not part of
/// [`crate::Scenario::all`]: every preset here opts into non-default
/// engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvccScenario {
    /// Long readers vs. OLTP under `SnapshotRead` with the coordinator's
    /// snapshot-read fast path: readers acquire zero locks.
    LongReadersSnapshot,
    /// The same workload under legacy strict 2PL — the contrast run whose
    /// lock-wait histogram is non-empty.
    LongReaders2pl,
    /// Write-skew hot pair under `SnapshotRead` (snapshot isolation's
    /// classic anomaly).
    WriteSkewSnapshot,
    /// Write-skew hot pair under `ReadCommitted`.
    WriteSkewReadCommitted,
    /// Balance transfers with a 10 ms group-commit window and a data source
    /// crashing mid-traffic: crashes land between WAL append and the
    /// deferred group flush; unacknowledged commits roll back on recovery.
    GroupCommitCrashWindow,
}

impl MvccScenario {
    /// Every preset, in a stable order.
    pub fn all() -> [MvccScenario; 5] {
        [
            MvccScenario::LongReadersSnapshot,
            MvccScenario::LongReaders2pl,
            MvccScenario::WriteSkewSnapshot,
            MvccScenario::WriteSkewReadCommitted,
            MvccScenario::GroupCommitCrashWindow,
        ]
    }

    /// Stable identifier used in traces and CI output.
    pub fn name(&self) -> &'static str {
        match self {
            MvccScenario::LongReadersSnapshot => "long_readers_snapshot",
            MvccScenario::LongReaders2pl => "long_readers_2pl",
            MvccScenario::WriteSkewSnapshot => "write_skew_snapshot",
            MvccScenario::WriteSkewReadCommitted => "write_skew_read_committed",
            MvccScenario::GroupCommitCrashWindow => "group_commit_crash_window",
        }
    }

    /// The preset's configuration, fault schedule and workload for a seed.
    pub fn build(&self, seed: u64) -> (ChaosConfig, FaultSchedule, Rc<dyn ChaosWorkload>) {
        let mut config = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        let s = Duration::from_secs;
        match self {
            MvccScenario::LongReadersSnapshot | MvccScenario::LongReaders2pl => {
                config.isolation = if matches!(self, MvccScenario::LongReadersSnapshot) {
                    IsolationLevel::SnapshotRead
                } else {
                    IsolationLevel::Serializable2pl
                };
                config.snapshot_reads = matches!(self, MvccScenario::LongReadersSnapshot);
                // O3's late scheduling would refuse admission to the hot
                // scans and serialize access before it ever reaches the
                // engines; these drills study the *engine's* read path, so
                // run O1–O2 and let the conflicting transactions through.
                config.protocol = geotp_middleware::Protocol::geotp_o1_o2();
                config.clients = 6;
                config.txns_per_client = 20;
                // Readers span two statement rounds with think time between
                // them, so their snapshot (or, under 2PL, their shared
                // locks) outlives several writer commits.
                config.think_time = Duration::from_millis(20);
                let workload = LongReaderOltpWorkload::drill_scale(config.nodes());
                (config, FaultSchedule::new(), Rc::new(workload))
            }
            MvccScenario::WriteSkewSnapshot | MvccScenario::WriteSkewReadCommitted => {
                config.isolation = if matches!(self, MvccScenario::WriteSkewSnapshot) {
                    IsolationLevel::SnapshotRead
                } else {
                    IsolationLevel::ReadCommitted
                };
                // Same reasoning as the long-reader presets: the hot pair
                // must actually reach the engines concurrently for the
                // anomaly to form, so keep O3's admission lottery out.
                config.protocol = geotp_middleware::Protocol::geotp_o1_o2();
                config.clients = 6;
                config.txns_per_client = 15;
                let workload = WriteSkewWorkload::drill_scale(config.nodes());
                (config, FaultSchedule::new(), Rc::new(workload))
            }
            MvccScenario::GroupCommitCrashWindow => {
                // Default (strict-2PL) isolation: group commit is orthogonal
                // to the read path, and the transfer workload's checkers are
                // the sharpest about torn commits.
                config.group_commit_window = Duration::from_millis(10);
                let workload = TransferWorkload::from_config(&config);
                let schedule = FaultSchedule::new()
                    .with(FaultEvent::CrashDataSource { at: s(3), ds: 1 })
                    .with(FaultEvent::RestartDataSource { at: s(6), ds: 1 })
                    .with(FaultEvent::CrashDataSource { at: s(8), ds: 0 })
                    .with(FaultEvent::RestartDataSource { at: s(10), ds: 0 });
                (config, schedule, Rc::new(workload))
            }
        }
    }

    /// Build and run this preset under `seed`.
    pub fn run(&self, seed: u64) -> ChaosReport {
        let (config, schedule, workload) = self.build(seed);
        run_scenario_with(config, schedule, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn preset_names_are_unique_and_disjoint_from_the_legacy_drills() {
        let mut names: Vec<&str> = MvccScenario::all().iter().map(|p| p.name()).collect();
        names.extend(crate::Scenario::all().iter().map(|p| p.name()));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn long_reader_mix_interleaves_unannotated_scans_with_conserving_writes() {
        let workload = LongReaderOltpWorkload::drill_scale(3);
        let mut rng = StdRng::seed_from_u64(1);
        let reader = workload.next_spec(&mut rng);
        assert_eq!(reader.rounds.len(), 2, "readers span two rounds");
        assert!(
            !reader.annotate_last,
            "readers must dodge the fast-path gate"
        );
        assert!(reader.all_ops().all(|op| !op.is_write()));
        assert_eq!(reader.op_count() as u64, workload.scan_window);

        let writer_a = workload.next_spec(&mut rng);
        let writer_b = workload.next_spec(&mut rng);
        for writer in [&writer_a, &writer_b] {
            assert_eq!(writer.keys().len(), 1, "one key per writer");
            let net: i64 = writer
                .all_ops()
                .map(|op| match op {
                    ClientOp::AddInt { delta, .. } => *delta,
                    other => panic!("unexpected op {other:?}"),
                })
                .sum();
            assert_eq!(net, 0, "writers net zero");
        }
        assert_ne!(
            writer_a.keys(),
            writer_b.keys(),
            "consecutive writers advance the cursor"
        );
    }

    #[test]
    fn write_skew_spec_reads_the_pair_and_writes_one_half() {
        let workload = WriteSkewWorkload::drill_scale(3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut targets = std::collections::BTreeSet::new();
        for _ in 0..20 {
            let spec = workload.next_spec(&mut rng);
            assert_eq!(spec.op_count(), 3);
            let reads = spec.all_ops().filter(|op| !op.is_write()).count();
            assert_eq!(reads, 2, "both halves of the pair are read");
            let write = spec.all_ops().find(|op| op.is_write()).unwrap();
            targets.insert(write.key().row);
        }
        assert_eq!(
            targets.into_iter().collect::<Vec<_>>(),
            vec![0, 1],
            "both halves get written across specs"
        );
    }

    #[test]
    fn presets_opt_into_the_new_engine_knobs() {
        let (snap, _, _) = MvccScenario::LongReadersSnapshot.build(1);
        assert_eq!(snap.isolation, IsolationLevel::SnapshotRead);
        assert!(snap.snapshot_reads);
        let (legacy, _, _) = MvccScenario::LongReaders2pl.build(1);
        assert_eq!(legacy.isolation, IsolationLevel::Serializable2pl);
        assert!(!legacy.snapshot_reads);
        let (gc, schedule, _) = MvccScenario::GroupCommitCrashWindow.build(1);
        assert_eq!(gc.group_commit_window, Duration::from_millis(10));
        assert!(
            schedule.last_fault_instant() + gc.decision_wait_timeout * 2 < gc.horizon,
            "faults must heal comfortably before the horizon"
        );
    }
}
