//! # geotp-chaos — deterministic fault injection for the GeoTP reproduction
//!
//! GeoTP's claims only matter under hostile WANs: the decentralized prepare,
//! early abort and recovery paths (paper §V) are exercised by crashes
//! mid-prepare, partitions mid-commit and coordinators dying with a flushed
//! decision. This crate turns every such failure mode into a *scripted,
//! replayable, invariant-checked* scenario:
//!
//! * a [`FaultSchedule`] describes a timeline of faults — data-source
//!   crash/restart, coordinator crash/failover, (possibly asymmetric) network
//!   partitions, latency storms, notification drop/duplicate probabilities
//!   and clock-skew ramps — written explicitly, generated from a seed
//!   ([`FaultSchedule::random`]), or parsed from a replayable timeline file
//!   ([`FaultSchedule::parse_timeline`]);
//! * the schedule compiles into a [`ScheduleInjector`] plugged into
//!   `geotp-net`'s fault plane, while node-level events are driven by the
//!   harness's controller task against the hooks the component crates expose
//!   (`StorageEngine::crash`/`restart`, `Middleware::crash`,
//!   `crash_after_next_flush`, shared commit logs, `recover`);
//! * [`run_scenario_with`] drives any [`ChaosWorkload`] — balance transfers
//!   ([`TransferWorkload`]) or the real TPC-C mix ([`TpccChaosWorkload`]) —
//!   under the schedule on the simulated runtime and hands the final state
//!   to the [`invariants`] checkers: **atomicity** (no transaction with both
//!   a committed and an aborted branch, plus the workload's own consistency
//!   conditions), **durability** (every outcome the client saw as committed
//!   is backed by a durable commit decision and per-branch WAL commits after
//!   all crashes and recoveries), **liveness** (no transaction stuck once
//!   all faults heal, bounded by a virtual-clock horizon) and
//!   **serializability** (Elle-lite: the engines record versioned read/write
//!   histories, and the committed transactions must form an acyclic
//!   dependency graph in which every read observed a real committed
//!   version — see [`invariants::serializability`]);
//! * a failing seeded schedule is rarely a good bug report, so
//!   [`shrink_schedule`] delta-debugs it QuickCheck-style — drop event
//!   chunks, re-run, keep the smallest still-failing schedule — and emits
//!   the minimal repro as an explicit timeline
//!   ([`FaultSchedule::to_timeline`]) that replays without the original
//!   seed;
//! * every run produces an [`EventTrace`]: same seed + same schedule ⇒
//!   bit-identical trace, across runs *and across processes* — chaos
//!   findings are perfectly reproducible.
//!
//! The [`scenarios`] module ships named presets (prepare-phase crash,
//! commit-phase partition, asymmetric partition, rolling restarts, WAN
//! brownout, coordinator failover, lossy notifications, clock-skew drift,
//! …), each runnable under either workload ([`Scenario::run_with`]); they
//! double as the failure-drill tables in `geotp-experiments` and as
//! regression sweeps in this crate's tests.
//!
//! ```
//! use geotp_chaos::scenarios::{DrillWorkload, Scenario};
//!
//! let report = Scenario::PreparePhaseCrash.run(7);
//! assert!(report.invariants.all_hold(), "{:?}", report.invariants.violations);
//! // Replayable: the same seed produces a bit-identical event trace.
//! assert_eq!(report.fingerprint, Scenario::PreparePhaseCrash.run(7).fingerprint);
//! // The same preset drives the TPC-C mix, serializability-checked.
//! let tpcc = Scenario::PreparePhaseCrash.run_with(7, DrillWorkload::Tpcc);
//! assert!(tpcc.invariants.serializability_ok);
//! ```

pub mod cluster_harness;
pub mod harness;
pub mod injector;
pub mod invariants;
pub mod mvcc;
pub mod scenarios;
pub mod schedule;
pub mod shrink;
pub mod telemetry;
pub mod trace;
pub mod workload;

pub use cluster_harness::{
    run_cluster_scenario, run_cluster_scenario_with, ClusterChaosConfig, ClusterScenario,
    FlashCrowdConfig,
};
pub use geotp_middleware::Protocol;
pub use harness::{
    client_rng, client_scripts, run_scenario, run_scenario_scripted, run_scenario_with,
    ChaosConfig, ChaosReport,
};
pub use injector::ScheduleInjector;
pub use invariants::trace::{TraceContext, TraceRule, TraceRules};
pub use invariants::{InvariantReport, SerializabilityReport};
pub use mvcc::{LongReaderOltpWorkload, MvccScenario, WriteSkewWorkload};
pub use scenarios::{DrillWorkload, Scenario};
pub use schedule::{FaultEvent, FaultSchedule, RandomFaultConfig};
pub use shrink::{shrink_schedule, shrink_workload, ShrinkReport, WorkloadShrinkReport};
pub use telemetry::{
    attach_trace_on_failure, run_scenario_traced, run_scenario_with_traced, traced, traced_capped,
    write_failure_artifact,
};
pub use trace::EventTrace;
pub use workload::{
    ChaosWorkload, InteractiveTransferWorkload, TpccChaosWorkload, TransferWorkload, CHAOS_TABLE,
};
