//! # geotp-chaos — deterministic fault injection for the GeoTP reproduction
//!
//! GeoTP's claims only matter under hostile WANs: the decentralized prepare,
//! early abort and recovery paths (paper §V) are exercised by crashes
//! mid-prepare, partitions mid-commit and coordinators dying with a flushed
//! decision. This crate turns every such failure mode into a *scripted,
//! replayable, invariant-checked* scenario:
//!
//! * a [`FaultSchedule`] describes a timeline of faults — data-source
//!   crash/restart, coordinator crash/failover, (possibly asymmetric) network
//!   partitions, latency storms, notification drop/duplicate probabilities
//!   and clock-skew ramps — either written explicitly or generated from a
//!   seed ([`FaultSchedule::random`]);
//! * the schedule compiles into a [`ScheduleInjector`] plugged into
//!   `geotp-net`'s fault plane, while node-level events are driven by the
//!   harness's controller task against the hooks the component crates expose
//!   (`StorageEngine::crash`/`restart`, `Middleware::crash`,
//!   `crash_after_next_flush`, shared commit logs, `recover`);
//! * [`run_scenario`] drives a balance-transfer workload under the schedule
//!   on the simulated runtime and hands the final state to the
//!   [`invariants`] checkers: **atomicity** (no transaction with both a
//!   committed and an aborted branch, conservation of total balance),
//!   **durability** (every outcome the client saw as committed is backed by
//!   a durable commit decision and per-branch WAL commit records after all
//!   crashes and recoveries) and **liveness** (no transaction stuck once all
//!   faults heal, bounded by a virtual-clock horizon);
//! * every run produces an [`EventTrace`]: same seed + same schedule ⇒
//!   bit-identical trace, across runs *and across processes* — chaos
//!   findings are perfectly reproducible.
//!
//! The [`scenarios`] module ships named presets (prepare-phase crash,
//! commit-phase partition, asymmetric partition, rolling restarts, WAN
//! brownout, coordinator failover, lossy notifications, clock-skew drift,
//! …) that double as the failure-drill table in `geotp-experiments` and as
//! regression sweeps in this crate's tests.
//!
//! ```
//! use geotp_chaos::scenarios::Scenario;
//!
//! let report = Scenario::PreparePhaseCrash.run(7);
//! assert!(report.invariants.all_hold(), "{:?}", report.invariants.violations);
//! // Replayable: the same seed produces a bit-identical event trace.
//! assert_eq!(report.fingerprint, Scenario::PreparePhaseCrash.run(7).fingerprint);
//! ```

pub mod harness;
pub mod injector;
pub mod invariants;
pub mod scenarios;
pub mod schedule;
pub mod trace;

pub use geotp_middleware::Protocol;
pub use harness::{run_scenario, ChaosConfig, ChaosReport};
pub use injector::ScheduleInjector;
pub use invariants::InvariantReport;
pub use scenarios::Scenario;
pub use schedule::{FaultEvent, FaultSchedule, RandomFaultConfig};
pub use trace::EventTrace;
