//! The replayable event trace.
//!
//! Every fault the controller applies and every probabilistic message fate
//! the injector draws is appended here, stamped with the virtual clock. The
//! trace is the replayability contract: the same seed and schedule must
//! produce a bit-identical trace — across runs and across processes — so any
//! chaos finding can be reproduced exactly.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// An append-only, virtually-timestamped log of chaos events.
#[derive(Default)]
pub struct EventTrace {
    lines: RefCell<Vec<String>>,
}

impl EventTrace {
    /// Create an empty trace behind an `Rc` (it is shared between the
    /// controller task, the injector and the harness).
    pub fn new() -> Rc<Self> {
        Rc::new(Self::default())
    }

    /// Append one event, stamped with the current virtual time.
    ///
    /// # Panics
    /// Panics outside a running simulated runtime (events only happen inside
    /// one).
    pub fn record(&self, event: &str) {
        let mut line = String::with_capacity(event.len() + 16);
        let _ = write!(line, "[{:>12}us] {event}", geotp_simrt::now().as_micros());
        self.lines.borrow_mut().push(line);
    }

    /// Snapshot of the trace lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lines.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// FNV-1a fingerprint over every line (order-sensitive, byte-exact).
    /// Equal fingerprints ⇔ bit-identical traces, which is what the
    /// replayability acceptance check compares across two processes.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for line in self.lines.borrow().iter() {
            for byte in line.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Line separator so ["ab","c"] and ["a","bc"] differ.
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_simrt::Runtime;
    use std::time::Duration;

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let t1 = EventTrace::new();
            t1.record("crash ds1");
            t1.record("restart ds1");
            let reordered = EventTrace::new();
            reordered.record("restart ds1");
            reordered.record("crash ds1");
            let same = EventTrace::new();
            same.record("crash ds1");
            same.record("restart ds1");
            assert_ne!(t1.fingerprint(), reordered.fingerprint());
            assert_eq!(t1.fingerprint(), same.fingerprint());
        });
    }

    #[test]
    fn identical_histories_fingerprint_equal() {
        fn run_once() -> u64 {
            let mut rt = Runtime::new();
            rt.block_on(async {
                let t = EventTrace::new();
                t.record("partition dm0 <-> ds2");
                geotp_simrt::sleep(Duration::from_millis(40)).await;
                t.record("heal dm0 <-> ds2");
                assert_eq!(t.len(), 2);
                t.fingerprint()
            })
        }
        assert_eq!(run_once(), run_once());
    }
}
