//! # geotp-distdb — a YugabyteDB-like distributed database baseline
//!
//! Figure 13 of the paper compares GeoTP against YugabyteDB, a distributed
//! SQL database with intelligent partitioning. The property the paper leans
//! on is YugabyteDB's **single-shard fast path**: single-row / single-shard
//! transactions commit at the tablet leader and apply their updates
//! asynchronously after commit, so at low contention it beats a middleware
//! that must round-trip to external data sources. At high contention the
//! advantage disappears because the database has no latency-aware scheduling
//! and locks are held across cross-shard two-phase commit.
//!
//! This crate builds that baseline on the simulated substrate:
//!
//! * one [`geotp_storage::StorageEngine`] per shard (tablet leader), placed at
//!   the same geographic nodes as the GeoTP data sources,
//! * the query router is co-located with the client (same placement as the
//!   middleware in the paper's setup),
//! * **single-shard transactions**: one WAN round trip to the leader; the
//!   leader acquires local locks, executes, commits and replies — the apply /
//!   replication happens off the critical path (asynchronous apply),
//! * **multi-shard transactions**: the router picks the first involved shard
//!   as the transaction coordinator; it executes its local part and drives
//!   prepare/commit over the other shards (shard-to-shard WAN hops), holding
//!   locks across that window.

use std::cell::Cell;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use geotp_middleware::{
    AbortReason, ClientOp, LatencyBreakdown, MiddlewareStats, Partitioner, TransactionSpec,
    TxnOutcome,
};
use geotp_net::{Network, NodeId};
use geotp_simrt::{join_all, now, spawn};
use geotp_storage::{EngineConfig, Row, StorageEngine, StorageError, Xid};
use geotp_workloads::TransactionService;
use std::cell::RefCell;

/// Configuration of the distributed-database baseline.
#[derive(Debug, Clone, Copy)]
pub struct DistDbConfig {
    /// The query router's node identity (co-located with the client).
    pub router: NodeId,
    /// Number of shards (one per geographic node).
    pub shards: u32,
    /// Storage-engine configuration used by every tablet leader.
    pub engine: EngineConfig,
}

impl DistDbConfig {
    /// Defaults for the given router node and shard count.
    pub fn new(router: NodeId, shards: u32) -> Self {
        Self {
            router,
            shards,
            engine: EngineConfig::default(),
        }
    }
}

struct Shard {
    node: NodeId,
    engine: Rc<StorageEngine>,
}

/// The sharded distributed database.
pub struct DistDb {
    config: DistDbConfig,
    net: Rc<Network>,
    shards: HashMap<u32, Shard>,
    partitioner: Partitioner,
    next_txn: Cell<u64>,
    stats: RefCell<MiddlewareStats>,
}

impl DistDb {
    /// Build the database with one shard per data-source node id
    /// (`NodeId::data_source(0..shards)`), matching the GeoTP deployment.
    pub fn new(config: DistDbConfig, net: Rc<Network>, partitioner: Partitioner) -> Rc<Self> {
        let shards = (0..config.shards)
            .map(|i| {
                (
                    i,
                    Shard {
                        node: NodeId::data_source(i),
                        engine: StorageEngine::new(config.engine),
                    },
                )
            })
            .collect();
        Rc::new(Self {
            config,
            net,
            shards,
            partitioner,
            next_txn: Cell::new(1),
            stats: RefCell::new(MiddlewareStats::default()),
        })
    }

    /// Load a record into whichever shard owns it.
    pub fn load(&self, key: geotp_middleware::GlobalKey, row: Row) {
        let shard = self.partitioner.route(key);
        self.shards[&shard].engine.load(key.storage_key(), row);
    }

    /// Read a record directly from its shard (verification only).
    pub fn peek(&self, key: geotp_middleware::GlobalKey) -> Option<Row> {
        let shard = self.partitioner.route(key);
        self.shards[&shard].engine.peek(key.storage_key())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MiddlewareStats {
        *self.stats.borrow()
    }

    async fn apply_ops(
        engine: &Rc<StorageEngine>,
        xid: Xid,
        ops: &[ClientOp],
        rows: &mut Vec<Row>,
    ) -> Result<(), StorageError> {
        for op in ops {
            match op {
                ClientOp::Read(k) => rows.push(engine.read(xid, k.storage_key()).await?),
                ClientOp::ReadForUpdate(k) => {
                    rows.push(engine.read_for_update(xid, k.storage_key()).await?)
                }
                ClientOp::AddInt { key, col, delta } => {
                    engine.add_int(xid, key.storage_key(), *col, *delta).await?;
                }
                ClientOp::Write { key, row } => {
                    engine.write(xid, key.storage_key(), row.clone()).await?
                }
                ClientOp::Insert { key, row } => {
                    engine.insert(xid, key.storage_key(), row.clone()).await?
                }
                ClientOp::Delete(k) => engine.delete(xid, k.storage_key()).await?,
            }
        }
        Ok(())
    }

    /// Run one transaction.
    pub async fn run(self: &Rc<Self>, spec: &TransactionSpec) -> TxnOutcome {
        let started = now();
        let gtrid = self.next_txn.get();
        self.next_txn.set(gtrid + 1);

        let keys = spec.keys();
        let involved = self.partitioner.involved_nodes(&keys);
        let distributed = involved.len() > 1;

        let finish = |committed: bool, reason: Option<AbortReason>, rows: Vec<Row>| {
            let outcome = TxnOutcome {
                gtrid,
                committed,
                abort_reason: reason,
                latency: now().duration_since(started),
                breakdown: LatencyBreakdown::default(),
                distributed,
                rows,
                ..TxnOutcome::default()
            };
            self.stats.borrow_mut().record(&outcome);
            outcome
        };

        // Group every operation (across rounds) per shard; the router ships
        // whole statements, the interactive structure does not add router
        // round trips in a distributed SQL database.
        let all_ops: Vec<ClientOp> = spec.all_ops().cloned().collect();
        let groups = self.partitioner.split(&all_ops);

        if !distributed {
            // -------- Single-shard fast path --------
            let shard_idx = involved[0];
            let shard = &self.shards[&shard_idx];
            let xid = Xid::new(gtrid, shard_idx);
            self.net.transfer(self.config.router, shard.node).await;
            let mut rows = Vec::new();
            let result: Result<(), StorageError> = async {
                shard.engine.begin(xid)?;
                Self::apply_ops(&shard.engine, xid, &all_ops, &mut rows).await?;
                Ok(())
            }
            .await;
            let ok = match result {
                Ok(()) => {
                    // Commit locally; the apply/replication happens
                    // asynchronously after the response is sent.
                    let engine = Rc::clone(&shard.engine);
                    spawn(async move {
                        let _ = engine.commit(xid, true).await;
                    });
                    true
                }
                Err(_) => {
                    let _ = shard.engine.rollback(xid).await;
                    false
                }
            };
            self.net.transfer(shard.node, self.config.router).await;
            return if ok {
                finish(true, None, rows)
            } else {
                finish(false, Some(AbortReason::ExecutionFailed), Vec::new())
            };
        }

        // -------- Multi-shard path: shard-coordinated 2PC --------
        let coordinator_idx = involved[0];
        let coordinator_node = self.shards[&coordinator_idx].node;
        // Router → coordinator shard.
        self.net
            .transfer(self.config.router, coordinator_node)
            .await;

        // The coordinator executes every shard's part: its own locally, the
        // others via shard-to-shard hops (in parallel).
        let mut rows = Vec::new();
        let mut failed = false;
        let mut remote_futures = Vec::new();
        for (shard_idx, ops) in &groups {
            let ops: Vec<ClientOp> = ops.iter().map(|op| (*op).clone()).collect();
            let xid = Xid::new(gtrid, *shard_idx);
            let shard_node = self.shards[shard_idx].node;
            let engine = Rc::clone(&self.shards[shard_idx].engine);
            let net = Rc::clone(&self.net);
            let is_local = *shard_idx == coordinator_idx;
            remote_futures.push(async move {
                if !is_local {
                    net.transfer(coordinator_node, shard_node).await;
                }
                let mut local_rows = Vec::new();
                let result: Result<(), StorageError> = async {
                    engine.begin(xid)?;
                    Self::apply_ops(&engine, xid, &ops, &mut local_rows).await?;
                    engine.end(xid)?;
                    engine.prepare(xid).await?;
                    Ok(())
                }
                .await;
                if !is_local {
                    net.transfer(shard_node, coordinator_node).await;
                }
                (result.is_ok(), local_rows, xid, is_local, shard_node)
            });
        }
        let results = join_all(remote_futures).await;
        for (ok, local_rows, _, _, _) in &results {
            if *ok {
                rows.extend(local_rows.iter().cloned());
            } else {
                failed = true;
            }
        }

        // Commit or abort every participant (coordinator-driven).
        let decisions = results
            .iter()
            .map(|(_, _, xid, is_local, shard_node)| {
                let engine = Rc::clone(&self.shards[&xid.bqual].engine);
                let net = Rc::clone(&self.net);
                let xid = *xid;
                let is_local = *is_local;
                let shard_node = *shard_node;
                let commit = !failed;
                async move {
                    if !is_local {
                        net.transfer(coordinator_node, shard_node).await;
                    }
                    if commit {
                        let _ = engine.commit(xid, false).await;
                    } else if engine.state_of(xid).is_some() {
                        let _ = engine.rollback(xid).await;
                    }
                    if !is_local {
                        net.transfer(shard_node, coordinator_node).await;
                    }
                }
            })
            .collect();
        join_all(decisions).await;

        // Coordinator → router response.
        self.net
            .transfer(coordinator_node, self.config.router)
            .await;
        if failed {
            finish(false, Some(AbortReason::ExecutionFailed), Vec::new())
        } else {
            finish(true, None, rows)
        }
    }
}

// ---------------------------------------------------------------------------
// Session front door (the interactive client API).
//
// An interactive transaction against the distributed database keeps one open
// transaction per involved tablet leader: each statement round fans out from
// the (client-co-located) query router to the involved shards, and commit
// runs the single-shard fast path (one round trip, asynchronous apply) or a
// router-driven 2PC over the open shard transactions. Unlike the one-shot
// path — which ships the whole statement buffer at once and lets the first
// shard coordinate — the interactive path cannot batch rounds, so locks are
// held across client round trips: exactly the interactivity penalty the
// paper's middleware avoids with its own session handling.
// ---------------------------------------------------------------------------

use geotp_middleware::session::{
    BoxFuture, RoundResult, Session, SessionLink, SessionService, TxnError, TxnHandle,
};

impl DistDb {
    /// The session front door for this database.
    pub fn session_service(self: &Rc<Self>) -> DistDbService {
        DistDbService(Rc::clone(self))
    }

    fn record_session_outcome(
        &self,
        gtrid: u64,
        started: geotp_simrt::SimInstant,
        distributed: bool,
        committed: bool,
        reason: Option<AbortReason>,
    ) -> TxnOutcome {
        let outcome = TxnOutcome {
            gtrid,
            committed,
            abort_reason: reason,
            latency: now().duration_since(started),
            breakdown: LatencyBreakdown::default(),
            distributed,
            ..TxnOutcome::default()
        };
        self.stats.borrow_mut().record(&outcome);
        outcome
    }
}

impl SessionService for DistDbService {
    fn connect(&self, session_id: u64) -> Session {
        Session::from_link(
            session_id,
            TransactionService::label(self),
            Box::new(DistDbLink(Rc::clone(&self.0))),
        )
    }

    fn label(&self) -> String {
        TransactionService::label(self)
    }
}

struct DistDbLink(Rc<DistDb>);

impl SessionLink for DistDbLink {
    fn begin<'a>(&'a mut self) -> BoxFuture<'a, Result<Box<dyn TxnHandle>, TxnError>> {
        let db = Rc::clone(&self.0);
        Box::pin(async move {
            let gtrid = db.next_txn.get();
            db.next_txn.set(gtrid + 1);
            Ok(Box::new(DistDbTxn {
                db,
                gtrid,
                started: now(),
                begun: Vec::new(),
                concluded: false,
                final_outcome: None,
            }) as Box<dyn TxnHandle>)
        })
    }
}

struct DistDbTxn {
    db: Rc<DistDb>,
    gtrid: u64,
    started: geotp_simrt::SimInstant,
    /// Shards with an open transaction branch, in first-touch order.
    begun: Vec<u32>,
    concluded: bool,
    /// The outcome of an already-concluded transaction: repeated
    /// commit/rollback re-report it instead of re-touching the shards or
    /// double-recording stats.
    final_outcome: Option<TxnOutcome>,
}

impl DistDbTxn {
    fn distributed(&self) -> bool {
        self.begun.len() > 1
    }

    /// Roll every open shard transaction back (router-driven, parallel).
    async fn rollback_shards(&mut self) {
        let db = Rc::clone(&self.db);
        let router = db.config.router;
        join_all(
            self.begun
                .iter()
                .map(|shard_idx| {
                    let engine = Rc::clone(&db.shards[shard_idx].engine);
                    let node = db.shards[shard_idx].node;
                    let net = Rc::clone(&db.net);
                    let xid = Xid::new(self.gtrid, *shard_idx);
                    async move {
                        net.transfer(router, node).await;
                        if engine.state_of(xid).is_some() {
                            let _ = engine.rollback(xid).await;
                        }
                        net.transfer(node, router).await;
                    }
                })
                .collect(),
        )
        .await;
    }

    fn conclude(&mut self, committed: bool, reason: Option<AbortReason>) -> TxnOutcome {
        self.concluded = true;
        let outcome = self.db.record_session_outcome(
            self.gtrid,
            self.started,
            self.distributed(),
            committed,
            reason,
        );
        self.final_outcome = Some(outcome.clone());
        outcome
    }

    /// The outcome to re-report once the transaction has concluded.
    fn concluded_outcome(&self) -> TxnOutcome {
        self.final_outcome.clone().unwrap_or_else(|| {
            TxnOutcome::aborted(
                AbortReason::ExecutionFailed,
                std::time::Duration::ZERO,
                false,
            )
        })
    }
}

impl TxnHandle for DistDbTxn {
    fn execute<'a>(
        &'a mut self,
        ops: &'a [ClientOp],
        _last: bool,
    ) -> BoxFuture<'a, Result<RoundResult, TxnError>> {
        Box::pin(async move {
            let round_started = now();
            let db = Rc::clone(&self.db);
            let router = db.config.router;
            let groups = db.partitioner.split(ops);
            let mut futures = Vec::new();
            for (shard_idx, shard_ops) in &groups {
                let ops: Vec<ClientOp> = shard_ops.iter().map(|op| (*op).clone()).collect();
                let xid = Xid::new(self.gtrid, *shard_idx);
                let begin = !self.begun.contains(shard_idx);
                let engine = Rc::clone(&db.shards[shard_idx].engine);
                let node = db.shards[shard_idx].node;
                let net = Rc::clone(&db.net);
                futures.push(async move {
                    net.transfer(router, node).await;
                    let mut local_rows = Vec::new();
                    let result: Result<(), StorageError> = async {
                        if begin {
                            engine.begin(xid)?;
                        }
                        DistDb::apply_ops(&engine, xid, &ops, &mut local_rows).await?;
                        Ok(())
                    }
                    .await;
                    if result.is_err() {
                        let _ = engine.rollback(xid).await;
                    }
                    net.transfer(node, router).await;
                    (result.is_ok(), local_rows)
                });
            }
            for (shard_idx, _) in &groups {
                if !self.begun.contains(shard_idx) {
                    self.begun.push(*shard_idx);
                }
            }
            let results = join_all(futures).await;
            let mut rows = Vec::new();
            let mut failed = false;
            for (ok, local_rows) in results {
                if ok {
                    rows.extend(local_rows);
                } else {
                    failed = true;
                }
            }
            if failed {
                self.rollback_shards().await;
                let outcome = self.conclude(false, Some(AbortReason::ExecutionFailed));
                return Err(TxnError::aborted(outcome, false));
            }
            Ok(RoundResult {
                rows,
                latency: now().duration_since(round_started),
            })
        })
    }

    fn commit(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        Box::pin(async move {
            if self.concluded {
                // The transaction already failed and was rolled back:
                // re-report the recorded outcome, never touch the shards.
                return self.concluded_outcome();
            }
            let db = Rc::clone(&self.db);
            let router = db.config.router;
            if self.begun.is_empty() {
                return self.conclude(true, None);
            }
            if self.begun.len() == 1 {
                // Single-shard fast path: one round trip; the apply happens
                // asynchronously after the response is sent.
                let shard_idx = self.begun[0];
                let engine = Rc::clone(&db.shards[&shard_idx].engine);
                let node = db.shards[&shard_idx].node;
                let xid = Xid::new(self.gtrid, shard_idx);
                db.net.transfer(router, node).await;
                let apply = Rc::clone(&engine);
                spawn(async move {
                    let _ = apply.commit(xid, true).await;
                });
                db.net.transfer(node, router).await;
                return self.conclude(true, None);
            }
            // Router-driven 2PC over the open shard transactions.
            let prepare_results = join_all(
                self.begun
                    .iter()
                    .map(|shard_idx| {
                        let engine = Rc::clone(&db.shards[shard_idx].engine);
                        let node = db.shards[shard_idx].node;
                        let net = Rc::clone(&db.net);
                        let xid = Xid::new(self.gtrid, *shard_idx);
                        async move {
                            net.transfer(router, node).await;
                            let result: Result<(), StorageError> = async {
                                engine.end(xid)?;
                                engine.prepare(xid).await?;
                                Ok(())
                            }
                            .await;
                            net.transfer(node, router).await;
                            result.is_ok()
                        }
                    })
                    .collect(),
            )
            .await;
            let all_prepared = prepare_results.iter().all(|ok| *ok);
            let commit = all_prepared;
            join_all(
                self.begun
                    .iter()
                    .map(|shard_idx| {
                        let engine = Rc::clone(&db.shards[shard_idx].engine);
                        let node = db.shards[shard_idx].node;
                        let net = Rc::clone(&db.net);
                        let xid = Xid::new(self.gtrid, *shard_idx);
                        async move {
                            net.transfer(router, node).await;
                            if commit {
                                let _ = engine.commit(xid, false).await;
                            } else if engine.state_of(xid).is_some() {
                                let _ = engine.rollback(xid).await;
                            }
                            net.transfer(node, router).await;
                        }
                    })
                    .collect(),
            )
            .await;
            if all_prepared {
                self.conclude(true, None)
            } else {
                self.conclude(false, Some(AbortReason::PrepareFailed))
            }
        })
    }

    fn rollback(mut self: Box<Self>) -> BoxFuture<'static, TxnOutcome> {
        Box::pin(async move {
            if self.concluded {
                return self.concluded_outcome();
            }
            self.rollback_shards().await;
            self.conclude(false, Some(AbortReason::ClientRollback))
        })
    }

    fn abandon(mut self: Box<Self>) {
        if self.concluded {
            return;
        }
        // The router notices the dropped client connection and aborts the
        // open shard transactions in the background.
        let outcome = self.conclude(false, Some(AbortReason::ClientDisconnected));
        let _ = outcome;
        let mut this = self;
        spawn(async move {
            this.rollback_shards().await;
        });
    }

    fn gtrid(&self) -> u64 {
        self.gtrid
    }
}

/// Cloneable handle implementing the benchmark driver's
/// [`TransactionService`] interface for the distributed-database baseline.
#[derive(Clone)]
pub struct DistDbService(pub Rc<DistDb>);

impl TransactionService for DistDbService {
    fn run<'a>(
        &'a self,
        spec: &'a TransactionSpec,
    ) -> Pin<Box<dyn Future<Output = TxnOutcome> + 'a>> {
        Box::pin(async move { DistDb::run(&self.0, spec).await })
    }

    fn label(&self) -> String {
        "YugabyteDB-like".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotp_middleware::GlobalKey;
    use geotp_net::NetworkBuilder;
    use geotp_simrt::Runtime;
    use geotp_storage::{CostModel, TableId};
    use std::time::Duration;

    fn gk(row: u64) -> GlobalKey {
        GlobalKey::new(TableId(0), row)
    }

    fn build() -> Rc<DistDb> {
        let router = NodeId::middleware(0);
        let net = NetworkBuilder::new(2)
            .static_link(router, NodeId::data_source(0), Duration::from_millis(10))
            .static_link(router, NodeId::data_source(1), Duration::from_millis(100))
            .static_link(
                NodeId::data_source(0),
                NodeId::data_source(1),
                Duration::from_millis(100),
            )
            .build();
        let mut config = DistDbConfig::new(router, 2);
        config.engine = EngineConfig {
            lock_wait_timeout: Duration::from_secs(2),
            cost: CostModel::zero(),
            record_history: false,
            ..EngineConfig::default()
        };
        let db = DistDb::new(
            config,
            net,
            Partitioner::Range {
                rows_per_node: 100,
                nodes: 2,
            },
        );
        for row in 0..200u64 {
            db.load(gk(row), Row::int(100));
        }
        db
    }

    #[test]
    fn single_shard_fast_path_takes_one_round_trip() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let db = build();
            let spec =
                TransactionSpec::single_round(vec![ClientOp::Read(gk(1)), ClientOp::add(gk(2), 5)]);
            let started = now();
            let outcome = DistDb::run(&db, &spec).await;
            assert!(outcome.committed);
            assert!(!outcome.distributed);
            // One router→shard round trip (10ms); commit applies asynchronously.
            assert_eq!(now().duration_since(started), Duration::from_millis(10));
            // Let the asynchronous apply land, then verify.
            geotp_simrt::sleep(Duration::from_millis(5)).await;
            assert_eq!(db.peek(gk(2)).unwrap().int_value(), Some(105));
        });
    }

    #[test]
    fn multi_shard_transaction_commits_atomically() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let db = build();
            let spec = TransactionSpec::single_round(vec![
                ClientOp::add(gk(1), -30),
                ClientOp::add(gk(150), 30),
            ]);
            let outcome = DistDb::run(&db, &spec).await;
            assert!(outcome.committed);
            assert!(outcome.distributed);
            // Cross-shard 2PC is clearly slower than the fast path: router→
            // coordinator (10ms) + coordinator↔remote execute (100ms) +
            // coordinator↔remote commit (100ms).
            assert!(outcome.latency >= Duration::from_millis(200));
            assert_eq!(db.peek(gk(1)).unwrap().int_value(), Some(70));
            assert_eq!(db.peek(gk(150)).unwrap().int_value(), Some(130));
        });
    }

    #[test]
    fn conflicting_increments_are_serialized() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let db = build();
            let mut handles = Vec::new();
            for _ in 0..5 {
                let db = Rc::clone(&db);
                handles.push(geotp_simrt::spawn(async move {
                    let spec = TransactionSpec::single_round(vec![ClientOp::add(gk(7), 1)]);
                    DistDb::run(&db, &spec).await
                }));
            }
            let outcomes = join_all(handles.into_iter().collect()).await;
            let committed = outcomes.iter().filter(|o| o.committed).count();
            geotp_simrt::sleep(Duration::from_millis(50)).await;
            assert_eq!(
                db.peek(gk(7)).unwrap().int_value(),
                Some(100 + committed as i64)
            );
        });
    }

    #[test]
    fn interactive_session_runs_rounds_and_commits_2pc() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let db = build();
            let mut session = SessionService::connect(&db.session_service(), 1);
            let mut txn = session.begin().await.unwrap();
            txn.execute(&[ClientOp::add(gk(1), -30)]).await.unwrap();
            txn.execute(&[ClientOp::add(gk(150), 30)]).await.unwrap();
            let outcome = txn.commit().await;
            assert!(outcome.committed);
            assert!(outcome.distributed);
            assert_eq!(db.peek(gk(1)).unwrap().int_value(), Some(70));
            assert_eq!(db.peek(gk(150)).unwrap().int_value(), Some(130));
        });
    }

    /// Regression: `commit` on a transaction whose round already failed (and
    /// was rolled back) must re-report the abort, not fabricate a commit or
    /// double-record the outcome.
    #[test]
    fn commit_after_failed_round_reports_the_abort() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let db = build();
            let mut session = SessionService::connect(&db.session_service(), 2);
            let mut txn = session.begin().await.unwrap();
            txn.execute(&[ClientOp::add(gk(1), 9)]).await.unwrap();
            txn.execute(&[ClientOp::Read(gk(50_000))])
                .await
                .expect_err("missing key fails the round");
            let outcome = txn.commit().await;
            assert!(!outcome.committed, "a rolled-back txn cannot commit later");
            geotp_simrt::sleep(Duration::from_millis(50)).await;
            assert_eq!(
                db.peek(gk(1)).unwrap().int_value(),
                Some(100),
                "the rolled-back write must not resurface"
            );
            let stats = db.stats();
            assert_eq!((stats.committed, stats.aborted), (0, 1), "one abort, once");
        });
    }

    #[test]
    fn missing_key_aborts() {
        let mut rt = Runtime::new();
        rt.block_on(async {
            let db = build();
            let spec = TransactionSpec::single_round(vec![
                ClientOp::Read(gk(1)),
                ClientOp::Read(gk(50_000)),
            ]);
            let outcome = DistDb::run(&db, &spec).await;
            assert!(!outcome.committed);
            assert_eq!(db.stats().aborted, 1);
        });
    }
}
